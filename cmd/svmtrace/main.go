// Command svmtrace runs a benchmark with protocol event tracing and
// prints the event stream: page faults, fetches, diff traffic, write
// notices, locks, barriers, and garbage collection, each stamped with
// simulated time and node.
//
// Usage:
//
//	svmtrace -app sor -proto hlrc -procs 4 -size test
//	svmtrace -app water-nsq -proto lrc -procs 8 -kind diff-apply -page 3
//	svmtrace -app sor -proto hlrc -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"gosvm"
	"gosvm/internal/apps"
	"gosvm/internal/cliflags"
	"gosvm/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "sor", "application: lu, sor, sor-zero, water-nsq, water-sp, raytrace, fft")
		protoStr = flag.String("proto", gosvm.HLRC.String(), "protocol: lrc, olrc, hlrc, ohlrc, aurc")
		mf       = cliflags.AddMachine(flag.CommandLine, 4, 4096)
		size     = flag.String("size", "test", "problem size: test, small, paper")
		limit    = flag.Int("limit", 100000, "maximum events to retain")
		kindFlag = flag.String("kind", "", "only events of this kind")
		nodeFlag = flag.Int("node", -1, "only events of this node")
		pageFlag = flag.Int("fpage", -1, "only events touching this page")
		summary  = flag.Bool("summary", false, "print per-kind counts instead of events")
		runWkrs  = cliflags.AddRunWorkers(flag.CommandLine)
	)
	flag.Parse()

	proto, err := gosvm.ParseProtocol(*protoStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machine, err := mf.Machine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	app, err := apps.New(*appName, apps.Size(*size))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Tracing keeps a globally ordered event log, so traced runs always
	// fall back to the sequential kernel; the flag is accepted for a
	// uniform CLI surface and its results are identical at any value.
	res, err := gosvm.Run(gosvm.Options{
		Protocol:   proto,
		Machine:    machine,
		PageBytes:  mf.Page,
		TraceLimit: *limit,
		RunWorkers: *runWkrs,
	}, app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	log := res.Trace
	if *summary {
		counts := log.Counts()
		fmt.Printf("%d events over %.2f simulated seconds:\n", log.Len(), res.Stats.Elapsed.Micros()/1e6)
		for k := trace.Kind(0); ; k++ {
			name := k.String()
			if name == fmt.Sprintf("kind(%d)", uint8(k)) {
				break
			}
			if counts[k] > 0 {
				fmt.Printf("  %-14s %8d\n", name, counts[k])
			}
		}
		return
	}

	events := log.Events()
	if *kindFlag != "" {
		k, err := trace.ParseKind(*kindFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		events = log.ByKind(k)
	}
	for _, e := range events {
		if *nodeFlag >= 0 && e.Node != *nodeFlag {
			continue
		}
		if *pageFlag >= 0 && e.Page != *pageFlag {
			continue
		}
		fmt.Println(e)
	}
}
