// Command svmrun executes one benchmark application under one SVM
// protocol and prints its statistics: simulated execution time, speedup
// over sequential, the per-node time breakdown, traffic, and memory use.
//
// Usage:
//
//	svmrun -app water-nsq -proto hlrc -procs 32 -size small
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"gosvm"
	"gosvm/internal/apps"
	"gosvm/internal/cliflags"
	"gosvm/internal/stats"
)

func main() {
	var (
		appName  = flag.String("app", "sor", "application: lu, sor, sor-zero, water-nsq, water-sp, raytrace, fft")
		protoStr = flag.String("proto", gosvm.HLRC.String(), "protocol: lrc, olrc, hlrc, ohlrc, aurc")
		mf       = cliflags.AddMachine(flag.CommandLine, 8, 8192)
		ff       = cliflags.AddFault(flag.CommandLine, gosvm.FaultNone)
		size     = flag.String("size", "small", "problem size: test, small, paper")
		gcThr    = flag.Int64("gc-threshold", 8<<20, "homeless GC trigger, bytes of protocol memory per node")
		noSeq    = flag.Bool("noseq", false, "skip the sequential baseline run")
		replicas = flag.Int("replicas", 0, "home-state replicas per home (required to survive crashes; hlrc/ohlrc only)")
		ckpt     = flag.Duration("ckpt", 0, "checkpoint period in simulated time (0 = eager mirroring; requires -replicas)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON statistics instead of text")
		parallel = cliflags.AddParallel(flag.CommandLine)
		runWkrs  = cliflags.AddRunWorkers(flag.CommandLine)
	)
	mf.AddMeshAlias(flag.CommandLine)
	flag.Parse()

	proto, err := gosvm.ParseProtocol(*protoStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	machine, err := mf.Machine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan, err := ff.Plan(machine.Nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mk := func() gosvm.App {
		a, err := apps.New(*appName, apps.Size(*size))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return a
	}

	opts := gosvm.NewOptions(proto,
		gosvm.WithMachine(machine),
		gosvm.WithPageBytes(mf.Page),
		gosvm.WithGCThreshold(*gcThr),
		gosvm.WithFaults(plan),
		gosvm.WithReplication(*replicas),
		gosvm.WithCheckpointEvery(gosvm.Time(ckpt.Nanoseconds())),
		gosvm.WithRunWorkers(*runWkrs),
	)
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The sequential baseline is an independent simulation; overlap it
	// with the main run when more than one worker is allowed. Each run
	// owns its kernel, so results are identical either way.
	var (
		seq    *gosvm.Result
		seqErr error
		seqCh  chan struct{}
	)
	runSeq := func() {
		s, err := gosvm.Sequential(mk(), mf.Page)
		seq, seqErr = s, err
	}
	if !*noSeq && workers > 1 {
		seqCh = make(chan struct{})
		go func() {
			defer close(seqCh)
			runSeq()
		}()
	}

	res, err := gosvm.Run(opts, mk())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*noSeq {
		if seqCh != nil {
			<-seqCh
		} else {
			runSeq()
		}
		if seqErr != nil {
			fmt.Fprintln(os.Stderr, seqErr)
			os.Exit(1)
		}
		res.Stats.SeqTime = seq.Stats.Elapsed
	}

	if *jsonOut {
		if err := res.Stats.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s / %s / %d nodes / %s problem\n", *appName, proto, machine.Nodes, *size)
	fmt.Printf("parallel time: %.2f s (simulated)\n", res.Stats.Elapsed.Micros()/1e6)
	if !*noSeq {
		fmt.Printf("sequential:    %.2f s (simulated)\n", res.Stats.SeqTime.Micros()/1e6)
		fmt.Printf("speedup:       %.2f\n", res.Stats.Speedup())
	}

	avg := res.Stats.AvgNode()
	fmt.Println("\naverage per-node time breakdown:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(tw, "  %v\t%8.2f s\n", c, avg.Time[c].Micros()/1e6)
	}
	tw.Flush()

	fmt.Println("\nper-node operation counts (average):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  read misses\t%d\n", avg.Counts.ReadMisses)
	fmt.Fprintf(tw, "  pages fetched\t%d\n", avg.Counts.PagesFetched)
	fmt.Fprintf(tw, "  diffs created\t%d\n", avg.Counts.DiffsCreated)
	fmt.Fprintf(tw, "  diffs applied\t%d\n", avg.Counts.DiffsApplied)
	fmt.Fprintf(tw, "  lock acquires\t%d\n", avg.Counts.LockAcquires)
	fmt.Fprintf(tw, "  barriers\t%d\n", avg.Counts.Barriers)
	fmt.Fprintf(tw, "  garbage collections\t%d\n", avg.Counts.GCs)
	tw.Flush()

	fmt.Println("\ncommunication and memory:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  messages\t%d\n", res.Stats.TotalMsgs())
	fmt.Fprintf(tw, "  update traffic\t%.2f MB\n", float64(res.Stats.TotalBytes(stats.ClassData))/(1<<20))
	fmt.Fprintf(tw, "  protocol traffic\t%.2f MB\n", float64(res.Stats.TotalBytes(stats.ClassProtocol))/(1<<20))
	fmt.Fprintf(tw, "  peak protocol memory/node\t%.2f MB\n", float64(res.Stats.PeakProtoMem())/(1<<20))
	fmt.Fprintf(tw, "  application memory/node\t%.2f MB\n", float64(res.Stats.TotalAppMem())/float64(machine.Nodes)/(1<<20))
	tw.Flush()

	if ff.Profile != gosvm.FaultNone {
		fmt.Printf("\nfault injection (profile %s, seed %d; per-node average):\n", ff.Profile, ff.Seed)
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  messages dropped\t%d\n", avg.Counts.MsgsDropped)
		if avg.Counts.LinkDrops > 0 {
			fmt.Fprintf(tw, "  eaten by mesh links\t%d\n", avg.Counts.LinkDrops)
		}
		fmt.Fprintf(tw, "  retransmissions\t%d\n", avg.Counts.Retries)
		fmt.Fprintf(tw, "  duplicates suppressed\t%d\n", avg.Counts.DupsSuppressed)
		fmt.Fprintf(tw, "  recovery time\t%.2f ms\n", avg.Recovery.Micros()/1e3)
		tw.Flush()
	}

	var rehomed, mgrsRehomed, locksReclaimed, replicaBytes, mirrorBytes int64
	var detect gosvm.Time
	for _, nd := range res.Stats.Nodes {
		rehomed += nd.Counts.PagesRehomed
		mgrsRehomed += nd.Counts.MgrsRehomed
		locksReclaimed += nd.Counts.LocksReclaimed
		replicaBytes += nd.ReplicaBytes
		mirrorBytes += nd.MirrorBytes
		if nd.Detect > detect {
			detect = nd.Detect
		}
	}
	if rehomed > 0 || replicaBytes > 0 {
		fmt.Printf("\ncrash recovery (replicas %d):\n", *replicas)
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  pages re-homed\t%d\n", rehomed)
		fmt.Fprintf(tw, "  replication traffic\t%.2f MB\n", float64(replicaBytes)/(1<<20))
		if mgrsRehomed > 0 {
			fmt.Fprintf(tw, "  managers re-homed\t%d\n", mgrsRehomed)
		}
		if locksReclaimed > 0 {
			fmt.Fprintf(tw, "  locks reclaimed\t%d\n", locksReclaimed)
		}
		if mirrorBytes > 0 {
			fmt.Fprintf(tw, "  manager mirror traffic\t%.2f KB\n", float64(mirrorBytes)/(1<<10))
		}
		if detect > 0 {
			fmt.Fprintf(tw, "  failure detection latency\t%.2f ms\n", detect.Micros()/1e3)
		}
		tw.Flush()
	}
}
