// Command svmcosts prints the machine cost model (the paper's Table 3)
// and the derived minimum page-miss and lock-acquire latencies of §4.3,
// then verifies the derived numbers against actual micro-simulations on
// the machine model.
package main

import (
	"flag"
	"fmt"
	"os"

	"gosvm/internal/bench"
	"gosvm/internal/cliflags"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

func main() {
	page := flag.Int("page", 8192, "page size in bytes")
	costsName := flag.String("costs", "", `cost profile: "paragon" (default; the paper's Table 3) or "modern" (us-scale kernel-bypass messaging)`)
	runWkrs := cliflags.AddRunWorkers(flag.CommandLine)
	flag.Parse()

	c, err := paragon.CostProfile(*costsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bench.Table3For(os.Stdout, *page, c)

	fmt.Println("\nMicro-simulated round trips (machine model, measured):")

	measure := func(name string, target paragon.Target, respBytes int, extra sim.Time) {
		k := sim.NewKernel()
		if *runWkrs >= 2 {
			// The round trips are real two-node simulations, so they can
			// run on the partitioned kernel; times are identical either way.
			k.Partition(2, c.Lookahead(), *runWkrs)
		}
		m := paragon.New(k, 2, c)
		h := func(msg paragon.Msg) (sim.Time, func()) {
			return extra, func() {
				m.Nodes[1].Respond(msg, paragon.Msg{Size: respBytes, Class: stats.ClassData})
			}
		}
		m.Nodes[1].InstallCompute(h)
		m.Nodes[1].InstallCoproc(h)
		var rt sim.Time
		k.Spawn("req", 0, func(p *sim.Proc) {
			t0 := p.Now()
			m.Nodes[0].Call(p, 1, paragon.Msg{Size: 4, Class: stats.ClassProtocol, Target: target})
			rt = p.Now() - t0
		})
		if err := k.Run(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k.Shutdown()
		fmt.Printf("  %-42s %7.0f us\n", name, rt.Micros())
	}

	measure(fmt.Sprintf("page fetch via interrupt (HLRC-style)"), paragon.ToCompute, *page, 0)
	measure(fmt.Sprintf("page fetch via co-processor (OHLRC-style)"), paragon.ToCoproc, *page, 0)
	measure("1-word diff fetch via interrupt (LRC-style)", paragon.ToCompute, 8, 0)
	measure("1-word diff fetch via co-processor (OLRC)", paragon.ToCoproc, 8, 0)
	fmt.Printf("  (add the %.0f us page fault to obtain the §4.3 miss figures)\n", c.PageFault.Micros())
}
