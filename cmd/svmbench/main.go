// Command svmbench regenerates the paper's evaluation: every table and
// figure of "Performance Evaluation of Two Home-Based Lazy Release
// Consistency Protocols for Shared Virtual Memory Systems" (OSDI 1996).
//
// Usage:
//
//	svmbench -all -size paper          # the full reproduction (minutes)
//	svmbench -table 2 -size small      # one table, quickly
//	svmbench -fig 3
//	svmbench -sor0 -ablations
//
// Runs are memoized, so -all shares the underlying sweep across tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gosvm/internal/apps"
	"gosvm/internal/bench"
)

func main() {
	var (
		size      = flag.String("size", "small", "problem size: test, small, paper")
		table     = flag.Int("table", 0, "regenerate one table (1-6)")
		fig       = flag.Int("fig", 0, "regenerate one figure (3 or 4)")
		sor0      = flag.Bool("sor0", false, "run the §4.8 zero-initialized SOR experiment")
		ablations = flag.Bool("ablations", false, "run the ablation suite")
		all       = flag.Bool("all", false, "regenerate everything")
		procsFlag = flag.String("procs", "8,32,64", "machine sizes")
		page      = flag.Int("page", 8192, "page size in bytes")
		faults    = flag.String("faults", "", "comma-separated fault profiles to sweep (lossy, hostile, crash)")
		rtoAbl    = flag.String("rto-ablation", "", "run the fixed-vs-adaptive RTO ablation on the mesh for these fault profiles (e.g. lossy,hostile)")
		seed      = flag.Int64("seed", 1, "seed for the -faults and -rto-ablation plans")
		jsonDir   = flag.String("json-dir", "", "write per-cell JSON statistics of the -faults / -rto-ablation sweeps here")
		parallel  = flag.Int("parallel", 0, "max concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential); output is identical at any setting")
		quiet     = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	r := bench.NewRunner(apps.Size(*size))
	r.PageBytes = *page
	r.Parallel = *parallel
	if !*quiet {
		r.Progress = os.Stderr
	}
	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", s)
			os.Exit(2)
		}
		procs = append(procs, p)
	}
	r.Procs = procs

	out := os.Stdout
	any := false
	section := func() {
		if any {
			fmt.Fprintln(out)
		}
		any = true
	}

	if *all || *table == 1 {
		section()
		r.Table1(out)
	}
	if *all || *table == 2 {
		section()
		r.Table2(out)
	}
	if *all || *table == 3 {
		section()
		bench.Table3(out, *page)
	}
	if *all || *table == 4 {
		section()
		r.Table4(out)
	}
	if *all || *table == 5 {
		section()
		r.Table5(out)
	}
	if *all || *table == 6 {
		section()
		r.Table6(out)
	}
	if *all || *fig == 3 {
		section()
		r.Fig3(out)
	}
	if *all || *fig == 4 {
		section()
		r.Fig4(out)
	}
	if *all || *sor0 {
		section()
		r.SORZero(out)
	}
	if *all || *ablations {
		section()
		r.Ablations(out)
	}
	if *faults != "" {
		section()
		var profiles []string
		for _, s := range strings.Split(*faults, ",") {
			profiles = append(profiles, strings.TrimSpace(s))
		}
		if err := r.FaultSweep(out, profiles, *seed, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *rtoAbl != "" {
		section()
		var profiles []string
		for _, s := range strings.Split(*rtoAbl, ",") {
			profiles = append(profiles, strings.TrimSpace(s))
		}
		if err := r.RTOSweep(out, profiles, *seed, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !any {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -table N, -fig N, -sor0, -ablations, -faults, or -rto-ablation")
		os.Exit(2)
	}
}
