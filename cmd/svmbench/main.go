// Command svmbench regenerates the paper's evaluation: every table and
// figure of "Performance Evaluation of Two Home-Based Lazy Release
// Consistency Protocols for Shared Virtual Memory Systems" (OSDI 1996).
//
// Usage:
//
//	svmbench -all -size paper          # the full reproduction (minutes)
//	svmbench -table 2 -size small      # one table, quickly
//	svmbench -fig 3
//	svmbench -sor0 -ablations
//	svmbench -scale                    # 64..1024-node scaling curves
//
// Runs are memoized, so -all shares the underlying sweep across tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gosvm/internal/apps"
	"gosvm/internal/bench"
	"gosvm/internal/cliflags"
	"gosvm/internal/paragon"
)

func main() {
	var (
		size       = flag.String("size", "small", "problem size: test, small, paper")
		table      = flag.Int("table", 0, "regenerate one table (1-6)")
		fig        = flag.Int("fig", 0, "regenerate one figure (3 or 4)")
		sor0       = flag.Bool("sor0", false, "run the §4.8 zero-initialized SOR experiment")
		ablations  = flag.Bool("ablations", false, "run the ablation suite")
		all        = flag.Bool("all", false, "regenerate everything")
		mf         = cliflags.AddMachineList(flag.CommandLine, "8,32,64", 8192)
		scale      = flag.Bool("scale", false, "run the machine-size scaling sweep (fixed-size SOR, speedup/traffic/hot-spot skew vs node count)")
		scaleNodes = flag.String("scale-nodes", "", "node counts for -scale (default 64,128,256,512,1024)")
		scaleJSON  = flag.String("scale-json", "", "append the -scale grid to this JSON trajectory file (conventionally BENCH_sim.json)")
		faults     = flag.String("faults", "", "comma-separated fault profiles to sweep (lossy, hostile, crash, crash-mgr)")
		rtoAbl     = flag.String("rto-ablation", "", "run the fixed-vs-adaptive RTO ablation on the mesh for these fault profiles (e.g. lossy,hostile)")
		seed       = flag.Int64("seed", 1, "seed for the -faults and -rto-ablation plans")
		jsonDir    = flag.String("json-dir", "", "write per-cell JSON statistics of the -faults / -rto-ablation sweeps here")
		parallel   = cliflags.AddParallel(flag.CommandLine)
		runWkrs    = cliflags.AddRunWorkers(flag.CommandLine)
		quiet      = cliflags.AddQuiet(flag.CommandLine)
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := bench.NewRunner(apps.Size(*size))
	r.PageBytes = mf.Page
	r.Parallel = *parallel
	r.RunWorkers = *runWkrs
	if !*quiet {
		r.Progress = os.Stderr
	}
	shape, err := mf.Shape()
	if err != nil {
		fail(err)
	}
	r.Machine = shape
	procs, err := mf.ProcsList()
	if err != nil {
		fail(err)
	}
	r.Procs = procs

	out := os.Stdout
	any := false
	section := func() {
		if any {
			fmt.Fprintln(out)
		}
		any = true
	}

	if *all || *table == 1 {
		section()
		r.Table1(out)
	}
	if *all || *table == 2 {
		section()
		r.Table2(out)
	}
	if *all || *table == 3 {
		section()
		c := r.Machine.Costs
		if c == (paragon.Costs{}) {
			c = paragon.DefaultCosts()
		}
		bench.Table3For(out, mf.Page, c)
	}
	if *all || *table == 4 {
		section()
		r.Table4(out)
	}
	if *all || *table == 5 {
		section()
		r.Table5(out)
	}
	if *all || *table == 6 {
		section()
		r.Table6(out)
	}
	if *all || *fig == 3 {
		section()
		r.Fig3(out)
	}
	if *all || *fig == 4 {
		section()
		r.Fig4(out)
	}
	if *all || *sor0 {
		section()
		r.SORZero(out)
	}
	if *all || *ablations {
		section()
		r.Ablations(out)
	}
	if *faults != "" {
		section()
		var profiles []string
		for _, s := range strings.Split(*faults, ",") {
			profiles = append(profiles, strings.TrimSpace(s))
		}
		if err := r.FaultSweep(out, profiles, *seed, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *scale {
		section()
		var o bench.ScaleOpts
		o.GridFor(apps.Size(*size))
		if *scaleNodes != "" {
			nodes, err := cliflags.Ints(*scaleNodes)
			if err != nil {
				fail(err)
			}
			o.Nodes = nodes
		}
		if err := r.ScaleSweep(out, o, *scaleJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *rtoAbl != "" {
		section()
		var profiles []string
		for _, s := range strings.Split(*rtoAbl, ",") {
			profiles = append(profiles, strings.TrimSpace(s))
		}
		if err := r.RTOSweep(out, profiles, *seed, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !any {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -table N, -fig N, -sor0, -ablations, -scale, -faults, or -rto-ablation")
		os.Exit(2)
	}
}
