// Command svmperf runs the simulator's performance regression benchmarks
// (internal/perf) plus a wall-clock sweep measurement, and appends one
// entry to a JSON trajectory file (BENCH_sim.json by default) so perf can
// be tracked across commits.
//
// Usage:
//
//	svmperf                       # bench + test-size sweep, append BENCH_sim.json
//	svmperf -out - -sweep=false   # print the entry to stdout, micro-benchmarks only
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"gosvm/internal/apps"
	"gosvm/internal/bench"
	"gosvm/internal/core"
	"gosvm/internal/perf"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Size        string  `json:"size"`
	Cells       int     `json:"cells"`
	Parallel    int     `json:"parallel"`
	SeqSeconds  float64 `json:"seq_seconds"`
	ParSeconds  float64 `json:"par_seconds"`
	SeqCellsSec float64 `json:"seq_cells_per_sec"`
	ParCellsSec float64 `json:"par_cells_per_sec"`
	Speedup     float64 `json:"speedup"`
}

// parallelPoint is one -run-workers measurement of a single big run:
// fixed simulated work, varying only the kernel worker count. Speedup
// is relative to the workers=1 (sequential kernel) point.
type parallelPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// parallelRunResult records the conservative-window kernel's wall-clock
// scaling on one big run each of SOR and the serving workload, at
// -run-workers 1/2/4/8. Unlike Sweep/Serve (many independent cells in
// worker goroutines), these parallelize inside a single simulation.
type parallelRunResult struct {
	SORNodes   int             `json:"sor_nodes"`
	SOR        []parallelPoint `json:"sor"`
	ServeNodes int             `json:"serve_nodes"`
	Serve      []parallelPoint `json:"serve"`
}

// fastpathMode is one ablation rung's walk-up-the-load-ladder result:
// the highest offered load the mode sustains without saturating, its
// tail latency there, and its tail latency at the baseline's sustained
// load (the apples-to-apples comparison point).
type fastpathMode struct {
	Mode      string  `json:"mode"`
	Sustained float64 `json:"sustained_load"`
	Achieved  float64 `json:"achieved_at_sustained"`
	P99Ms     float64 `json:"p99_ms_at_sustained"`
	P99AtBase float64 `json:"p99_ms_at_off_sustained"`
}

// fastpathResult records the serving fast path's headline numbers: the
// per-mode sustained-load ladder on a 64-node Zipf mix, the all-vs-off
// sustained-load speedup, and the determinism spot checks.
type fastpathResult struct {
	Nodes       int            `json:"nodes"`
	Ladder      []float64      `json:"load_ladder"`
	Modes       []fastpathMode `json:"modes"`
	SpeedupAll  float64        `json:"speedup_all_vs_off"`
	DetWorkers  bool           `json:"run_workers_deterministic"`
	DetParallel bool           `json:"parallel_deterministic"`
}

type entry struct {
	Timestamp   string                 `json:"timestamp"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Benchmarks  map[string]benchResult `json:"benchmarks"`
	Sweep       *sweepResult           `json:"sweep,omitempty"`
	Serve       *sweepResult           `json:"serve,omitempty"`
	ParallelRun *parallelRunResult     `json:"parallel_run,omitempty"`
	Fastpath    *fastpathResult        `json:"serve_fastpath,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_sim.json", "trajectory file to append to (- for stdout)")
		size     = flag.String("size", "test", "problem size for the sweep measurement")
		doSweep  = flag.Bool("sweep", true, "measure Table-2 sweep wall clock at -parallel 1 vs GOMAXPROCS")
		doServe  = flag.Bool("serve", true, "measure serving-sweep wall clock at -parallel 1 vs GOMAXPROCS")
		doParRun = flag.Bool("parallel-run", true, "measure single-run parallel kernel wall clock (1024-node SOR and a serve load point) at -run-workers 1/2/4/8")
		doFast   = flag.Bool("serve-fastpath", true, "walk the serving fast-path ablation ladder (64-node Zipf mix) and record per-mode sustained load")
	)
	flag.Parse()

	e := entry{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}

	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EventThroughput", perf.EventThroughput},
		{"ContextSwitch", perf.ContextSwitch},
		{"Sleep", perf.Sleep},
		{"ComputeDiff", perf.ComputeDiff},
		{"ApplyDiff", perf.ApplyDiff},
		{"SORSmall", perf.SORSmall},
		{"LUSmall", perf.LUSmall},
		{"ServeSmall", perf.ServeSmall},
		{"ScaleSmall", perf.ScaleSmall},
	} {
		fmt.Fprintf(os.Stderr, "# bench %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		e.Benchmarks[b.name] = benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	if *doSweep {
		e.Sweep = measureSweep(apps.Size(*size))
	}
	if *doServe {
		e.Serve = measureServe()
	}
	if *doParRun {
		e.ParallelRun = measureParallelRun()
	}
	if *doFast {
		e.Fastpath = measureServeFastpath()
	}

	if err := bench.AppendJSON(*out, e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// sweepOnce renders the Table-2 grid into the void at the given
// parallelism and returns the wall-clock seconds and the cell count.
func sweepOnce(size apps.Size, parallel int) (float64, int) {
	r := bench.NewRunner(size)
	r.Parallel = parallel
	start := time.Now()
	r.Table2(io.Discard)
	secs := time.Since(start).Seconds()
	// Grid cells plus one sequential baseline per application.
	cells := len(bench.AppNames()) * (1 + len(r.Procs)*len(core.Protocols))
	return secs, cells
}

func measureSweep(size apps.Size) *sweepResult {
	par := runtime.GOMAXPROCS(0)
	fmt.Fprintf(os.Stderr, "# sweep %s -parallel 1...\n", size)
	seqS, cells := sweepOnce(size, 1)
	fmt.Fprintf(os.Stderr, "# sweep %s -parallel %d...\n", size, par)
	parS, _ := sweepOnce(size, par)
	return &sweepResult{
		Size:        string(size),
		Cells:       cells,
		Parallel:    par,
		SeqSeconds:  seqS,
		ParSeconds:  parS,
		SeqCellsSec: float64(cells) / seqS,
		ParCellsSec: float64(cells) / parS,
		Speedup:     seqS / parS,
	}
}

// serveSweepOnce renders a small serving sweep into the void at the
// given parallelism and returns wall-clock seconds and the cell count.
func serveSweepOnce(parallel int) (float64, int) {
	r := bench.NewRunner(apps.SizeTest)
	r.Procs = []int{2, 4}
	r.Parallel = parallel
	o := bench.ServeSweepOpts{
		Base:  serve.Config{Keys: 256, Window: 20 * sim.Millisecond, Seed: 7},
		Loads: []float64{400, 2000},
		Seed:  7,
	}
	start := time.Now()
	if err := r.ServeSweep(io.Discard, o, ""); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	secs := time.Since(start).Seconds()
	cells := len(o.Loads) * len(r.Procs) * len(core.Protocols)
	return secs, cells
}

const (
	parSORNodes   = 1024
	parServeNodes = 64
)

var parWorkers = []int{1, 2, 4, 8}

// parSOROnce runs the 1024-node paper-grid SOR (the -scale flagship
// cell) once at the given -run-workers and returns wall-clock seconds.
func parSOROnce(workers int) float64 {
	app := &apps.SOR{H: 2048, W: 1024, Iters: 4, ElemNs: 9700}
	opts := core.Options{
		Protocol:   core.ProtoHLRC,
		PageBytes:  4096,
		Machine:    core.Machine{Nodes: parSORNodes},
		RunWorkers: workers,
	}
	start := time.Now()
	if _, err := core.Run(opts, app, false); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Seconds()
}

// parServeOnce runs one 64-node open-loop serving load point at the
// given -run-workers and returns wall-clock seconds.
func parServeOnce(workers int) float64 {
	cfg := serve.Config{
		Keys:        4096,
		OfferedLoad: 32000,
		Window:      400 * sim.Millisecond,
		ZipfTheta:   0.9,
		Seed:        7,
	}
	kv, err := serve.New(cfg, parServeNodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := core.Options{
		Protocol:   core.ProtoHLRC,
		NumProcs:   parServeNodes,
		RunWorkers: workers,
	}
	start := time.Now()
	if _, err := serve.Run(opts, kv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Seconds()
}

func measureParallelRun() *parallelRunResult {
	measure := func(name string, once func(int) float64) []parallelPoint {
		var pts []parallelPoint
		var base float64
		for _, w := range parWorkers {
			fmt.Fprintf(os.Stderr, "# %s -run-workers %d...\n", name, w)
			s := once(w)
			if w == 1 {
				base = s
			}
			pts = append(pts, parallelPoint{Workers: w, Seconds: s, Speedup: base / s})
		}
		return pts
	}
	return &parallelRunResult{
		SORNodes:   parSORNodes,
		SOR:        measure("parallel-run sor", parSOROnce),
		ServeNodes: parServeNodes,
		Serve:      measure("parallel-run serve", parServeOnce),
	}
}

const fastpathNodes = 64

// fastpathCfg is the serve_fastpath workload shape: 64 nodes, Zipf-0.9
// skew, the default 80/15/5 mix, under OHLRC (the co-processor serves
// page fetches, so the fast path's extra revalidation fetches do not
// steal server time on hot homes). The 1s window keeps the saturation
// ratio a steady-state measure: with a short window, one tail-latency
// request overhanging the end biases achieved/offered down by
// tail/window even on a healthy system.
func fastpathCfg(mode string, load float64) serve.Config {
	cfg := serve.Config{
		Keys:        4096,
		OfferedLoad: load,
		Window:      sim.Second,
		ZipfTheta:   0.9,
		Seed:        7,
	}
	if err := serve.ApplyFastpath(&cfg, mode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return cfg
}

// fastpathPoint runs one (mode, load) point on the 64-node machine
// under HLRC and returns its serve stats plus the full stats JSON.
func fastpathPoint(mode string, load float64, workers int) (*stats.ServeStats, string) {
	kv, err := serve.New(fastpathCfg(mode, load), fastpathNodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := core.Options{
		Protocol:   core.ProtoOHLRC,
		NumProcs:   fastpathNodes,
		RunWorkers: workers,
	}
	res, err := serve.Run(opts, kv)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := res.Stats.WriteJSON(&buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res.Stats.Serve, buf.String()
}

// measureServeFastpath walks each ablation rung up a geometric offered-
// load ladder until it saturates, recording the sustained load (last
// unsaturated rung) and tail latency. The headline is SpeedupAll: the
// full fast path's sustained load over the baseline's. Two spot checks
// assert the fast path stayed deterministic: byte-identical stats at
// -run-workers 1 vs 8, and a byte-identical sweep at -parallel 1 vs 8.
func measureServeFastpath() *fastpathResult {
	var ladder []float64
	for l := 4000.0; len(ladder) < 10; l *= 1.5 {
		ladder = append(ladder, l)
	}
	r := &fastpathResult{Nodes: fastpathNodes, Ladder: ladder}

	cache := map[string]map[float64]*stats.ServeStats{}
	at := func(mode string, load float64) *stats.ServeStats {
		if s, ok := cache[mode][load]; ok {
			return s
		}
		fmt.Fprintf(os.Stderr, "# serve-fastpath %s l=%.0f...\n", mode, load)
		s, _ := fastpathPoint(mode, load, 0)
		if cache[mode] == nil {
			cache[mode] = map[float64]*stats.ServeStats{}
		}
		cache[mode][load] = s
		return s
	}

	var offSustained float64
	for _, mode := range serve.Modes {
		m := fastpathMode{Mode: mode}
		for _, load := range ladder {
			s := at(mode, load)
			if s.Saturated() {
				break
			}
			m.Sustained = load
			m.Achieved = s.AchievedRate()
			m.P99Ms = s.Latency.P99().Micros() / 1e3
		}
		if mode == serve.ModeOff {
			offSustained = m.Sustained
		}
		if offSustained > 0 {
			m.P99AtBase = at(mode, offSustained).Latency.P99().Micros() / 1e3
		}
		r.Modes = append(r.Modes, m)
	}
	if offSustained > 0 {
		r.SpeedupAll = r.Modes[len(r.Modes)-1].Sustained / offSustained
	}

	fmt.Fprintf(os.Stderr, "# serve-fastpath determinism: -run-workers 1 vs 8...\n")
	_, j1 := fastpathPoint(serve.ModeAll, ladder[1], 1)
	_, j8 := fastpathPoint(serve.ModeAll, ladder[1], 8)
	r.DetWorkers = j1 == j8

	fmt.Fprintf(os.Stderr, "# serve-fastpath determinism: -parallel 1 vs 8...\n")
	sweep := func(parallel int) string {
		br := bench.NewRunner(apps.SizeTest)
		br.Procs = []int{8}
		br.Parallel = parallel
		var buf bytes.Buffer
		o := bench.ServeSweepOpts{
			Base:   serve.Config{Keys: 256, Window: 20 * sim.Millisecond, ZipfTheta: 0.9, Seed: 7},
			Loads:  []float64{2000, 6000},
			Protos: []core.Protocol{core.ProtoHLRC, core.ProtoOHLRC},
			Modes:  serve.Modes,
			Seed:   7,
		}
		if err := br.ServeSweep(&buf, o, ""); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return buf.String()
	}
	r.DetParallel = sweep(1) == sweep(8)
	return r
}

func measureServe() *sweepResult {
	par := runtime.GOMAXPROCS(0)
	fmt.Fprintf(os.Stderr, "# serve sweep -parallel 1...\n")
	seqS, cells := serveSweepOnce(1)
	fmt.Fprintf(os.Stderr, "# serve sweep -parallel %d...\n", par)
	parS, _ := serveSweepOnce(par)
	return &sweepResult{
		Size:        "test",
		Cells:       cells,
		Parallel:    par,
		SeqSeconds:  seqS,
		ParSeconds:  parS,
		SeqCellsSec: float64(cells) / seqS,
		ParCellsSec: float64(cells) / parS,
		Speedup:     seqS / parS,
	}
}
