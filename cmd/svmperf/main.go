// Command svmperf runs the simulator's performance regression benchmarks
// (internal/perf) plus a wall-clock sweep measurement, and appends one
// entry to a JSON trajectory file (BENCH_sim.json by default) so perf can
// be tracked across commits.
//
// Usage:
//
//	svmperf                       # bench + test-size sweep, append BENCH_sim.json
//	svmperf -out - -sweep=false   # print the entry to stdout, micro-benchmarks only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"gosvm/internal/apps"
	"gosvm/internal/bench"
	"gosvm/internal/core"
	"gosvm/internal/perf"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Size        string  `json:"size"`
	Cells       int     `json:"cells"`
	Parallel    int     `json:"parallel"`
	SeqSeconds  float64 `json:"seq_seconds"`
	ParSeconds  float64 `json:"par_seconds"`
	SeqCellsSec float64 `json:"seq_cells_per_sec"`
	ParCellsSec float64 `json:"par_cells_per_sec"`
	Speedup     float64 `json:"speedup"`
}

// parallelPoint is one -run-workers measurement of a single big run:
// fixed simulated work, varying only the kernel worker count. Speedup
// is relative to the workers=1 (sequential kernel) point.
type parallelPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// parallelRunResult records the conservative-window kernel's wall-clock
// scaling on one big run each of SOR and the serving workload, at
// -run-workers 1/2/4/8. Unlike Sweep/Serve (many independent cells in
// worker goroutines), these parallelize inside a single simulation.
type parallelRunResult struct {
	SORNodes   int             `json:"sor_nodes"`
	SOR        []parallelPoint `json:"sor"`
	ServeNodes int             `json:"serve_nodes"`
	Serve      []parallelPoint `json:"serve"`
}

type entry struct {
	Timestamp   string                 `json:"timestamp"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Benchmarks  map[string]benchResult `json:"benchmarks"`
	Sweep       *sweepResult           `json:"sweep,omitempty"`
	Serve       *sweepResult           `json:"serve,omitempty"`
	ParallelRun *parallelRunResult     `json:"parallel_run,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_sim.json", "trajectory file to append to (- for stdout)")
		size     = flag.String("size", "test", "problem size for the sweep measurement")
		doSweep  = flag.Bool("sweep", true, "measure Table-2 sweep wall clock at -parallel 1 vs GOMAXPROCS")
		doServe  = flag.Bool("serve", true, "measure serving-sweep wall clock at -parallel 1 vs GOMAXPROCS")
		doParRun = flag.Bool("parallel-run", true, "measure single-run parallel kernel wall clock (1024-node SOR and a serve load point) at -run-workers 1/2/4/8")
	)
	flag.Parse()

	e := entry{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}

	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EventThroughput", perf.EventThroughput},
		{"ContextSwitch", perf.ContextSwitch},
		{"Sleep", perf.Sleep},
		{"ComputeDiff", perf.ComputeDiff},
		{"ApplyDiff", perf.ApplyDiff},
		{"SORSmall", perf.SORSmall},
		{"LUSmall", perf.LUSmall},
		{"ServeSmall", perf.ServeSmall},
		{"ScaleSmall", perf.ScaleSmall},
	} {
		fmt.Fprintf(os.Stderr, "# bench %s...\n", b.name)
		r := testing.Benchmark(b.fn)
		e.Benchmarks[b.name] = benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	if *doSweep {
		e.Sweep = measureSweep(apps.Size(*size))
	}
	if *doServe {
		e.Serve = measureServe()
	}
	if *doParRun {
		e.ParallelRun = measureParallelRun()
	}

	if err := bench.AppendJSON(*out, e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// sweepOnce renders the Table-2 grid into the void at the given
// parallelism and returns the wall-clock seconds and the cell count.
func sweepOnce(size apps.Size, parallel int) (float64, int) {
	r := bench.NewRunner(size)
	r.Parallel = parallel
	start := time.Now()
	r.Table2(io.Discard)
	secs := time.Since(start).Seconds()
	// Grid cells plus one sequential baseline per application.
	cells := len(bench.AppNames()) * (1 + len(r.Procs)*len(core.Protocols))
	return secs, cells
}

func measureSweep(size apps.Size) *sweepResult {
	par := runtime.GOMAXPROCS(0)
	fmt.Fprintf(os.Stderr, "# sweep %s -parallel 1...\n", size)
	seqS, cells := sweepOnce(size, 1)
	fmt.Fprintf(os.Stderr, "# sweep %s -parallel %d...\n", size, par)
	parS, _ := sweepOnce(size, par)
	return &sweepResult{
		Size:        string(size),
		Cells:       cells,
		Parallel:    par,
		SeqSeconds:  seqS,
		ParSeconds:  parS,
		SeqCellsSec: float64(cells) / seqS,
		ParCellsSec: float64(cells) / parS,
		Speedup:     seqS / parS,
	}
}

// serveSweepOnce renders a small serving sweep into the void at the
// given parallelism and returns wall-clock seconds and the cell count.
func serveSweepOnce(parallel int) (float64, int) {
	r := bench.NewRunner(apps.SizeTest)
	r.Procs = []int{2, 4}
	r.Parallel = parallel
	o := bench.ServeSweepOpts{
		Base:  serve.Config{Keys: 256, Window: 20 * sim.Millisecond, Seed: 7},
		Loads: []float64{400, 2000},
		Seed:  7,
	}
	start := time.Now()
	if err := r.ServeSweep(io.Discard, o, ""); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	secs := time.Since(start).Seconds()
	cells := len(o.Loads) * len(r.Procs) * len(core.Protocols)
	return secs, cells
}

const (
	parSORNodes   = 1024
	parServeNodes = 64
)

var parWorkers = []int{1, 2, 4, 8}

// parSOROnce runs the 1024-node paper-grid SOR (the -scale flagship
// cell) once at the given -run-workers and returns wall-clock seconds.
func parSOROnce(workers int) float64 {
	app := &apps.SOR{H: 2048, W: 1024, Iters: 4, ElemNs: 9700}
	opts := core.Options{
		Protocol:   core.ProtoHLRC,
		PageBytes:  4096,
		Machine:    core.Machine{Nodes: parSORNodes},
		RunWorkers: workers,
	}
	start := time.Now()
	if _, err := core.Run(opts, app, false); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Seconds()
}

// parServeOnce runs one 64-node open-loop serving load point at the
// given -run-workers and returns wall-clock seconds.
func parServeOnce(workers int) float64 {
	cfg := serve.Config{
		Keys:        4096,
		OfferedLoad: 32000,
		Window:      400 * sim.Millisecond,
		ZipfTheta:   0.9,
		Seed:        7,
	}
	kv, err := serve.New(cfg, parServeNodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := core.Options{
		Protocol:   core.ProtoHLRC,
		NumProcs:   parServeNodes,
		RunWorkers: workers,
	}
	start := time.Now()
	if _, err := serve.Run(opts, kv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Seconds()
}

func measureParallelRun() *parallelRunResult {
	measure := func(name string, once func(int) float64) []parallelPoint {
		var pts []parallelPoint
		var base float64
		for _, w := range parWorkers {
			fmt.Fprintf(os.Stderr, "# %s -run-workers %d...\n", name, w)
			s := once(w)
			if w == 1 {
				base = s
			}
			pts = append(pts, parallelPoint{Workers: w, Seconds: s, Speedup: base / s})
		}
		return pts
	}
	return &parallelRunResult{
		SORNodes:   parSORNodes,
		SOR:        measure("parallel-run sor", parSOROnce),
		ServeNodes: parServeNodes,
		Serve:      measure("parallel-run serve", parServeOnce),
	}
}

func measureServe() *sweepResult {
	par := runtime.GOMAXPROCS(0)
	fmt.Fprintf(os.Stderr, "# serve sweep -parallel 1...\n")
	seqS, cells := serveSweepOnce(1)
	fmt.Fprintf(os.Stderr, "# serve sweep -parallel %d...\n", par)
	parS, _ := serveSweepOnce(par)
	return &sweepResult{
		Size:        "test",
		Cells:       cells,
		Parallel:    par,
		SeqSeconds:  seqS,
		ParSeconds:  parS,
		SeqCellsSec: float64(cells) / seqS,
		ParCellsSec: float64(cells) / parS,
		Speedup:     seqS / parS,
	}
}
