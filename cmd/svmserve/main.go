// Command svmserve runs the open-loop request-serving workload: a
// key-value store sharded over SVM pages, driven by seeded Poisson (or
// bursty MMPP) client populations, swept over offered load x protocol x
// machine size with p50/p99/p999 tail latency, throughput-vs-offered-
// load, and saturation detection.
//
// Usage:
//
//	svmserve                                   # default sweep
//	svmserve -loads 500,1000,2000,4000 -procs 4,8
//	svmserve -faults crash -window-ms 60       # tail latency under a mid-run crash
//	svmserve -arrival bursty -zipf 0.99 -mix 50,40,10
//	svmserve -ablation all                     # fast-path ladder: off,locks,seqlock,batch,all
//	svmserve -key-locks 8 -seqlock -batch-window 200 -pipeline
//	svmserve -closed-loop 32,128 -think-ms 1   # closed-loop comparison table
//	svmserve -json-dir out/serve               # per-cell JSON with full histograms
//
// Output is byte-identical at any -parallel level for a fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gosvm/internal/apps"
	"gosvm/internal/bench"
	"gosvm/internal/cliflags"
	"gosvm/internal/core"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

func main() {
	var (
		mf        = cliflags.AddMachineList(flag.CommandLine, "4,8", 4096)
		protoFlag = flag.String("protocols", "", "protocol columns (default: lrc,olrc,hlrc,ohlrc; crash profile: hlrc,ohlrc)")
		loadsFlag = flag.String("loads", "500,1000,2000,4000", "offered loads to sweep, total req/s across the machine")
		windowMs  = flag.Float64("window-ms", 50, "arrival window in simulated milliseconds")
		keys      = flag.Int("keys", 4096, "key-space size")
		shards    = flag.Int("shards", 0, "lock-guarded shards (0 = 4 per node)")
		mix       = flag.String("mix", "80,15,5", "read,write,scan percentages")
		scanLen   = flag.Int("scan", 16, "slots per scan")
		zipf      = flag.Float64("zipf", 0.9, "Zipfian key skew theta in [0,1); 0 = uniform")
		arrival   = flag.String("arrival", "poisson", "arrival process: poisson or bursty (MMPP-2)")
		burst     = flag.Float64("burst", 3, "bursty arrival burst-state rate multiplier")
		serviceUs = flag.Float64("service-us", 5, "modeled per-op compute time, microseconds")
		keyLocks  = flag.Int("key-locks", 0, "lock stripes per shard (0 = one lock per shard)")
		seqlock   = flag.Bool("seqlock", false, "lock-free validated reads (home-based protocols)")
		batchUs   = flag.Float64("batch-window", 0, "request-batching window, microseconds (0 = off)")
		maxBatch  = flag.Int("max-batch", 0, "max ops coalesced per critical section (0 = default 16)")
		pipeline  = flag.Bool("pipeline", false, "prefetch the next shard's page under the current critical section")
		ablation  = flag.String("ablation", "", "sweep fast-path ablation modes (\"all\" = off,locks,seqlock,batch,all; or a comma list), overriding the individual fast-path flags")
		closed    = flag.String("closed-loop", "", "closed-loop client counts to compare (comma list; empty = open loop only)")
		thinkMs   = flag.Float64("think-ms", 1, "closed-loop mean think time, milliseconds")
		ff        = cliflags.AddFaultBasic(flag.CommandLine, "")
		parallel  = cliflags.AddParallel(flag.CommandLine)
		runWkrs   = cliflags.AddRunWorkers(flag.CommandLine)
		jsonDir   = flag.String("json-dir", "", "write per-cell JSON statistics (with latency histograms) here")
		quiet     = cliflags.AddQuiet(flag.CommandLine)
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(2)
	}

	r := bench.NewRunner(apps.SizeSmall)
	r.PageBytes = mf.Page
	r.Parallel = *parallel
	r.RunWorkers = *runWkrs
	if !*quiet {
		r.Progress = os.Stderr
	}
	shape, err := mf.Shape()
	if err != nil {
		fail("%v", err)
	}
	r.Machine = shape
	procs, err := mf.ProcsList()
	if err != nil {
		fail("%v", err)
	}
	r.Procs = procs

	var loads []float64
	for _, s := range strings.Split(*loadsFlag, ",") {
		l, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || l <= 0 {
			fail("bad -loads entry %q", s)
		}
		loads = append(loads, l)
	}

	var protos []core.Protocol
	if *protoFlag != "" {
		for _, s := range strings.Split(*protoFlag, ",") {
			p, err := core.ParseProtocol(strings.TrimSpace(s))
			if err != nil {
				fail("%v", err)
			}
			protos = append(protos, p)
		}
	}

	mixParts := strings.Split(*mix, ",")
	if len(mixParts) != 3 {
		fail("bad -mix %q: want read,write,scan percentages", *mix)
	}
	var pcts [3]int
	for i, s := range mixParts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fail("bad -mix entry %q", s)
		}
		pcts[i] = v
	}

	cfg := serve.Config{
		Keys:        *keys,
		Shards:      *shards,
		Window:      sim.Time(*windowMs * float64(sim.Millisecond)),
		ReadPct:     pcts[0],
		WritePct:    pcts[1],
		ScanPct:     pcts[2],
		ScanLen:     *scanLen,
		ZipfTheta:   *zipf,
		Arrival:     *arrival,
		BurstFactor: *burst,
		ServiceNs:   sim.Time(*serviceUs * float64(sim.Microsecond)),
		Seed:        ff.Seed,
		KeyLocks:    *keyLocks,
		Seqlock:     *seqlock,
		BatchWindow: sim.Time(*batchUs * float64(sim.Microsecond)),
		MaxBatch:    *maxBatch,
		Pipeline:    *pipeline,
	}

	var modes []string
	switch *ablation {
	case "":
	case "all":
		modes = serve.Modes
	default:
		for _, s := range strings.Split(*ablation, ",") {
			m := strings.TrimSpace(s)
			if err := serve.ApplyFastpath(&serve.Config{}, m); err != nil {
				fail("%v", err)
			}
			modes = append(modes, m)
		}
	}

	var clients []int
	if *closed != "" {
		for _, s := range strings.Split(*closed, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fail("bad -closed-loop entry %q", s)
			}
			clients = append(clients, n)
		}
	}

	opts := bench.ServeSweepOpts{
		Base:    cfg,
		Loads:   loads,
		Protos:  protos,
		Profile: ff.Profile,
		Seed:    ff.Seed,
		Modes:   modes,
		Closed:  clients,
		Think:   sim.Time(*thinkMs * float64(sim.Millisecond)),
	}
	if err := r.ServeSweep(os.Stdout, opts, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
