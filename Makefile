# Developer entry points; CI runs the same gates (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet fmt check sweep-faults sweep-rto sweep-serve sweep-serve-scale sweep-scale bench bench-json

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (same gate as CI).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

check: fmt vet build test

# The Table-2 speedup grid under every fault profile, with per-cell JSON
# statistics. Crash cells run the home-based protocols with one replica.
sweep-faults:
	$(GO) run ./cmd/svmbench -faults lossy,hostile,crash -size small -json-dir out/faults

# Fixed vs adaptive retransmission timeout on the link-granularity mesh,
# per fault profile, with per-cell JSON statistics.
sweep-rto:
	$(GO) run ./cmd/svmbench -rto-ablation lossy,hostile -size small -procs 8,32 -json-dir out/rto

# Open-loop KV serving: offered load x protocol x machine size with tail
# latency, saturation detection, and per-cell JSON latency histograms.
sweep-serve:
	$(GO) run ./cmd/svmserve -loads 500,1000,2000,4000 -procs 4,8 -json-dir out/serve

# Serving at scale: the fast-path ablation ladder on 64 -> 1024 nodes
# under modern (kernel-bypass) costs, with the parallel kernel carrying
# each run. Home hot-spot skew (max/mean serviced messages) is the
# per-cell Skew column.
sweep-serve-scale:
	$(GO) run ./cmd/svmserve -procs 64,256,1024 -costs modern -run-workers 8 \
		-loads 200000,800000 -protocols hlrc,ohlrc -ablation all -q

# Strong-scaling curves 64 -> 1024 nodes on the paper's SOR grid:
# speedup, traffic split, home hot-spot skew, and protocol memory per
# protocol, appended to BENCH_sim.json as a "scale" entry.
sweep-scale:
	$(GO) run ./cmd/svmbench -scale -size paper -scale-json BENCH_sim.json

bench:
	$(GO) test -bench=. -benchmem ./...

# Append one perf-trajectory entry (micro-benchmarks + sweep wall clock)
# to BENCH_sim.json; compare entries across commits to catch regressions.
bench-json:
	$(GO) run ./cmd/svmperf -out BENCH_sim.json
