package gosvm_test

import (
	"fmt"

	"gosvm"
)

// sumApp is a minimal application: every processor writes one shared
// word, and processor 0 sums them after a barrier.
type sumApp struct {
	cells gosvm.Addr
	total gosvm.Addr
}

func (a *sumApp) Name() string { return "sum" }

func (a *sumApp) Setup(s *gosvm.Setup) {
	a.cells = s.Alloc(s.P)
	a.total = s.Alloc(1)
}

func (a *sumApp) Init(w *gosvm.Init) { w.Store(a.total, 0) }

func (a *sumApp) Worker(c *gosvm.Ctx, id int) {
	c.Store(a.cells+gosvm.Addr(id), float64(id+1))
	c.Barrier(0)
	if id == 0 {
		sum := 0.0
		for i := 0; i < c.NumProcs(); i++ {
			sum += c.Load(a.cells + gosvm.Addr(i))
		}
		c.Store(a.total, sum)
	}
	c.Barrier(1)
}

func (a *sumApp) Gather(c *gosvm.Ctx) []float64 {
	return []float64{c.Load(a.total)}
}

// Run a small application under the paper's home-based protocol.
func Example() {
	res, err := gosvm.Run(gosvm.Options{
		Protocol:  gosvm.HLRC,
		NumProcs:  4,
		PageBytes: 4096,
	}, &sumApp{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Data[0])
	// Output: 10
}

// Compare a workload across all four of the paper's protocols.
func Example_protocols() {
	for _, proto := range gosvm.Protocols {
		res, err := gosvm.Run(gosvm.Options{
			Protocol:  proto,
			NumProcs:  4,
			PageBytes: 4096,
		}, &sumApp{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %v\n", proto, res.Data[0])
	}
	// Output:
	// lrc: 10
	// olrc: 10
	// hlrc: 10
	// ohlrc: 10
}

// Capture a protocol event trace.
func ExampleOptions_traceLimit() {
	res, err := gosvm.Run(gosvm.Options{
		Protocol:   gosvm.HLRC,
		NumProcs:   4,
		PageBytes:  4096,
		TraceLimit: -1,
	}, &sumApp{})
	if err != nil {
		panic(err)
	}
	counts := res.Trace.Counts()
	fmt.Println(counts[0] > 0) // read misses captured
	// Output: true
}
