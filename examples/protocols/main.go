// Protocols: the paper's headline experiment in miniature. A
// multiple-writer workload with reader fan-out — every processor writes
// its own words of shared pages (false sharing), then every processor
// reads everything — runs under all four protocols across machine sizes,
// showing the two results the paper establishes:
//
//  1. home-based protocols (HLRC/OHLRC) outperform homeless ones
//     (LRC/OLRC), with the gap widening as the machine grows: an LRC
//     reader must collect diffs from every writer of a page, while an
//     HLRC reader fetches the merged page from its home in one round
//     trip; and
//  2. co-processor overlapping (O-variants) adds a further, more modest
//     improvement.
//
// Run it with:
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"gosvm"
)

// falseSharing is the workload: a shared region written word-interleaved
// by all processors and then read by all of them, round after round —
// the fine-grained multiple-writer pattern (the paper's Raytrace and
// Water cases) that page-based protocols must merge.
type falseSharing struct {
	words  int
	rounds int
	data   gosvm.Addr
}

func (a *falseSharing) Name() string { return "falsesharing" }

func (a *falseSharing) Setup(s *gosvm.Setup) {
	a.data = s.Alloc(a.words)
}

func (a *falseSharing) Init(w *gosvm.Init) {
	for i := 0; i < a.words; i++ {
		w.Store(a.data+gosvm.Addr(i), 0)
	}
}

func (a *falseSharing) Worker(c *gosvm.Ctx, id int) {
	p := c.NumProcs()
	bar := 0
	for r := 0; r < a.rounds; r++ {
		// Write phase: word-interleaved, so every page has p writers.
		for i := id; i < a.words; i += p {
			c.Store(a.data+gosvm.Addr(i), c.Load(a.data+gosvm.Addr(i))+1)
		}
		c.Compute(2 * gosvm.Millisecond)
		c.Barrier(bar)
		bar++
		// Read phase: every processor consumes the merged region.
		sum := 0.0
		for i := 0; i < a.words; i++ {
			sum += c.Load(a.data + gosvm.Addr(i))
		}
		if want := float64((r + 1) * a.words); sum != want {
			log.Fatalf("proc %d round %d: sum %v, want %v", id, r, sum, want)
		}
		c.Compute(2 * gosvm.Millisecond)
		c.Barrier(bar)
		bar++
	}
}

func (a *falseSharing) Gather(c *gosvm.Ctx) []float64 {
	out := make([]float64, a.words)
	c.ReadRange(a.data, out)
	return out
}

func main() {
	fmt.Println("Multiple-writer false sharing with reader fan-out:")
	fmt.Println()
	fmt.Printf("%8s  %10s %10s %10s %10s   %s\n", "nodes", "LRC", "OLRC", "HLRC", "OHLRC", "HLRC/LRC gain")
	for _, procs := range []int{4, 8, 16, 32} {
		times := map[gosvm.Protocol]float64{}
		for _, proto := range gosvm.Protocols {
			app := &falseSharing{words: 4096, rounds: 3}
			res, err := gosvm.Run(gosvm.Options{
				Protocol:  proto,
				Machine:   gosvm.NewMachine(procs),
				PageBytes: 4096,
			}, app)
			if err != nil {
				log.Fatal(err)
			}
			for i, v := range res.Data {
				if v != float64(app.rounds) {
					log.Fatalf("%s/p%d: word %d = %v, want %d", proto, procs, i, v, app.rounds)
				}
			}
			times[proto] = res.Stats.Elapsed.Micros() / 1e3
		}
		fmt.Printf("%8d  %8.1fms %8.1fms %8.1fms %8.1fms   %.2fx\n",
			procs, times[gosvm.LRC], times[gosvm.OLRC], times[gosvm.HLRC], times[gosvm.OHLRC],
			times[gosvm.LRC]/times[gosvm.HLRC])
	}
	fmt.Println("\nThe home-based advantage grows with machine size; overlapping")
	fmt.Println("adds a smaller improvement on top — the paper's two findings.")
}
