// Stencil: an iterative 2-D heat-diffusion solver on shared virtual
// memory — the class of regular scientific workload (like the paper's
// SOR) that motivates home-based protocols: each processor owns a band of
// rows, homes are placed with the owners, and only boundary rows move
// between nodes.
//
// The example runs the same solver under HLRC and standard LRC and
// reports the execution-time difference and communication traffic, the
// paper's headline comparison in miniature. Run it with:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"gosvm"
)

type stencil struct {
	h, w  int
	iters int
	p     int
	grid  gosvm.Addr // h x w, updated in place (Jacobi with two planes)
	next  gosvm.Addr
}

func (a *stencil) Name() string { return "stencil" }

func (a *stencil) Setup(s *gosvm.Setup) {
	a.p = s.P
	a.grid = s.Alloc(a.h * a.w)
	a.next = s.Alloc(a.h * a.w)
}

func (a *stencil) Init(w *gosvm.Init) {
	// Hot left edge, cold elsewhere.
	for i := 0; i < a.h; i++ {
		for j := 0; j < a.w; j++ {
			v := 0.0
			if j == 0 {
				v = 100.0
			}
			w.Store(a.grid+gosvm.Addr(i*a.w+j), v)
			w.Store(a.next+gosvm.Addr(i*a.w+j), v)
		}
	}
	// Home placement: each band's pages live on their writer — the
	// "homes chosen intelligently" the home-based protocols rely on.
	for id := 0; id < a.p; id++ {
		lo, hi := a.band(id, a.p)
		w.SetHome(a.grid+gosvm.Addr(lo*a.w), (hi-lo)*a.w, id)
		w.SetHome(a.next+gosvm.Addr(lo*a.w), (hi-lo)*a.w, id)
	}
}

// band returns the rows owned by processor id.
func (a *stencil) band(id, p int) (int, int) {
	per := a.h / p
	lo := id * per
	hi := lo + per
	if id == p-1 {
		hi = a.h
	}
	return lo, hi
}

func (a *stencil) Worker(c *gosvm.Ctx, id int) {
	p := c.NumProcs()
	lo, hi := a.band(id, p)
	up := make([]float64, a.w)
	mid := make([]float64, a.w)
	down := make([]float64, a.w)
	out := make([]float64, a.w)
	src, dst := a.grid, a.next
	for it := 0; it < a.iters; it++ {
		for i := lo; i < hi; i++ {
			c.ReadRange(src+gosvm.Addr(i*a.w), mid)
			if i > 0 {
				c.ReadRange(src+gosvm.Addr((i-1)*a.w), up)
			}
			if i < a.h-1 {
				c.ReadRange(src+gosvm.Addr((i+1)*a.w), down)
			}
			out[0], out[a.w-1] = mid[0], mid[a.w-1]
			for j := 1; j < a.w-1; j++ {
				v := 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
				if i == 0 || i == a.h-1 {
					v = mid[j]
				}
				out[j] = v
			}
			c.WriteRange(dst+gosvm.Addr(i*a.w), out)
			c.Compute(gosvm.Time(a.w) * 200) // ~200ns per point
		}
		c.Barrier(it)
		src, dst = dst, src
	}
	c.Barrier(a.iters)
}

func (a *stencil) Gather(c *gosvm.Ctx) []float64 {
	src := a.grid
	if a.iters%2 == 1 {
		src = a.next
	}
	out := make([]float64, a.h*a.w)
	c.ReadRange(src, out)
	return out
}

func main() {
	const procs = 16
	for _, proto := range []gosvm.Protocol{gosvm.LRC, gosvm.HLRC} {
		app := &stencil{h: 256, w: 256, iters: 20}
		res, err := gosvm.Run(gosvm.Options{
			Protocol:  proto,
			Machine:   gosvm.NewMachine(procs),
			PageBytes: 4096,
		}, app)
		if err != nil {
			log.Fatal(err)
		}
		center := res.Data[(app.h/2)*app.w+app.w/2]
		fmt.Printf("%-5s: %7.1f ms simulated on %d nodes, %5d messages, %6.2f MB update traffic (center=%.4f)\n",
			proto, res.Stats.Elapsed.Micros()/1e3, procs,
			res.Stats.TotalMsgs(),
			float64(res.Stats.TotalBytes(gosvm.ClassData))/(1<<20),
			center)
	}
	fmt.Println("\nHLRC wins by avoiding multi-hop diff collection: boundary pages")
	fmt.Println("are fetched from their home in a single round trip.")
}
