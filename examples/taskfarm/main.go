// Taskfarm: a work-stealing task farm over shared virtual memory — the
// irregular, lock-heavy usage pattern of the paper's Raytrace. Tasks
// (here: Mandelbrot tiles) live in per-processor queues in shared memory;
// idle processors steal through the queues' locks, and results land in a
// shared output plane with page-level false sharing.
//
// The example compares all four protocols of the paper on the same
// workload. Run it with:
//
//	go run ./examples/taskfarm
package main

import (
	"fmt"
	"log"

	"gosvm"
)

const (
	side  = 128 // output plane is side x side
	tile  = 8
	depth = 64 // iteration cap
)

type taskfarm struct {
	p      int
	ntiles int
	plane  gosvm.Addr
	queues gosvm.Addr // per proc: head, tail, items...
	qcap   int
}

func (a *taskfarm) Name() string { return "taskfarm" }

func (a *taskfarm) qBase(q int) gosvm.Addr {
	return a.queues + gosvm.Addr(q*(a.qcap+2))
}

func (a *taskfarm) Setup(s *gosvm.Setup) {
	a.p = s.P
	a.ntiles = (side / tile) * (side / tile)
	a.qcap = a.ntiles
	a.plane = s.Alloc(side * side)
	a.queues = s.Alloc(s.P * (a.qcap + 2))
}

func (a *taskfarm) Init(w *gosvm.Init) {
	counts := make([]int, a.p)
	for t := 0; t < a.ntiles; t++ {
		q := a.p * t / a.ntiles // contiguous bands: imbalanced by content
		w.StoreI(a.qBase(q)+gosvm.Addr(2+counts[q]), int64(t))
		counts[q]++
	}
	for q := 0; q < a.p; q++ {
		w.StoreI(a.qBase(q), 0)
		w.StoreI(a.qBase(q)+1, int64(counts[q]))
	}
}

func (a *taskfarm) pop(c *gosvm.Ctx, q int) int {
	c.Lock(q)
	defer c.Unlock(q)
	head := c.LoadI(a.qBase(q))
	tail := c.LoadI(a.qBase(q) + 1)
	if head >= tail {
		return -1
	}
	c.StoreI(a.qBase(q), head+1)
	return int(c.LoadI(a.qBase(q) + gosvm.Addr(2+head)))
}

func (a *taskfarm) Worker(c *gosvm.Ctx, id int) {
	tilesX := side / tile
	row := make([]float64, tile)
	for probe := 0; probe < c.NumProcs(); {
		t := a.pop(c, (id+probe)%c.NumProcs())
		if t < 0 {
			probe++
			continue
		}
		probe = 0
		tx, ty := (t%tilesX)*tile, (t/tilesX)*tile
		work := 0
		for y := ty; y < ty+tile; y++ {
			for x := tx; x < tx+tile; x++ {
				cr := 2.5*float64(x)/side - 2.0
				ci := 2.0*float64(y)/side - 1.0
				zr, zi := 0.0, 0.0
				n := 0
				for ; n < depth && zr*zr+zi*zi < 4; n++ {
					zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
				}
				work += n
				row[x-tx] = float64(n)
			}
			c.WriteRange(a.plane+gosvm.Addr(y*side+tx), row)
		}
		c.Compute(gosvm.Time(work) * 500) // ~500ns per inner iteration
	}
	c.Barrier(0)
}

func (a *taskfarm) Gather(c *gosvm.Ctx) []float64 {
	out := make([]float64, side*side)
	c.ReadRange(a.plane, out)
	return out
}

func main() {
	const procs = 16
	fmt.Printf("Mandelbrot task farm, %d nodes, %d tiles, work stealing:\n\n", procs, (side/tile)*(side/tile))
	var base float64
	for _, proto := range gosvm.Protocols {
		res, err := gosvm.Run(gosvm.Options{
			Protocol:  proto,
			Machine:   gosvm.NewMachine(procs),
			PageBytes: 4096,
		}, &taskfarm{})
		if err != nil {
			log.Fatal(err)
		}
		ms := res.Stats.Elapsed.Micros() / 1e3
		if proto == gosvm.LRC {
			base = ms
		}
		fmt.Printf("  %-5s: %8.1f ms  (%.2fx vs LRC)  locks/node: %d\n",
			proto, ms, base/ms, res.Stats.AvgNode().Counts.LockAcquires)
	}
}
