// Quickstart: a complete gosvm program.
//
// Eight simulated processors cooperatively estimate pi by numeric
// integration over shared memory: each worker integrates a slice of
// [0,1), publishes its partial sum into a shared array, and processor 0
// combines them after a barrier. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gosvm"
)

// piApp implements gosvm.App.
type piApp struct {
	steps    int
	partials gosvm.Addr // one shared word per processor
	result   gosvm.Addr
}

func (a *piApp) Name() string { return "pi" }

// Setup allocates shared memory (no data writes allowed here).
func (a *piApp) Setup(s *gosvm.Setup) {
	a.partials = s.Alloc(s.P)
	a.result = s.Alloc(1)
}

// Init runs on processor 0 before the timed parallel phase.
func (a *piApp) Init(w *gosvm.Init) {
	w.Store(a.result, 0)
}

// Worker is the parallel body, executed by every processor.
func (a *piApp) Worker(c *gosvm.Ctx, id int) {
	p := c.NumProcs()
	h := 1.0 / float64(a.steps)
	sum := 0.0
	for i := id; i < a.steps; i += p {
		x := h * (float64(i) + 0.5)
		sum += 4.0 / (1.0 + x*x)
	}
	// Charge the simulated cost of the loop (~40ns per step on the
	// modeled CPU), then publish the partial result.
	c.Compute(gosvm.Time(a.steps/p) * 40)
	c.Store(a.partials+gosvm.Addr(id), sum*h)
	c.Barrier(0)

	if id == 0 {
		total := 0.0
		for i := 0; i < p; i++ {
			total += c.Load(a.partials + gosvm.Addr(i))
		}
		c.Store(a.result, total)
	}
	c.Barrier(1)
}

// Gather collects the result for the caller.
func (a *piApp) Gather(c *gosvm.Ctx) []float64 {
	return []float64{c.Load(a.result)}
}

func main() {
	// Functional options over the HLRC protocol (the paper's home-based
	// protocol); gosvm.Options{...} literal construction works too. The
	// machine shape (size, topology, costs, barrier) travels as one
	// gosvm.Machine value — see NewMachine's MachineOptions for the knobs.
	opts := gosvm.NewOptions(gosvm.HLRC,
		gosvm.WithMachine(gosvm.NewMachine(8)),
		gosvm.WithPageBytes(4096),
	)
	res, err := gosvm.Run(opts, &piApp{steps: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ≈ %.10f\n", res.Data[0])
	fmt.Printf("simulated parallel time: %.2f ms on %d nodes under %s\n",
		res.Stats.Elapsed.Micros()/1e3, opts.Machine.Nodes, opts.Protocol)
	avg := res.Stats.AvgNode()
	fmt.Printf("avg per-node: compute %.2f ms, barrier %.2f ms, data %.2f ms\n",
		avg.Time[gosvm.CatCompute].Micros()/1e3,
		avg.Time[gosvm.CatBarrier].Micros()/1e3,
		avg.Time[gosvm.CatData].Micros()/1e3)
}
