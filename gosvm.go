// Package gosvm is a shared virtual memory (SVM) system implementing the
// four lazy release consistency protocols of Zhou, Iftode & Li,
// "Performance Evaluation of Two Home-Based Lazy Release Consistency
// Protocols for Shared Virtual Memory Systems" (OSDI 1996): standard
// homeless LRC, Home-based LRC (HLRC), and their overlapped variants OLRC
// and OHLRC that offload protocol work onto a per-node communication
// co-processor.
//
// The protocols run on a deterministic discrete-event model of the
// paper's hardware (a 64-node Intel Paragon): page faults, twins, diffs,
// vector timestamps, lock and barrier management, message latency and
// bandwidth, and the dominant receive-interrupt cost are all simulated
// with the paper's measured constants, while shared data is real — every
// program computes its actual result through the coherence protocol, so
// runs are verifiable against sequential execution.
//
// # Programming model
//
// Applications implement the App interface (the Splash-2 model: one
// process initializes, all processes compute) and access shared memory
// through a Ctx: Load/Store/ReadRange/WriteRange for data,
// Lock/Unlock/Barrier for synchronization, Compute to charge modeled
// computation time. See examples/quickstart for a complete program.
package gosvm

import (
	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/trace"
)

// Protocol identifies one of the simulated coherence protocols.
// Use ParseProtocol to validate external input (flags, config).
type Protocol = core.Protocol

// Protocol names.
const (
	// Seq runs the application sequentially with no coherence protocol:
	// the baseline for speedups.
	Seq = core.ProtoSeq
	// LRC is the standard homeless lazy release consistency protocol
	// (TreadMarks-style).
	LRC = core.ProtoLRC
	// OLRC is LRC with diff creation and remote request service
	// overlapped on the communication co-processor.
	OLRC = core.ProtoOLRC
	// HLRC is the paper's home-based LRC: updates flow as diffs to a
	// per-page home and whole pages are fetched from it.
	HLRC = core.ProtoHLRC
	// OHLRC is HLRC with diff creation, application, and page service
	// overlapped on the communication co-processors.
	OHLRC = core.ProtoOHLRC
	// AURC emulates the hardware-assisted Automatic Update Release
	// Consistency protocol HLRC was derived from: free update
	// propagation, write-through traffic proportional to store count.
	AURC = core.ProtoAURC
)

// Protocols lists the four SVM protocols in the paper's order.
var Protocols = core.Protocols

// ParseProtocol validates a protocol name, accepting exactly the names
// of the exported Protocol constants.
func ParseProtocol(s string) (Protocol, error) { return core.ParseProtocol(s) }

// Re-exported building blocks. The aliases make the internal packages'
// types part of the public API without duplicating them.
type (
	// Options configures a run: protocol, machine size, page size, cost
	// model, and protocol tuning knobs.
	Options = core.Options
	// App is a Splash-2-style application.
	App = core.App
	// Ctx is the per-processor shared-memory programming interface.
	Ctx = core.Ctx
	// Setup is the allocation phase passed to App.Setup.
	Setup = core.Setup
	// Init is the initialization phase passed to App.Init.
	Init = core.Init
	// Result carries the gathered output data and run statistics.
	Result = core.Result
	// Addr is a word address in the shared address space.
	Addr = mem.Addr
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Costs is the machine cost model (the paper's Table 3).
	Costs = paragon.Costs
	// Machine describes the simulated multicomputer independently of the
	// protocol: size, topology, cost profile, and barrier algorithm.
	// Build one with NewMachine and install it with WithMachine (or set
	// Options.Machine directly).
	Machine = core.Machine
	// Topology selects the network model (TopoCrossbar or TopoMesh).
	Topology = core.Topology
	// BarrierMode selects the barrier algorithm (BarrierAuto,
	// BarrierCentral, or BarrierTree).
	BarrierMode = core.BarrierMode
	// RunStats aggregates per-node statistics for a run.
	RunStats = stats.Run
	// NodeStats holds one node's time breakdown, counters, traffic, and
	// memory accounting.
	NodeStats = stats.Node
	// TraceLog is the protocol event log captured when
	// Options.TraceLimit is set (see Result.Trace).
	TraceLog = trace.Log
	// TraceEvent is one protocol event in a TraceLog.
	TraceEvent = trace.Event
	// FaultPlan is a deterministic per-run fault schedule plus
	// reliability-layer tuning (see Options.Fault).
	FaultPlan = fault.Plan
	// FaultTarget is a targeted fault: drop transmissions of one message
	// kind on one edge (FaultPlan.Targets).
	FaultTarget = fault.Target
	// FaultSlowdown is a per-node compute slowdown window
	// (FaultPlan.Slowdowns).
	FaultSlowdown = fault.Slowdown
	// LinkFail is a scheduled transient outage of one directional mesh
	// link (FaultPlan.LinkFails); it implies the mesh network model.
	LinkFail = fault.LinkFail
	// Crash schedules one node outage: the node stops servicing messages
	// and freezes computation at At, restarting at RestartAt (zero =
	// never). See FaultPlan.Crashes and Options.Recovery.
	Crash = fault.Crash
	// Recovery configures home-state replication and re-homing for the
	// home-based protocols (see Options.Recovery, WithReplication). The
	// same backups also shadow each node's synchronization-manager state
	// (lock-owner tables, barrier arrivals), so manager roles fail over
	// with the pages.
	Recovery = core.Recovery
	// ServeConfig parameterizes the open-loop request-serving workload:
	// key-value store shape (keys, shards, op mix, Zipf skew), arrival
	// process (Poisson or bursty MMPP), offered load, and window. See
	// Serve and NewServeApp.
	ServeConfig = serve.Config
	// ServeApp is the serving workload as an App, with access to its
	// request traces, trace-derived expected store contents, and the
	// post-run serve statistics. Build one with NewServeApp.
	ServeApp = serve.KV
	// ServeStats is the serving workload's result block: offered vs.
	// achieved throughput, tail-latency histogram, and saturation
	// detection (RunStats.Serve).
	ServeStats = stats.ServeStats
	// LatencyHist is the HDR-style log-bucketed latency histogram behind
	// ServeStats.Latency.
	LatencyHist = stats.Hist
)

// Arrival process names accepted by ServeConfig.Arrival.
const (
	ArrivalPoisson = serve.ArrivalPoisson
	ArrivalBursty  = serve.ArrivalBursty
)

// Structured errors. Use errors.As to detect them under the wrapping
// applied by Run.
type (
	// DeadlockError reports a simulation deadlock: every non-daemon
	// process is blocked. Its Blocked field lists who waits on what.
	DeadlockError = sim.DeadlockError
	// HangError wraps a DeadlockError when fault injection permanently
	// lost messages, listing the lost messages that explain the hang.
	HangError = fault.HangError
	// NodeDeadError reports an unrecoverable node crash: the node held a
	// role — page home, lock manager, barrier manager, lock owner — that
	// no replica could take over (Recovery.Replicas too small), or the
	// node never restarts and its computation is lost. The Role field
	// names the lost role.
	NodeDeadError = fault.NodeDeadError
)

// Fault profile names accepted by FaultProfile.
const (
	FaultNone    = fault.ProfileNone
	FaultLossy   = fault.ProfileLossy
	FaultHostile = fault.ProfileHostile
	FaultCrash   = fault.ProfileCrash
)

// FaultProfiles lists the built-in fault profiles.
var FaultProfiles = fault.Profiles

// FaultProfile returns a named preset fault plan ("none", "lossy",
// "hostile", "crash") seeded with seed.
func FaultProfile(name string, seed int64) (FaultPlan, error) {
	return fault.Profile(name, seed)
}

// Topology names.
const (
	// TopoCrossbar is the default network model: every node pair has an
	// independent latency/bandwidth wire.
	TopoCrossbar = core.TopoCrossbar
	// TopoMesh models the Paragon's 2-D wormhole mesh at link
	// granularity (XY routing, per-hop latency, per-link occupancy).
	TopoMesh = core.TopoMesh
)

// Barrier modes.
const (
	// BarrierAuto selects the centralized barrier up to BarrierCrossover
	// nodes and the k-ary combining tree above it.
	BarrierAuto = core.BarrierAuto
	// BarrierCentral always uses the paper's single-manager barrier.
	BarrierCentral = core.BarrierCentral
	// BarrierTree always uses the hierarchical k-ary tree barrier.
	BarrierTree = core.BarrierTree
)

// BarrierCrossover is the machine size above which BarrierAuto switches
// from the centralized barrier to the tree.
const BarrierCrossover = core.BarrierCrossover

// ParseTopology validates a topology name.
func ParseTopology(s string) (Topology, error) { return core.ParseTopology(s) }

// ParseBarrierMode validates a barrier mode name.
func ParseBarrierMode(s string) (BarrierMode, error) { return core.ParseBarrierMode(s) }

// MachineOption is a functional setting for NewMachine.
type MachineOption func(*Machine)

// NewMachine builds a Machine of the given size, applying opts. Unset
// fields keep their zero values and are defaulted at run time (crossbar
// topology, Paragon costs, auto barrier selection), so a NewMachine
// result composes cleanly with the Options-level WithCosts.
func NewMachine(nodes int, opts ...MachineOption) Machine {
	m := Machine{Nodes: nodes}
	for _, fn := range opts {
		fn(&m)
	}
	return m
}

// WithTopology selects the network model.
func WithTopology(t Topology) MachineOption {
	return func(m *Machine) { m.Topology = t }
}

// WithMeshDims selects the mesh topology with an explicit rows x cols
// grid shape (rows*cols must equal the machine size). WithTopology(
// TopoMesh) alone uses the most-square factorization.
func WithMeshDims(rows, cols int) MachineOption {
	return func(m *Machine) {
		m.Topology = TopoMesh
		m.MeshRows, m.MeshCols = rows, cols
	}
}

// WithCostProfile sets the machine's basic-operation cost model (see
// DefaultCosts, ModernCosts).
func WithCostProfile(c Costs) MachineOption {
	return func(m *Machine) { m.Costs = c }
}

// WithBarrier selects the barrier algorithm.
func WithBarrier(mode BarrierMode) MachineOption {
	return func(m *Machine) { m.Barrier = mode }
}

// WithBarrierRadix sets the tree barrier fan-in (default 8).
func WithBarrierRadix(k int) MachineOption {
	return func(m *Machine) { m.BarrierRadix = k }
}

// Option is a functional setting for NewOptions. Options remains a
// plain struct — the two construction styles are interchangeable.
type Option func(*Options)

// NewOptions builds an Options for the given protocol, applying opts
// over the defaults.
func NewOptions(p Protocol, opts ...Option) Options {
	o := Options{Protocol: p}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithMachine installs a Machine configuration (see NewMachine). It is
// the preferred way to size and shape the simulated machine; explicitly
// set Machine fields override the legacy WithProcs/WithMesh/WithCosts
// settings.
func WithMachine(m Machine) Option { return func(o *Options) { o.Machine = m } }

// WithProcs sets the machine size (number of nodes).
//
// Deprecated: use WithMachine(NewMachine(n)). Kept as a thin wrapper
// over the legacy Options.NumProcs field, which Options.Defaults
// reconciles into Options.Machine.
func WithProcs(n int) Option { return func(o *Options) { o.NumProcs = n } }

// WithPageBytes sets the SVM page size in bytes.
func WithPageBytes(n int) Option { return func(o *Options) { o.PageBytes = n } }

// WithCosts replaces the machine cost model.
func WithCosts(c Costs) Option { return func(o *Options) { o.Costs = c } }

// WithGCThreshold sets the homeless protocols' garbage-collection
// trigger (bytes of protocol memory per node).
func WithGCThreshold(bytes int64) Option {
	return func(o *Options) { o.GCThreshold = bytes }
}

// WithFaults installs a deterministic fault plan (message loss,
// duplication, delay, node slowdowns, crashes).
func WithFaults(p FaultPlan) Option { return func(o *Options) { o.Fault = p } }

// WithMesh models the Paragon's 2-D wormhole mesh at link granularity
// (XY routing, per-hop latency, per-link occupancy) instead of the
// default crossbar. Plans with link-level faults (FaultPlan.LinkDrop,
// LinkJitter, LinkFails) enable the mesh automatically.
//
// Deprecated: use WithMachine(NewMachine(n, WithTopology(TopoMesh))).
// Kept as a thin wrapper over the legacy Options.Mesh field.
func WithMesh() Option { return func(o *Options) { o.Mesh = true } }

// WithReplication mirrors each home's page state onto its k successor
// nodes so a crashed home's pages can be re-homed (home-based protocols
// only). The same backups shadow the node's synchronization-manager
// state, so its lock-manager and barrier-manager roles fail over too:
// the lowest-id live backup is promoted, stranded free lock tokens are
// reclaimed, and in-flight synchronization traffic is redirected.
// Without replication, a permanent crash of a node whose pages or
// manager roles are in use is fatal.
func WithReplication(k int) Option {
	return func(o *Options) { o.Recovery.Replicas = k }
}

// WithCheckpointEvery switches replication from eager diff mirroring to
// periodic checkpointing every d of simulated time (requires
// WithReplication).
func WithCheckpointEvery(d Time) Option {
	return func(o *Options) { o.Recovery.CheckpointEvery = d }
}

// WithRunWorkers sets the number of host threads driving one simulation
// run. At n >= 2 the kernel is partitioned into per-node logical
// processes advanced in parallel under a conservative lookahead window
// (the minimum cross-node message latency of the cost model); results
// are byte-identical at any value. Configurations with globally ordered
// machinery — mesh link contention, fault injection, crash recovery,
// tracing — fall back to the classic sequential event loop. 0 or 1
// selects the sequential loop directly.
func WithRunWorkers(n int) Option {
	return func(o *Options) { o.RunWorkers = n }
}

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Time breakdown categories (indexes into NodeStats.Time), matching the
// stacked bars of the paper's Figure 3.
const (
	CatCompute  = stats.CatCompute
	CatData     = stats.CatData
	CatGC       = stats.CatGC
	CatLock     = stats.CatLock
	CatBarrier  = stats.CatBarrier
	CatProtocol = stats.CatProtocol
)

// Traffic classes (indexes into NodeStats.Bytes and MsgsOut).
const (
	ClassData     = stats.ClassData
	ClassProtocol = stats.ClassProtocol
)

// DefaultCosts returns the reconstructed Paragon cost model.
func DefaultCosts() Costs { return paragon.DefaultCosts() }

// ModernCosts returns a cost profile resembling a contemporary cluster
// (microsecond messaging, ~10us handler costs); see paragon.ModernCosts.
func ModernCosts() Costs { return paragon.ModernCosts() }

// CostProfiles lists the built-in cost profile names for CostProfile.
var CostProfiles = paragon.CostProfiles

// CostProfile returns a named built-in cost model: "paragon" (default)
// or "modern".
func CostProfile(name string) (Costs, error) { return paragon.CostProfile(name) }

// Run executes app under opts and returns its results and statistics.
func Run(opts Options, app App) (*Result, error) {
	return core.Run(opts, app, false)
}

// RunWithPhases is Run with per-barrier-episode statistics capture
// (the instrumentation behind the paper's Figure 4).
func RunWithPhases(opts Options, app App) (*Result, error) {
	return core.Run(opts, app, true)
}

// NewServeApp builds the open-loop serving workload for a machine of
// the given size: a key-value store sharded over SVM pages plus the
// per-node seeded client traces that drive it. The traces depend only
// on (cfg, procs) — never the protocol, fault plan, or host — so every
// protocol serves the identical request stream. Instances are
// single-run; call ServeApp.Stats after the run for the latency block,
// or use Serve, which wires everything together.
func NewServeApp(cfg ServeConfig, procs int) (*ServeApp, error) {
	return serve.New(cfg, procs)
}

// Serve runs the open-loop serving workload under opts: it builds the
// workload for opts' machine size, serves the trace through the
// configured protocol, validates the final store contents against the
// trace-derived expectation, and attaches the tail-latency /
// throughput / saturation block to Result.Stats.Serve (also emitted by
// RunStats.WriteJSON as the "serve" object).
func Serve(opts Options, cfg ServeConfig) (*Result, error) {
	opts.Defaults()
	kv, err := serve.New(cfg, opts.NumProcs)
	if err != nil {
		return nil, err
	}
	return serve.Run(opts, kv)
}

// Sequential measures the sequential execution of app: the speedup
// baseline. The page size only affects layout, not timing.
func Sequential(app App, pageBytes int) (*Result, error) {
	return core.Run(Options{Protocol: Seq, NumProcs: 1, PageBytes: pageBytes}, app, false)
}

// Speedup runs app sequentially and in parallel and returns the ratio of
// simulated execution times, along with both results. The sequential
// baseline uses the same cost model as the parallel run — comparing
// runs under different Costs would make the ratio meaningless.
func Speedup(opts Options, mk func() App) (float64, *Result, *Result, error) {
	seq, err := core.Run(Options{
		Protocol:  Seq,
		NumProcs:  1,
		PageBytes: opts.PageBytes,
		Costs:     opts.Costs,
	}, mk(), false)
	if err != nil {
		return 0, nil, nil, err
	}
	par, err := Run(opts, mk())
	if err != nil {
		return 0, seq, nil, err
	}
	return float64(seq.Stats.Elapsed) / float64(par.Stats.Elapsed), seq, par, nil
}
