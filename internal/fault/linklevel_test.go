package fault

import (
	"math"
	"testing"

	"gosvm/internal/sim"
)

func TestMeanHops(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, 1},        // degenerate: transform is the identity
		{2, 0.5},      // 1x2
		{4, 1.0},      // 2x2: 0.5 per dimension
		{16, 2.5},     // 4x4: (16-1)/12 = 1.25 per dimension
		{7, 16.0 / 7}, // prime: 1x7, (49-1)/21
	}
	for _, c := range cases {
		if got := meanHops(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("meanHops(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

// AtLinkLevel must preserve the fault intensity an average-length route
// experiences: composing the per-crossing probability back over the mean
// hop count recovers the original per-message probability.
func TestAtLinkLevelPreservesIntensity(t *testing.T) {
	base := Plan{
		Seed:      9,
		Drop:      0.10,
		Duplicate: 0.08,
		Delay:     0.15,
		MaxDelay:  2 * sim.Millisecond,
		Reorder:   0.20,
	}
	for _, nodes := range []int{4, 16, 64} {
		p := base.AtLinkLevel(nodes)
		if p.Drop != 0 || p.Delay != 0 {
			t.Fatalf("n=%d: message-level drop/delay not cleared: %+v", nodes, p)
		}
		if !p.LinkLevel() {
			t.Fatalf("n=%d: transformed plan is not link-level", nodes)
		}
		if p.Duplicate != base.Duplicate || p.Reorder != base.Reorder {
			t.Fatalf("n=%d: duplicate/reorder must stay message-level", nodes)
		}
		if p.LinkJitterMax != base.MaxDelay {
			t.Fatalf("n=%d: jitter magnitude %v, want MaxDelay %v", nodes, p.LinkJitterMax, base.MaxDelay)
		}
		h := meanHops(nodes)
		if got := 1 - math.Pow(1-p.LinkDrop, h); math.Abs(got-base.Drop) > 1e-12 {
			t.Errorf("n=%d: composed drop over mean route = %v, want %v", nodes, got, base.Drop)
		}
		if got := 1 - math.Pow(1-p.LinkJitter, h); math.Abs(got-base.Delay) > 1e-12 {
			t.Errorf("n=%d: composed jitter over mean route = %v, want %v", nodes, got, base.Delay)
		}
	}
	// Longer mean routes need a smaller per-crossing probability.
	if p16, p64 := base.AtLinkLevel(16), base.AtLinkLevel(64); p64.LinkDrop >= p16.LinkDrop {
		t.Errorf("per-crossing drop should shrink with grid size: n16 %v, n64 %v", p16.LinkDrop, p64.LinkDrop)
	}
	// A zero plan stays zero.
	if p := (Plan{}).AtLinkLevel(16); p.LinkLevel() {
		t.Errorf("zero plan became link-level: %+v", p)
	}
}

func TestLinkFailCovers(t *testing.T) {
	lf := LinkFail{From: 1, To: 2, Start: 10, End: 20}
	for _, c := range []struct {
		t    sim.Time
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if lf.Covers(c.t) != c.want {
			t.Errorf("Covers(%d) = %v, want %v", c.t, !c.want, c.want)
		}
	}
}

func TestJudgeLinkFailureWindows(t *testing.T) {
	in := NewInjector(Plan{LinkFails: []LinkFail{
		{From: 1, To: 2, Start: 10, End: 20},
	}})
	cases := []struct {
		from, to int
		t        sim.Time
		drop     bool
	}{
		{1, 2, 9, false},  // before the window
		{1, 2, 10, true},  // window start is inclusive
		{1, 2, 19, true},  // inside
		{1, 2, 20, false}, // window end is exclusive
		{2, 1, 15, false}, // reverse direction fails independently
		{0, 1, 15, false}, // other links untouched
	}
	for i, c := range cases {
		drop, jitter := in.JudgeLink(c.from, c.to, c.t)
		if drop != c.drop {
			t.Errorf("case %d: drop = %v, want %v", i, drop, c.drop)
		}
		if jitter != 0 {
			t.Errorf("case %d: window-only plan produced jitter %v", i, jitter)
		}
	}
}

// Window-only link judging must consume no randomness: the message-level
// verdict stream is byte-identical whether or not JudgeLink ran, so
// adding a failure window to a plan cannot reshuffle its other faults.
func TestJudgeLinkWindowsConsumeNoRandomness(t *testing.T) {
	plan := Plan{
		Seed:      5,
		Drop:      0.5,
		LinkFails: []LinkFail{{From: 0, To: 1, Start: 0, End: 100}},
	}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 200; i++ {
		a.JudgeLink(0, 1, sim.Time(i))
	}
	for i := 0; i < 50; i++ {
		va, vb := a.Judge(0, 1, 3, false), b.Judge(0, 1, 3, false)
		if va != vb {
			t.Fatalf("verdict %d differs after window-only JudgeLink calls: %+v vs %+v", i, va, vb)
		}
	}
}

// Probabilistic link verdicts are deterministic per (plan, seed) and
// actually fire at the configured rates.
func TestJudgeLinkProbabilisticDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, LinkDrop: 0.3, LinkJitter: 0.4, LinkJitterMax: 100 * sim.Microsecond}
	a, b := NewInjector(plan), NewInjector(plan)
	var drops, jitters int
	for i := 0; i < 2000; i++ {
		da, ja := a.JudgeLink(0, 1, sim.Time(i))
		db, jb := b.JudgeLink(0, 1, sim.Time(i))
		if da != db || ja != jb {
			t.Fatalf("crossing %d: verdicts diverged", i)
		}
		if da {
			drops++
		}
		if ja > 0 {
			jitters++
			if ja >= plan.LinkJitterMax {
				t.Fatalf("jitter %v outside U(0, %v)", ja, plan.LinkJitterMax)
			}
		}
	}
	if drops < 400 || drops > 800 {
		t.Errorf("drop rate %d/2000, want around 600", drops)
	}
	if jitters < 500 || jitters > 1100 {
		t.Errorf("jitter rate %d/2000, want around 800", jitters)
	}
}
