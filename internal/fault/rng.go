package fault

import "gosvm/internal/sim"

// rng is a self-contained splitmix64 generator. The injector must not
// depend on math/rand: its stream has to be stable across Go releases so
// a (plan, seed) pair replays the same fault schedule forever.
type rng struct {
	state uint64
}

func newRNG(seed int64) rng {
	// Avoid the all-zero state and decorrelate small seeds.
	return rng{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// timeIn returns a uniform duration in [0, max).
func (r *rng) timeIn(max sim.Time) sim.Time {
	if max <= 0 {
		return 0
	}
	return sim.Time(r.next() % uint64(max))
}
