package fault

import (
	"errors"
	"strings"
	"testing"

	"gosvm/internal/sim"
)

func TestCrashDownWindows(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{
		{Node: 1, At: 100, RestartAt: 200},
		{Node: 1, At: 400, RestartAt: 500},
		{Node: 2, At: 300}, // permanent
	}})
	cases := []struct {
		node int
		t    sim.Time
		down bool
	}{
		{0, 150, false}, // uncrashed node
		{1, 99, false},  // before the outage
		{1, 100, true},  // crash instant
		{1, 199, true},  // inside
		{1, 200, false}, // restart instant is up again
		{1, 450, true},  // second outage
		{1, 600, false}, // after both
		{2, 299, false},
		{2, 1 << 40, true}, // permanent: down forever
	}
	for _, c := range cases {
		if got := in.Down(c.node, c.t); got != c.down {
			t.Fatalf("Down(%d, %v) = %v, want %v", c.node, c.t, got, c.down)
		}
	}
}

func TestCrashStallStretchesCompute(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{
		{Node: 1, At: 100, RestartAt: 200},
		{Node: 2, At: 100}, // permanent
	}})
	if d, dead := in.Stall(0, 50, 100); d != 100 || dead {
		t.Fatalf("uncrashed node stalled: (%v, %v)", d, dead)
	}
	if d, dead := in.Stall(1, 250, 100); d != 100 || dead {
		t.Fatalf("compute after restart stalled: (%v, %v)", d, dead)
	}
	// Work starts at 50, the outage [100, 200) freezes it, the last 50
	// units finish at 250: total duration 200.
	if d, dead := in.Stall(1, 50, 100); d != 200 || dead {
		t.Fatalf("overlapping compute: (%v, %v), want (200, false)", d, dead)
	}
	// Compute running into a permanent crash never finishes.
	if _, dead := in.Stall(2, 50, 100); !dead {
		t.Fatal("compute into a permanent crash finished")
	}
	if d, dead := in.Stall(2, 0, 50); d != 50 || dead {
		t.Fatalf("compute ending before the crash stalled: (%v, %v)", d, dead)
	}
}

func TestCrashProfile(t *testing.T) {
	p, err := Profile(ProfileCrash, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Active() {
		t.Fatal("crash profile reported inert")
	}
	if len(p.Crashes) == 0 {
		t.Fatal("crash profile schedules no crash")
	}
	c := p.Crashes[0]
	if c.Permanent() {
		t.Fatal("the built-in crash profile must restart the node (a permanently dead worker can never finish its share)")
	}
	if c.RestartAt <= c.At {
		t.Fatalf("restart %v not after crash %v", c.RestartAt, c.At)
	}
}

func TestNodeDeadErrorReport(t *testing.T) {
	base := errors.New("deadlock: everyone waits")
	err := error(&NodeDeadError{
		Node:   3,
		At:     5 * sim.Millisecond,
		Reason: "no replica holds its home pages",
		Err:    base,
	})
	msg := err.Error()
	for _, want := range []string{"node 3", "unrecoverable", "no replica holds its home pages", "deadlock: everyone waits"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("report missing %q: %v", want, msg)
		}
	}
	if !errors.Is(err, base) {
		t.Fatal("NodeDeadError does not unwrap to the underlying error")
	}
}
