package fault

import (
	"errors"
	"strings"
	"testing"

	"gosvm/internal/sim"
)

func TestProfiles(t *testing.T) {
	for _, name := range Profiles {
		p, err := Profile(name, 42)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if name == ProfileNone && p.Active() {
			t.Fatal("none profile must be inert")
		}
		if name != ProfileNone {
			if !p.Messaging() || !p.Active() {
				t.Fatalf("profile %s should inject message faults", name)
			}
			if p.Seed != 42 {
				t.Fatalf("profile %s dropped the seed", name)
			}
		}
	}
	if _, err := Profile("nosuch", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestZeroPlanInert(t *testing.T) {
	var p Plan
	if p.Active() || p.Messaging() {
		t.Fatal("zero plan must be inert")
	}
}

// Same plan and seed: identical verdict stream. Different seed: the
// stream diverges.
func TestJudgeDeterministic(t *testing.T) {
	plan, _ := Profile(ProfileHostile, 9)
	a, b := NewInjector(plan), NewInjector(plan)
	diverged := false
	plan.Seed = 10
	c := NewInjector(plan)
	for i := 0; i < 500; i++ {
		va := a.Judge(0, 1, 3, false)
		vb := b.Judge(0, 1, 3, false)
		if va != vb {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, va, vb)
		}
		if vc := c.Judge(0, 1, 3, false); vc != va {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical verdict streams")
	}
}

func TestTargetNthMatch(t *testing.T) {
	in := NewInjector(Plan{Targets: []Target{
		{Kind: 7, From: AnyNode, To: 2, Reply: true, Nth: 2},
	}})
	cases := []struct {
		from, to, kind int
		reply          bool
		drop           bool
	}{
		{0, 2, 7, false, false}, // request, not reply
		{0, 2, 6, true, false},  // wrong kind
		{0, 1, 7, true, false},  // wrong destination
		{0, 2, 7, true, false},  // first match: Nth=2 spares it
		{1, 2, 7, true, true},   // second match: dropped
		{0, 2, 7, true, false},  // third match: spared again
	}
	for i, c := range cases {
		v := in.Judge(c.from, c.to, c.kind, c.reply)
		if v.Drop != c.drop {
			t.Fatalf("case %d: drop = %v, want %v", i, v.Drop, c.drop)
		}
	}
}

func TestTargetEverySeversEdge(t *testing.T) {
	in := NewInjector(Plan{Targets: []Target{{From: 1, To: 0}}})
	for i := 0; i < 5; i++ {
		if !in.Judge(1, 0, i+1, false).Drop {
			t.Fatalf("transmission %d on severed edge survived", i)
		}
	}
	if in.Judge(0, 1, 3, false).Drop {
		t.Fatal("reverse direction was dropped")
	}
}

func TestSlowdownWindows(t *testing.T) {
	in := NewInjector(Plan{Slowdowns: []Slowdown{
		{Node: 1, From: 100, To: 200, Factor: 2},
		{Node: 1, From: 150, To: 300, Factor: 3},
	}})
	if got := in.Slow(0, 150, 10); got != 10 {
		t.Fatalf("untargeted node scaled: %v", got)
	}
	if got := in.Slow(1, 50, 10); got != 10 {
		t.Fatalf("outside window scaled: %v", got)
	}
	if got := in.Slow(1, 120, 10); got != 20 {
		t.Fatalf("single window: %v, want 20", got)
	}
	if got := in.Slow(1, 180, 10); got != 60 {
		t.Fatalf("overlapping windows should compound: %v, want 60", got)
	}
	if got := in.Slow(1, 200, 10); got != 30 {
		t.Fatalf("window end is exclusive: %v, want 30", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	in := NewInjector(Plan{Drop: 0.5})
	p := in.Plan()
	if p.RTO == 0 || p.Backoff == 0 || p.MaxAttempts == 0 || p.MaxDelay == 0 || p.ReorderWindow == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if !in.Reliable() {
		t.Fatal("dropping plan without NoRetry should be reliable")
	}
	in = NewInjector(Plan{Drop: 0.5, NoRetry: true})
	if in.Reliable() {
		t.Fatal("NoRetry plan reported reliable")
	}
}

func TestDiagnose(t *testing.T) {
	in := NewInjector(Plan{Drop: 1, NoRetry: true})
	base := errors.New("deadlock at 5ms")
	if got := in.Diagnose(base); got != base {
		t.Fatalf("diagnosis with no losses rewrote the error: %v", got)
	}
	if got := in.Diagnose(nil); got != nil {
		t.Fatalf("diagnosis of nil error: %v", got)
	}
	in.KindName = func(kind int) string { return "diff-flush" }
	in.RecordLoss(Loss{At: 3 * sim.Millisecond, From: 2, To: 0, Kind: 7, Reply: true, Attempts: 4, GaveUp: true})
	err := in.Diagnose(base)
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("diagnosis is not a HangError: %v", err)
	}
	if !errors.Is(err, base) {
		t.Fatal("HangError does not unwrap to the original error")
	}
	msg := err.Error()
	for _, want := range []string{"deadlock at 5ms", "diff-flush reply", "n2->n0", "given up", "4 attempts"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("report missing %q: %v", want, msg)
		}
	}

	in2 := NewInjector(Plan{NoRetry: true})
	in2.RecordLoss(Loss{At: sim.Millisecond, From: 0, To: 1, Kind: 9, Attempts: 1})
	msg = in2.Diagnose(base).Error()
	if !strings.Contains(msg, "kind 9") || !strings.Contains(msg, "no retry layer") {
		t.Fatalf("unnamed-kind report wrong: %v", msg)
	}
}

func TestRNGStable(t *testing.T) {
	// The splitmix64 stream is part of the reproducibility contract:
	// pin the first outputs so an accidental algorithm change is caught.
	r := newRNG(1)
	got := []uint64{r.next(), r.next(), r.next()}
	r2 := newRNG(1)
	for i, w := range got {
		if g := r2.next(); g != w {
			t.Fatalf("stream not reproducible at %d: %d vs %d", i, g, w)
		}
	}
	if got[0] == got[1] || got[1] == got[2] {
		t.Fatalf("suspicious stream: %v", got)
	}
	r3 := newRNG(0)
	if r3.next() == 0 && r3.next() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}
