package fault

import "gosvm/internal/sim"

// Verdict is the injector's decision about one message transmission.
type Verdict struct {
	Drop      bool
	Duplicate bool     // deliver an extra, unordered copy
	Delay     sim.Time // extra latency applied to the primary copy
}

// Injector turns a Plan into a deterministic stream of per-transmission
// verdicts. The discrete-event kernel consults it from a single
// goroutine in a deterministic order, so the whole faulty execution
// replays exactly from (plan, seed).
type Injector struct {
	plan       Plan
	r          rng
	targetHits []int
	losses     []Loss

	// KindName, when set, renders protocol message kinds in watchdog
	// reports ("diff-flush" instead of "kind 7"). The protocol layer owns
	// the kind namespace, so it installs this.
	KindName func(kind int) string
}

// NewInjector builds an injector for plan, filling tuning defaults.
func NewInjector(plan Plan) *Injector {
	plan = plan.withDefaults()
	return &Injector{
		plan:       plan,
		r:          newRNG(plan.Seed),
		targetHits: make([]int, len(plan.Targets)),
	}
}

// Plan returns the plan with tuning defaults applied.
func (in *Injector) Plan() Plan { return in.plan }

// Reliable reports whether the reliability transport (acks, dedup,
// retransmission) should run on top of the faulty network.
func (in *Injector) Reliable() bool { return in.plan.Messaging() && !in.plan.NoRetry }

// Judge decides the fate of one transmission of a protocol message.
// Every transmission — including retransmissions — rolls independently.
func (in *Injector) Judge(from, to, kind int, reply bool) Verdict {
	var v Verdict
	for i := range in.plan.Targets {
		tg := &in.plan.Targets[i]
		if tg.Kind != 0 && tg.Kind != kind {
			continue
		}
		if tg.Reply != reply {
			continue
		}
		if tg.From != AnyNode && tg.From != from {
			continue
		}
		if tg.To != AnyNode && tg.To != to {
			continue
		}
		in.targetHits[i]++
		if tg.Nth == 0 || tg.Nth == in.targetHits[i] {
			v.Drop = true
		}
	}
	if in.r.float() < in.plan.Drop {
		v.Drop = true
	}
	if in.r.float() < in.plan.Duplicate {
		v.Duplicate = true
	}
	if in.r.float() < in.plan.Delay {
		v.Delay += in.r.timeIn(in.plan.MaxDelay)
	}
	if in.r.float() < in.plan.Reorder {
		v.Delay += in.r.timeIn(in.plan.ReorderWindow)
	}
	return v
}

// JudgeAck decides whether a transport-level acknowledgement is lost.
// Acks are tiny and carry no payload, so only the drop probability
// applies; a lost ack simply provokes a (suppressed) retransmission.
func (in *Injector) JudgeAck() bool {
	return in.r.float() < in.plan.Drop
}

// Slow scales compute work d on node at simulated time now according to
// the plan's slowdown windows. Overlapping windows compound.
func (in *Injector) Slow(node int, now, d sim.Time) sim.Time {
	for _, s := range in.plan.Slowdowns {
		if s.Node == node && now >= s.From && now < s.To && s.Factor > 1 {
			d = sim.Time(float64(d) * s.Factor)
		}
	}
	return d
}
