package fault

import (
	"sort"

	"gosvm/internal/sim"
)

// Verdict is the injector's decision about one message transmission.
type Verdict struct {
	Drop      bool
	Duplicate bool     // deliver an extra, unordered copy
	Delay     sim.Time // extra latency applied to the primary copy
}

// Injector turns a Plan into a deterministic stream of per-transmission
// verdicts. The discrete-event kernel consults it from a single
// goroutine in a deterministic order, so the whole faulty execution
// replays exactly from (plan, seed).
type Injector struct {
	plan       Plan
	r          rng
	targetHits []int
	losses     []Loss
	// crashes holds the plan's crash schedule grouped per node and
	// sorted by At, for outage-window queries.
	crashes map[int][]Crash

	// KindName, when set, renders protocol message kinds in watchdog
	// reports ("diff-flush" instead of "kind 7"). The protocol layer owns
	// the kind namespace, so it installs this.
	KindName func(kind int) string
}

// NewInjector builds an injector for plan, filling tuning defaults.
func NewInjector(plan Plan) *Injector {
	plan = plan.withDefaults()
	in := &Injector{
		plan:       plan,
		r:          newRNG(plan.Seed),
		targetHits: make([]int, len(plan.Targets)),
		crashes:    make(map[int][]Crash),
	}
	for _, c := range plan.Crashes {
		in.crashes[c.Node] = append(in.crashes[c.Node], c)
	}
	for n := range in.crashes {
		cs := in.crashes[n]
		sort.Slice(cs, func(i, j int) bool { return cs[i].At < cs[j].At })
	}
	return in
}

// Plan returns the plan with tuning defaults applied.
func (in *Injector) Plan() Plan { return in.plan }

// Reliable reports whether the reliability transport (acks, dedup,
// retransmission) should run on top of the faulty network.
func (in *Injector) Reliable() bool { return in.plan.Messaging() && !in.plan.NoRetry }

// Judge decides the fate of one transmission of a protocol message.
// Every transmission — including retransmissions — rolls independently.
func (in *Injector) Judge(from, to, kind int, reply bool) Verdict {
	var v Verdict
	for i := range in.plan.Targets {
		tg := &in.plan.Targets[i]
		if tg.Kind != 0 && tg.Kind != kind {
			continue
		}
		if tg.Reply != reply {
			continue
		}
		if tg.From != AnyNode && tg.From != from {
			continue
		}
		if tg.To != AnyNode && tg.To != to {
			continue
		}
		in.targetHits[i]++
		if tg.Nth == 0 || tg.Nth == in.targetHits[i] {
			v.Drop = true
		}
	}
	if in.r.float() < in.plan.Drop {
		v.Drop = true
	}
	if in.r.float() < in.plan.Duplicate {
		v.Duplicate = true
	}
	if in.r.float() < in.plan.Delay {
		v.Delay += in.r.timeIn(in.plan.MaxDelay)
	}
	if in.r.float() < in.plan.Reorder {
		v.Delay += in.r.timeIn(in.plan.ReorderWindow)
	}
	return v
}

// JudgeLink decides the fate of one message crossing the directional
// mesh link from->to at simulated time t: whether the link eats the
// message, and any extra per-link jitter. Scheduled LinkFail windows
// drop deterministically; the probabilistic rolls consume randomness
// only when the corresponding probability is nonzero, so a plan with
// only failure windows perturbs nothing else.
func (in *Injector) JudgeLink(from, to int, t sim.Time) (drop bool, jitter sim.Time) {
	for _, lf := range in.plan.LinkFails {
		if lf.From == from && lf.To == to && lf.Covers(t) {
			drop = true
		}
	}
	if in.plan.LinkDrop > 0 && in.r.float() < in.plan.LinkDrop {
		drop = true
	}
	if in.plan.LinkJitter > 0 && in.r.float() < in.plan.LinkJitter {
		jitter = in.r.timeIn(in.plan.LinkJitterMax)
	}
	return drop, jitter
}

// JudgeAck decides whether a transport-level acknowledgement is lost.
// Acks are tiny and carry no payload, so only the drop probability
// applies; a lost ack simply provokes a (suppressed) retransmission.
func (in *Injector) JudgeAck() bool {
	return in.r.float() < in.plan.Drop
}

// Slow scales compute work d on node at simulated time now according to
// the plan's slowdown windows. Overlapping windows compound.
func (in *Injector) Slow(node int, now, d sim.Time) sim.Time {
	for _, s := range in.plan.Slowdowns {
		if s.Node == node && now >= s.From && now < s.To && s.Factor > 1 {
			d = sim.Time(float64(d) * s.Factor)
		}
	}
	return d
}

// Down reports whether node is inside a crash outage window at time t:
// crashed at or before t and not yet restarted.
func (in *Injector) Down(node int, t sim.Time) bool {
	for _, c := range in.crashes[node] {
		if t < c.At {
			return false
		}
		if c.Permanent() || t < c.RestartAt {
			return true
		}
	}
	return false
}

// Stall stretches a compute duration d started at now on node across any
// crash outage it overlaps: the processor freezes for the outage and the
// remaining work completes after the restart. The second result is true
// when the node never comes back, in which case the caller should park
// its proc forever.
func (in *Injector) Stall(node int, now, d sim.Time) (sim.Time, bool) {
	end := now + d
	for _, c := range in.crashes[node] {
		if c.At >= end && c.At > now {
			break
		}
		if c.Permanent() {
			if c.At <= end {
				return d, true
			}
			continue
		}
		if c.RestartAt <= now {
			continue
		}
		// The outage [max(At, now), RestartAt) overlaps [now, end):
		// freeze for its remainder.
		start := c.At
		if start < now {
			start = now
		}
		if start <= end {
			d += c.RestartAt - start
			end = now + d
		}
	}
	return d, false
}

// Crashes returns the plan's crash schedule (possibly empty).
func (in *Injector) Crashes() []Crash { return in.plan.Crashes }
