package fault

import (
	"fmt"
	"strings"

	"gosvm/internal/sim"
)

// Loss records a message the network lost for good: either a drop with
// the reliability layer disabled, or a message the transport gave up on
// after exhausting its retransmission budget.
type Loss struct {
	At       sim.Time
	From, To int
	Kind     int
	Reply    bool
	Attempts int
	GaveUp   bool // reliability layer exhausted MaxAttempts
}

// RecordLoss notes a permanently lost message for later diagnosis.
func (in *Injector) RecordLoss(l Loss) { in.losses = append(in.losses, l) }

// Losses returns the permanently lost messages, in loss order.
func (in *Injector) Losses() []Loss { return in.losses }

// HangError wraps a run failure (typically a *sim.DeadlockError) with
// the watchdog's diagnosis: the messages whose loss explains the hang.
// Unwrap exposes the underlying error, so errors.As still finds the
// DeadlockError inside.
type HangError struct {
	Err  error
	Lost []Loss

	name func(kind int) string
}

// Diagnose annotates a run failure with any permanently lost messages.
// With no losses on record (or no error), err is returned unchanged.
func (in *Injector) Diagnose(err error) error {
	if err == nil || len(in.losses) == 0 {
		return err
	}
	return &HangError{Err: err, Lost: in.losses, name: in.KindName}
}

func (e *HangError) Unwrap() error { return e.Err }

func (e *HangError) Error() string {
	var b strings.Builder
	b.WriteString(e.Err.Error())
	fmt.Fprintf(&b, "; fault watchdog: %d message(s) lost for good:", len(e.Lost))
	for _, l := range e.Lost {
		b.WriteString("\n  " + e.describe(l))
	}
	return b.String()
}

func (e *HangError) describe(l Loss) string {
	kind := fmt.Sprintf("kind %d", l.Kind)
	if e.name != nil {
		kind = e.name(l.Kind)
	}
	if l.Reply {
		kind += " reply"
	}
	fate := fmt.Sprintf("dropped at %v with no retry layer", l.At)
	if l.GaveUp {
		fate = fmt.Sprintf("given up at %v after %d attempts", l.At, l.Attempts)
	}
	return fmt.Sprintf("%s n%d->n%d %s", kind, l.From, l.To, fate)
}
