package fault

import (
	"fmt"
	"strings"

	"gosvm/internal/sim"
)

// Loss records a message the network lost for good: either a drop with
// the reliability layer disabled, or a message the transport gave up on
// after exhausting its retransmission budget.
type Loss struct {
	At       sim.Time
	From, To int
	Kind     int
	Reply    bool
	Attempts int
	GaveUp   bool // reliability layer exhausted MaxAttempts
}

// RecordLoss notes a permanently lost message for later diagnosis.
func (in *Injector) RecordLoss(l Loss) { in.losses = append(in.losses, l) }

// Losses returns the permanently lost messages, in loss order.
func (in *Injector) Losses() []Loss { return in.losses }

// HangError wraps a run failure (typically a *sim.DeadlockError) with
// the watchdog's diagnosis: the messages whose loss explains the hang.
// Unwrap exposes the underlying error, so errors.As still finds the
// DeadlockError inside.
type HangError struct {
	Err  error
	Lost []Loss

	name func(kind int) string
}

// NodeDeadError reports a run that could not complete because a crashed
// node took needed state down with it: either no replica existed to
// re-home its pages, or the node held an unrecoverable role (lock or
// barrier management, or its own worker on a permanent crash). Unwrap
// exposes the underlying failure (typically a *sim.DeadlockError).
type NodeDeadError struct {
	Node     int
	At       sim.Time // when the node crashed
	Restarts bool     // whether the crash schedule ever revives it
	// Role names the unrecoverable role the node held, when known:
	// "home", "lock manager", "barrier manager", or "lock owner".
	Role   string
	Reason string
	Err    error
}

func (e *NodeDeadError) Unwrap() error { return e.Err }

func (e *NodeDeadError) Error() string {
	who := fmt.Sprintf("node %d", e.Node)
	if e.Role != "" {
		who += " (" + e.Role + ")"
	}
	s := fmt.Sprintf("%s crashed at %v and its state is unrecoverable", who, e.At)
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	if e.Err != nil {
		s += " (" + e.Err.Error() + ")"
	}
	return s
}

// Diagnose annotates a run failure with any permanently lost messages,
// and attributes failures of crash runs to the dead node: a plan with a
// permanent crash that ends in deadlock is reported as a NodeDeadError
// rather than a bare hang.
func (in *Injector) Diagnose(err error) error {
	if err == nil {
		return err
	}
	if len(in.losses) > 0 {
		err = &HangError{Err: err, Lost: in.losses, name: in.KindName}
	}
	for _, c := range in.plan.Crashes {
		if c.Permanent() {
			return &NodeDeadError{
				Node:   c.Node,
				At:     c.At,
				Reason: "node never restarts",
				Err:    err,
			}
		}
	}
	return err
}

func (e *HangError) Unwrap() error { return e.Err }

func (e *HangError) Error() string {
	var b strings.Builder
	b.WriteString(e.Err.Error())
	fmt.Fprintf(&b, "; fault watchdog: %d message(s) lost for good:", len(e.Lost))
	for _, l := range e.Lost {
		b.WriteString("\n  " + e.describe(l))
	}
	return b.String()
}

func (e *HangError) describe(l Loss) string {
	kind := fmt.Sprintf("kind %d", l.Kind)
	if e.name != nil {
		kind = e.name(l.Kind)
	}
	if l.Reply {
		kind += " reply"
	}
	fate := fmt.Sprintf("dropped at %v with no retry layer", l.At)
	if l.GaveUp {
		fate = fmt.Sprintf("given up at %v after %d attempts", l.At, l.Attempts)
	}
	return fmt.Sprintf("%s n%d->n%d %s", kind, l.From, l.To, fate)
}
