// Package fault implements deterministic, seeded fault injection for the
// simulated Paragon network, plus the configuration of the reliability
// layer that recovers from the injected faults.
//
// A Plan describes what goes wrong during a run: per-transmission message
// drop/duplicate/delay/reorder probabilities, targeted one-shot faults
// ("drop the Nth diff-flush to home H"), and per-node compute slowdown
// windows. An Injector turns a Plan into a stream of per-message verdicts
// drawn from its own self-contained PRNG; because the discrete-event
// kernel consults it in a deterministic order, a given (plan, seed) pair
// produces a byte-identical faulty execution every run — a reproducible
// adversarial scheduler.
//
// The zero Plan is inert: no injector is built and the message path is
// exactly the fault-free one, so statistics of existing runs are
// unchanged byte for byte.
package fault

import (
	"fmt"
	"math"

	"gosvm/internal/sim"
)

// Profile names accepted by Profile.
const (
	ProfileNone    = "none"
	ProfileLossy   = "lossy"
	ProfileHostile = "hostile"
	ProfileCrash   = "crash"
	// ProfileCrashMgr crashes synchronization-manager nodes (the barrier
	// manager, then a lock manager) in successive windows.
	ProfileCrashMgr = "crash-mgr"
)

// Profiles lists the built-in fault profiles.
var Profiles = []string{ProfileNone, ProfileLossy, ProfileHostile, ProfileCrash, ProfileCrashMgr}

// AnyNode matches any node in a Target.
const AnyNode = -1

// Target is a targeted fault: drop transmissions of a specific message
// kind on a specific edge. The zero Kind matches every kind; From/To set
// to AnyNode match every node.
type Target struct {
	Kind     int  // protocol message kind; 0 matches any kind
	From, To int  // node ids; AnyNode matches any
	Reply    bool // match reply transmissions instead of requests
	// Nth drops only the Nth matching transmission (1-based); 0 drops
	// every match (a severed edge).
	Nth int
}

// Slowdown multiplies node Node's compute work by Factor during the
// simulated-time window [From, To).
type Slowdown struct {
	Node     int
	From, To sim.Time
	Factor   float64
}

// LinkFail takes the directional mesh link From->To (adjacent node ids
// on the 2-D grid) out of service during the simulated-time window
// [Start, End): every message whose XY route crosses the link inside
// the window is dropped at that link. The two directions of a physical
// channel fail independently; schedule both to sever the channel.
// Requires the link-level mesh network model (enabled automatically).
type LinkFail struct {
	From, To   int
	Start, End sim.Time
}

// Covers reports whether the window is active at time t.
func (l LinkFail) Covers(t sim.Time) bool { return t >= l.Start && t < l.End }

// Crash takes node Node down at simulated time At: the node stops
// servicing protocol messages and its local compute freezes. If
// RestartAt is nonzero the node comes back at that time with its
// volatile protocol state (home copies, cached pages) lost; a zero
// RestartAt is a permanent failure. Recovery of home-page state is the
// job of the core re-homing protocol (see core.Recovery).
type Crash struct {
	Node      int
	At        sim.Time
	RestartAt sim.Time // 0 = never restarts
}

// Permanent reports whether the node never comes back.
func (c Crash) Permanent() bool { return c.RestartAt == 0 }

// Plan is a complete per-run fault schedule plus reliability tuning.
// Probabilities apply independently to every message transmission
// (including retransmissions).
type Plan struct {
	Seed int64

	// Message fault probabilities, per transmission.
	Drop      float64
	Duplicate float64
	Delay     float64 // extra latency drawn from U(0, MaxDelay)
	Reorder   float64 // small jitter from U(0, ReorderWindow), FIFO clamp skipped

	MaxDelay      sim.Time // default 1ms
	ReorderWindow sim.Time // default 250us

	// Link-level faults. Unlike the per-message probabilities above,
	// these roll once per link crossing of a message's XY mesh route, so
	// loss and jitter correlate with routes and congested links: a
	// message crossing six links faces six chances, neighbors face one,
	// and everything routed over a failed link dies together. Any
	// link-level fault implies the mesh network model (core.Run enables
	// it automatically).
	LinkDrop      float64    // per-link-crossing drop probability
	LinkJitter    float64    // per-link-crossing jitter probability
	LinkJitterMax sim.Time   // jitter magnitude, U(0, LinkJitterMax); default 100us
	LinkFails     []LinkFail // scheduled transient link outages

	Targets   []Target
	Slowdowns []Slowdown
	Crashes   []Crash

	// Reliability layer tuning (acknowledgement + timeout/retry).
	RTO         sim.Time // initial retransmit timeout; default 2ms
	Backoff     float64  // RTO multiplier per retry; default 2
	MaxAttempts int      // transmissions before giving a message up; default 10

	// AdaptiveRTO augments the fixed initial RTO with per-(src,dst)-edge
	// RTT estimation (Jacobson/Karels SRTT/RTTVAR on the simulated
	// clock, Karn-filtered samples): an edge's timeout is raised to
	// srtt + 2*rttvar once that exceeds RTO, so edges with long or
	// congested routes stop retransmitting into their own congestion.
	// RTO itself acts as the minimum (TCP minRTO style), guarding
	// against the plan's i.i.d. injected delay tail. Estimates and
	// retry backoff are both capped at RTOMax.
	AdaptiveRTO bool
	// RTOMax caps every retransmission wait — the adaptive estimate and
	// the exponential backoff alike — so recovery latency after a long
	// outage is bounded. Default 50ms.
	RTOMax sim.Time
	// NoRetry disables the reliability layer entirely (no sequence
	// numbers, acks, dedup, or retransmission): a diagnostic mode that
	// exposes the protocols' raw behaviour under faults. Drops are then
	// final and are reported by the watchdog on deadlock.
	NoRetry bool

	// SuspectAfter is the number of consecutive unacknowledged
	// transmissions to one destination after which the transport reports
	// the destination as suspected dead (default 3). Suspicion is only
	// raised for nodes the plan actually crashes, so lossy networks
	// cannot produce false positives.
	SuspectAfter int
}

// Messaging reports whether the plan injects any message-level fault
// (which is also what activates the reliability transport).
func (p *Plan) Messaging() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0 || p.Reorder > 0 ||
		len(p.Targets) > 0 || len(p.Crashes) > 0 || p.LinkLevel()
}

// LinkLevel reports whether the plan injects faults at mesh-link
// granularity, which requires the link-level network model.
func (p *Plan) LinkLevel() bool {
	return p.LinkDrop > 0 || p.LinkJitter > 0 || len(p.LinkFails) > 0
}

// Active reports whether the plan perturbs the run at all.
func (p *Plan) Active() bool {
	return p.Messaging() || len(p.Slowdowns) > 0
}

// withDefaults fills unset tuning fields.
func (p Plan) withDefaults() Plan {
	if p.MaxDelay == 0 {
		p.MaxDelay = sim.Millisecond
	}
	if p.ReorderWindow == 0 {
		p.ReorderWindow = 250 * sim.Microsecond
	}
	if p.LinkJitterMax == 0 {
		p.LinkJitterMax = 100 * sim.Microsecond
	}
	if p.RTO == 0 {
		p.RTO = 2 * sim.Millisecond
	}
	if p.RTOMax == 0 {
		p.RTOMax = 50 * sim.Millisecond
	}
	if p.RTOMax < p.RTO {
		p.RTOMax = p.RTO
	}
	if p.Backoff == 0 {
		p.Backoff = 2
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 10
	}
	if p.SuspectAfter == 0 {
		p.SuspectAfter = 3
	}
	return p
}

// AtLinkLevel converts the plan's per-message drop and delay
// probabilities into per-link-crossing ones for a machine of the given
// node count, preserving the fault intensity a message on an
// average-length XY route experiences: a per-message probability p
// becomes the per-crossing probability q with 1-(1-q)^h = p at the
// grid's mean route length h. Short routes then see less loss and
// jitter than before, long routes more, and faults correlate with
// routes — the link-level rendition of the same profile. Duplicate and
// reorder injection have no per-link analogue and stay message-level.
//
// With Drop moved to the links, transport acknowledgements (which do
// not traverse the modeled mesh) are no longer dropped.
func (p Plan) AtLinkLevel(nodes int) Plan {
	h := meanHops(nodes)
	perLink := func(prob float64) float64 {
		if prob <= 0 {
			return 0
		}
		return 1 - math.Pow(1-prob, 1/h)
	}
	p.LinkDrop = perLink(p.Drop)
	p.Drop = 0
	p.LinkJitter = perLink(p.Delay)
	p.LinkJitterMax = p.MaxDelay
	p.Delay = 0
	return p
}

// meanHops is the mean XY route length between two uniformly random
// nodes of the most-square grid of n nodes (the same grid
// paragon.EnableMesh builds): the sum, per dimension, of the mean
// absolute difference of two uniform draws from [0, k).
func meanHops(n int) float64 {
	rows := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	cols := n / rows
	mean := func(k int) float64 {
		if k <= 1 {
			return 0
		}
		return float64(k*k-1) / (3 * float64(k))
	}
	h := mean(rows) + mean(cols)
	if h == 0 {
		return 1 // single node: transform degenerates to identity
	}
	return h
}

// Profile returns a named preset plan seeded with seed.
func Profile(name string, seed int64) (Plan, error) {
	switch name {
	case ProfileNone, "":
		return Plan{}, nil
	case ProfileLossy:
		// Mild packet loss and jitter: the protocols should recover with
		// a handful of retries and no visible result change.
		return Plan{
			Seed:      seed,
			Drop:      0.02,
			Duplicate: 0.02,
			Delay:     0.05,
			MaxDelay:  500 * sim.Microsecond,
			Reorder:   0.05,
		}, nil
	case ProfileHostile:
		// Adversarial network: heavy loss, duplication, reordering, long
		// delays, plus compute slowdown windows that skew the schedules
		// the protocols see.
		return Plan{
			Seed:      seed,
			Drop:      0.10,
			Duplicate: 0.08,
			Delay:     0.15,
			MaxDelay:  2 * sim.Millisecond,
			Reorder:   0.20,
			Slowdowns: []Slowdown{
				{Node: 1, From: 0, To: 50 * sim.Millisecond, Factor: 2},
				{Node: 2, From: 25 * sim.Millisecond, To: 150 * sim.Millisecond, Factor: 3},
			},
		}, nil
	case ProfileCrash:
		// Node 1 dies mid-run and reboots 20ms later with its volatile
		// protocol state lost. With home-state replication enabled the
		// home-based protocols re-home its pages and finish correctly.
		return Plan{
			Seed: seed,
			Crashes: []Crash{
				{Node: 1, At: 5 * sim.Millisecond, RestartAt: 25 * sim.Millisecond},
			},
		}, nil
	case ProfileCrashMgr:
		// One synchronization manager dies per interval: first the
		// barrier manager (node 0), then — after its promoted successor
		// has taken over — node 1, the natural manager of lock 1 and the
		// usual first backup. Exercises manager failover and chained
		// promotions; requires Recovery.Replicas >= 1.
		return Plan{
			Seed: seed,
			Crashes: []Crash{
				{Node: 0, At: 5 * sim.Millisecond, RestartAt: 25 * sim.Millisecond},
				{Node: 1, At: 30 * sim.Millisecond, RestartAt: 50 * sim.Millisecond},
			},
		}, nil
	}
	return Plan{}, fmt.Errorf("fault: unknown profile %q (have %v)", name, Profiles)
}
