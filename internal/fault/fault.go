// Package fault implements deterministic, seeded fault injection for the
// simulated Paragon network, plus the configuration of the reliability
// layer that recovers from the injected faults.
//
// A Plan describes what goes wrong during a run: per-transmission message
// drop/duplicate/delay/reorder probabilities, targeted one-shot faults
// ("drop the Nth diff-flush to home H"), and per-node compute slowdown
// windows. An Injector turns a Plan into a stream of per-message verdicts
// drawn from its own self-contained PRNG; because the discrete-event
// kernel consults it in a deterministic order, a given (plan, seed) pair
// produces a byte-identical faulty execution every run — a reproducible
// adversarial scheduler.
//
// The zero Plan is inert: no injector is built and the message path is
// exactly the fault-free one, so statistics of existing runs are
// unchanged byte for byte.
package fault

import (
	"fmt"

	"gosvm/internal/sim"
)

// Profile names accepted by Profile.
const (
	ProfileNone    = "none"
	ProfileLossy   = "lossy"
	ProfileHostile = "hostile"
	ProfileCrash   = "crash"
)

// Profiles lists the built-in fault profiles.
var Profiles = []string{ProfileNone, ProfileLossy, ProfileHostile, ProfileCrash}

// AnyNode matches any node in a Target.
const AnyNode = -1

// Target is a targeted fault: drop transmissions of a specific message
// kind on a specific edge. The zero Kind matches every kind; From/To set
// to AnyNode match every node.
type Target struct {
	Kind     int  // protocol message kind; 0 matches any kind
	From, To int  // node ids; AnyNode matches any
	Reply    bool // match reply transmissions instead of requests
	// Nth drops only the Nth matching transmission (1-based); 0 drops
	// every match (a severed edge).
	Nth int
}

// Slowdown multiplies node Node's compute work by Factor during the
// simulated-time window [From, To).
type Slowdown struct {
	Node     int
	From, To sim.Time
	Factor   float64
}

// Crash takes node Node down at simulated time At: the node stops
// servicing protocol messages and its local compute freezes. If
// RestartAt is nonzero the node comes back at that time with its
// volatile protocol state (home copies, cached pages) lost; a zero
// RestartAt is a permanent failure. Recovery of home-page state is the
// job of the core re-homing protocol (see core.Recovery).
type Crash struct {
	Node      int
	At        sim.Time
	RestartAt sim.Time // 0 = never restarts
}

// Permanent reports whether the node never comes back.
func (c Crash) Permanent() bool { return c.RestartAt == 0 }

// Plan is a complete per-run fault schedule plus reliability tuning.
// Probabilities apply independently to every message transmission
// (including retransmissions).
type Plan struct {
	Seed int64

	// Message fault probabilities, per transmission.
	Drop      float64
	Duplicate float64
	Delay     float64 // extra latency drawn from U(0, MaxDelay)
	Reorder   float64 // small jitter from U(0, ReorderWindow), FIFO clamp skipped

	MaxDelay      sim.Time // default 1ms
	ReorderWindow sim.Time // default 250us

	Targets   []Target
	Slowdowns []Slowdown
	Crashes   []Crash

	// Reliability layer tuning (acknowledgement + timeout/retry).
	RTO         sim.Time // initial retransmit timeout; default 2ms
	Backoff     float64  // RTO multiplier per retry; default 2
	MaxAttempts int      // transmissions before giving a message up; default 10
	// NoRetry disables the reliability layer entirely (no sequence
	// numbers, acks, dedup, or retransmission): a diagnostic mode that
	// exposes the protocols' raw behaviour under faults. Drops are then
	// final and are reported by the watchdog on deadlock.
	NoRetry bool

	// SuspectAfter is the number of consecutive unacknowledged
	// transmissions to one destination after which the transport reports
	// the destination as suspected dead (default 3). Suspicion is only
	// raised for nodes the plan actually crashes, so lossy networks
	// cannot produce false positives.
	SuspectAfter int
}

// Messaging reports whether the plan injects any message-level fault
// (which is also what activates the reliability transport).
func (p *Plan) Messaging() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0 || p.Reorder > 0 ||
		len(p.Targets) > 0 || len(p.Crashes) > 0
}

// Active reports whether the plan perturbs the run at all.
func (p *Plan) Active() bool {
	return p.Messaging() || len(p.Slowdowns) > 0
}

// withDefaults fills unset tuning fields.
func (p Plan) withDefaults() Plan {
	if p.MaxDelay == 0 {
		p.MaxDelay = sim.Millisecond
	}
	if p.ReorderWindow == 0 {
		p.ReorderWindow = 250 * sim.Microsecond
	}
	if p.RTO == 0 {
		p.RTO = 2 * sim.Millisecond
	}
	if p.Backoff == 0 {
		p.Backoff = 2
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 10
	}
	if p.SuspectAfter == 0 {
		p.SuspectAfter = 3
	}
	return p
}

// Profile returns a named preset plan seeded with seed.
func Profile(name string, seed int64) (Plan, error) {
	switch name {
	case ProfileNone, "":
		return Plan{}, nil
	case ProfileLossy:
		// Mild packet loss and jitter: the protocols should recover with
		// a handful of retries and no visible result change.
		return Plan{
			Seed:      seed,
			Drop:      0.02,
			Duplicate: 0.02,
			Delay:     0.05,
			MaxDelay:  500 * sim.Microsecond,
			Reorder:   0.05,
		}, nil
	case ProfileHostile:
		// Adversarial network: heavy loss, duplication, reordering, long
		// delays, plus compute slowdown windows that skew the schedules
		// the protocols see.
		return Plan{
			Seed:      seed,
			Drop:      0.10,
			Duplicate: 0.08,
			Delay:     0.15,
			MaxDelay:  2 * sim.Millisecond,
			Reorder:   0.20,
			Slowdowns: []Slowdown{
				{Node: 1, From: 0, To: 50 * sim.Millisecond, Factor: 2},
				{Node: 2, From: 25 * sim.Millisecond, To: 150 * sim.Millisecond, Factor: 3},
			},
		}, nil
	case ProfileCrash:
		// Node 1 dies mid-run and reboots 20ms later with its volatile
		// protocol state lost. With home-state replication enabled the
		// home-based protocols re-home its pages and finish correctly.
		return Plan{
			Seed: seed,
			Crashes: []Crash{
				{Node: 1, At: 5 * sim.Millisecond, RestartAt: 25 * sim.Millisecond},
			},
		}, nil
	}
	return Plan{}, fmt.Errorf("fault: unknown profile %q (have %v)", name, Profiles)
}
