package mem

import "fmt"

// State is the protection state of a page in one node's page table.
type State uint8

const (
	// Invalid: any access faults. The node may still hold stale Data as a
	// base copy for diff application.
	Invalid State = iota
	// ReadOnly: reads proceed; the first write faults (write detection).
	ReadOnly
	// ReadWrite: all accesses proceed.
	ReadWrite
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case ReadOnly:
		return "read-only"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Page is one node's view of a shared page.
type Page struct {
	State State
	// Data is the local copy, nil if the node never materialized one.
	// When State is Invalid, Data (if present) is a stale base copy.
	Data []float64
	// Twin is the clean snapshot taken before the first write of the
	// current interval; nil when the page is not being written.
	Twin []float64
	// Stores counts individual word stores since the page became
	// writable. Used by the AURC emulation, whose write-through traffic
	// is proportional to stores rather than to distinct modified words.
	Stores int
}

// HasCopy reports whether a local copy exists (possibly stale).
func (p *Page) HasCopy() bool { return p.Data != nil }

// TableChunk is the page-table allocation granule: entries materialize a
// chunk at a time on first touch, so a node's table costs memory
// proportional to the pages it actually references, not to the address
// space — the difference between feasible and not at 1024 nodes.
// Chunking also makes entry pointers stable with no pre-sizing: growing
// the outer chunk list never moves an allocated chunk.
const TableChunk = 128

// Table is one node's page table.
type Table struct {
	Space  *Space
	chunks [][]Page
	limit  int // highest referenced page id + 1
}

// NewTable returns an empty page table over space.
func NewTable(space *Space) *Table {
	return &Table{Space: space}
}

// Page returns the entry for page id, materializing its chunk. The
// returned pointer is stable for the table's lifetime.
func (t *Table) Page(id int) *Page {
	if id < 0 {
		panic(fmt.Sprintf("mem: page %d", id))
	}
	c := id / TableChunk
	for c >= len(t.chunks) {
		t.chunks = append(t.chunks, nil)
	}
	if t.chunks[c] == nil {
		t.chunks[c] = make([]Page, TableChunk)
	}
	if id >= t.limit {
		t.limit = id + 1
	}
	return &t.chunks[c][id%TableChunk]
}

// Len returns one past the highest page id ever referenced.
func (t *Table) Len() int { return t.limit }

// Each visits every entry in every materialized chunk, in page order.
// Entries in never-referenced chunks are skipped; they are zero (Invalid,
// no copy), so callers that would ignore zero entries anyway see the
// same behavior as a dense scan.
func (t *Table) Each(fn func(id int, p *Page)) {
	for ci, ch := range t.chunks {
		if ch == nil {
			continue
		}
		base := ci * TableChunk
		for i := range ch {
			fn(base+i, &ch[i])
		}
	}
}

// Materialize ensures the page has a zeroed local copy, returning it.
func (t *Table) Materialize(id int) *Page {
	p := t.Page(id)
	if p.Data == nil {
		p.Data = make([]float64, t.Space.PageWords)
	}
	return p
}

// MakeTwin snapshots the current page contents as the twin, drawing the
// buffer from pool when one is supplied (nil pool allocates).
func (p *Page) MakeTwin(pool *Pool) {
	if p.Data == nil {
		panic("mem: twin of a page with no copy")
	}
	if p.Twin == nil {
		if pool != nil {
			p.Twin = pool.GetPage()
		} else {
			p.Twin = make([]float64, len(p.Data))
		}
	}
	copy(p.Twin, p.Data)
}

// DropTwin discards the twin, recycling its buffer into pool (which may
// be nil).
func (p *Page) DropTwin(pool *Pool) {
	pool.PutPage(p.Twin)
	p.Twin = nil
}
