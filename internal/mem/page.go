package mem

import "fmt"

// State is the protection state of a page in one node's page table.
type State uint8

const (
	// Invalid: any access faults. The node may still hold stale Data as a
	// base copy for diff application.
	Invalid State = iota
	// ReadOnly: reads proceed; the first write faults (write detection).
	ReadOnly
	// ReadWrite: all accesses proceed.
	ReadWrite
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case ReadOnly:
		return "read-only"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Page is one node's view of a shared page.
type Page struct {
	State State
	// Data is the local copy, nil if the node never materialized one.
	// When State is Invalid, Data (if present) is a stale base copy.
	Data []float64
	// Twin is the clean snapshot taken before the first write of the
	// current interval; nil when the page is not being written.
	Twin []float64
	// Stores counts individual word stores since the page became
	// writable. Used by the AURC emulation, whose write-through traffic
	// is proportional to stores rather than to distinct modified words.
	Stores int
}

// HasCopy reports whether a local copy exists (possibly stale).
func (p *Page) HasCopy() bool { return p.Data != nil }

// Table is one node's page table.
type Table struct {
	Space *Space
	pages []Page
}

// NewTable returns an empty page table over space.
func NewTable(space *Space) *Table {
	return &Table{Space: space}
}

// Page returns the entry for page id, growing the table as needed.
func (t *Table) Page(id int) *Page {
	if id < 0 {
		panic(fmt.Sprintf("mem: page %d", id))
	}
	for id >= len(t.pages) {
		t.pages = append(t.pages, Page{})
	}
	return &t.pages[id]
}

// Len returns the number of page entries instantiated.
func (t *Table) Len() int { return len(t.pages) }

// Materialize ensures the page has a zeroed local copy, returning it.
func (t *Table) Materialize(id int) *Page {
	p := t.Page(id)
	if p.Data == nil {
		p.Data = make([]float64, t.Space.PageWords)
	}
	return p
}

// MakeTwin snapshots the current page contents as the twin, drawing the
// buffer from pool when one is supplied (nil pool allocates).
func (p *Page) MakeTwin(pool *Pool) {
	if p.Data == nil {
		panic("mem: twin of a page with no copy")
	}
	if p.Twin == nil {
		if pool != nil {
			p.Twin = pool.GetPage()
		} else {
			p.Twin = make([]float64, len(p.Data))
		}
	}
	copy(p.Twin, p.Data)
}

// DropTwin discards the twin, recycling its buffer into pool (which may
// be nil).
func (p *Page) DropTwin(pool *Pool) {
	pool.PutPage(p.Twin)
	p.Twin = nil
}
