package mem

// Pool recycles the two kinds of float64 buffers the protocols churn
// through: page-sized twin snapshots and the value backing of diffs. One
// simulation kernel is single-threaded, so the free lists need no locking;
// concurrent simulations each own their Space and therefore their Pool.
//
// Pooling invariants:
//   - A buffer handed out by GetPage/getBuf has exactly one owner; it may
//     be returned at most once, by that owner.
//   - Returned buffers are never zeroed: every consumer overwrites the
//     full length it uses (twins are copied over, diff backings are filled
//     by ComputeDiffPooled before any run aliases them).
//   - Releasing is optional. A pooled buffer that is still referenced
//     somewhere (LRC diffs cached on several nodes, recovery logs) is
//     simply never released and falls to the Go GC like any other slice.
type Pool struct {
	pageWords int
	pages     [][]float64 // twin/page buffers, len == pageWords
	bufs      [][]float64 // diff value backings, cap <= pageWords
}

// NewPool returns a pool for pages of pageWords words.
func NewPool(pageWords int) *Pool {
	return &Pool{pageWords: pageWords}
}

// GetPage returns a page-sized buffer with unspecified contents.
func (p *Pool) GetPage() []float64 {
	if n := len(p.pages); n > 0 {
		b := p.pages[n-1]
		p.pages[n-1] = nil
		p.pages = p.pages[:n-1]
		return b
	}
	return make([]float64, p.pageWords)
}

// PutPage returns a page-sized buffer to the pool.
func (p *Pool) PutPage(b []float64) {
	if p == nil || len(b) != p.pageWords {
		return
	}
	p.pages = append(p.pages, b)
}

// getBuf returns a buffer of length n (n <= pageWords) with unspecified
// contents, reusing a previous diff backing when one is free.
func (p *Pool) getBuf(n int) []float64 {
	if l := len(p.bufs); l > 0 {
		b := p.bufs[l-1]
		p.bufs[l-1] = nil
		p.bufs = p.bufs[:l-1]
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this diff; drop it and allocate page-capacity so
		// the replacement fits every future diff.
	}
	return make([]float64, n, p.pageWords)
}

// putBuf returns a diff backing to the pool.
func (p *Pool) putBuf(b []float64) {
	if p == nil || cap(b) == 0 || cap(b) > p.pageWords {
		return
	}
	p.bufs = append(p.bufs, b)
}
