// Package mem is the shared-virtual-memory substrate: a word-addressed
// shared address space, per-node software page tables with protection
// states, twin pages, and the word-granularity diff engine used by all
// four protocols.
//
// The unit of addressing is one 64-bit word. Shared data is stored as
// float64 (the Splash-2 workloads are floating-point dominated); integer
// values small enough for exact float64 representation are stored as
// their float64 value. Diffs compare words by bit pattern, so any stored
// value round-trips exactly.
package mem

import "fmt"

// Addr is a word index into the shared address space.
type Addr int64

// Space is the global shared address space: page geometry plus a bump
// allocator (the Splash-2 G_MALLOC). Allocation state is logically
// replicated on every node; a single object serves all simulated nodes.
type Space struct {
	PageWords int // words per page (page bytes / 8)
	// Pool recycles twin and diff buffers for the simulation owning this
	// space. Single-threaded per kernel; see Pool.
	Pool *Pool
	next Addr
}

// NewSpace returns an empty address space with the given page size in
// bytes, which must be a positive multiple of 8.
func NewSpace(pageBytes int) *Space {
	if pageBytes <= 0 || pageBytes%8 != 0 {
		panic(fmt.Sprintf("mem: invalid page size %d", pageBytes))
	}
	return &Space{PageWords: pageBytes / 8, Pool: NewPool(pageBytes / 8)}
}

// PageBytes returns the page size in bytes.
func (s *Space) PageBytes() int { return s.PageWords * 8 }

// Alloc reserves n words and returns the base address. Allocations are
// page-aligned: the paper's programs allocate large arrays, and page
// alignment keeps the sharing granularity analysis faithful.
func (s *Space) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d)", n))
	}
	base := s.next
	pw := Addr(s.PageWords)
	if r := base % pw; r != 0 {
		base += pw - r
	}
	s.next = base + Addr(n)
	return base
}

// AllocUnaligned reserves n words with no alignment, packing allocations
// on shared pages — used to reproduce fragmentation/false-sharing layouts.
func (s *Space) AllocUnaligned(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: AllocUnaligned(%d)", n))
	}
	base := s.next
	s.next = base + Addr(n)
	return base
}

// Used returns the number of words allocated so far.
func (s *Space) Used() int64 { return int64(s.next) }

// NumPages returns the number of pages spanned by the allocations so far.
func (s *Space) NumPages() int {
	return int((int64(s.next) + int64(s.PageWords) - 1) / int64(s.PageWords))
}

// PageOf returns the page holding address a.
func (s *Space) PageOf(a Addr) int { return int(int64(a) / int64(s.PageWords)) }

// PageBase returns the first address of page id.
func (s *Space) PageBase(id int) Addr { return Addr(id * s.PageWords) }
