package mem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceAllocAlignment(t *testing.T) {
	s := NewSpace(4096) // 512 words
	a := s.Alloc(10)
	if a != 0 {
		t.Fatalf("first alloc at %d, want 0", a)
	}
	b := s.Alloc(5)
	if b != 512 {
		t.Fatalf("second alloc at %d, want page-aligned 512", b)
	}
	if s.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", s.NumPages())
	}
}

func TestSpaceAllocUnalignedPacks(t *testing.T) {
	s := NewSpace(4096)
	a := s.AllocUnaligned(10)
	b := s.AllocUnaligned(10)
	if b != a+10 {
		t.Fatalf("unaligned allocs not packed: %d then %d", a, b)
	}
}

func TestSpacePageMath(t *testing.T) {
	s := NewSpace(4096)
	if s.PageWords != 512 {
		t.Fatalf("PageWords = %d", s.PageWords)
	}
	if s.PageOf(511) != 0 || s.PageOf(512) != 1 {
		t.Fatal("PageOf boundary wrong")
	}
	if s.PageBase(3) != 1536 {
		t.Fatalf("PageBase(3) = %d", s.PageBase(3))
	}
}

func TestSpaceBadSizesPanic(t *testing.T) {
	for _, sz := range []int{0, -8, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", sz)
				}
			}()
			NewSpace(sz)
		}()
	}
	s := NewSpace(64)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	s.Alloc(0)
}

func TestTableGrowth(t *testing.T) {
	s := NewSpace(64)
	tb := NewTable(s)
	p := tb.Page(100)
	if p.State != Invalid || p.Data != nil {
		t.Fatal("fresh page not invalid/empty")
	}
	if tb.Len() != 101 {
		t.Fatalf("Len = %d, want 101", tb.Len())
	}
	// Returned pointer must be stable enough for immediate use.
	p.State = ReadWrite
	if tb.Page(100).State != ReadWrite {
		t.Fatal("page state lost")
	}
}

func TestMaterialize(t *testing.T) {
	s := NewSpace(64)
	tb := NewTable(s)
	p := tb.Materialize(2)
	if len(p.Data) != 8 {
		t.Fatalf("data len = %d, want 8", len(p.Data))
	}
	p.Data[3] = 7
	tb.Materialize(2) // idempotent
	if tb.Page(2).Data[3] != 7 {
		t.Fatal("Materialize clobbered existing data")
	}
}

func TestTwinLifecycle(t *testing.T) {
	s := NewSpace(64)
	tb := NewTable(s)
	p := tb.Materialize(0)
	p.Data[1] = 42
	p.MakeTwin(nil)
	p.Data[1] = 43
	if p.Twin[1] != 42 {
		t.Fatal("twin does not hold pre-write value")
	}
	p.DropTwin(nil)
	if p.Twin != nil {
		t.Fatal("DropTwin left twin")
	}
}

func TestDiffBasic(t *testing.T) {
	twin := []float64{1, 2, 3, 4, 5}
	cur := []float64{1, 9, 9, 4, 8}
	d := ComputeDiff(7, twin, cur)
	if d.Page != 7 {
		t.Fatalf("page = %d", d.Page)
	}
	if len(d.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (%v)", len(d.Runs), d.Runs)
	}
	if d.Words() != 3 {
		t.Fatalf("words = %d, want 3", d.Words())
	}
	dst := []float64{1, 2, 3, 4, 5}
	d.Apply(dst)
	for i := range cur {
		if dst[i] != cur[i] {
			t.Fatalf("apply mismatch at %d: %v vs %v", i, dst, cur)
		}
	}
}

func TestDiffEmpty(t *testing.T) {
	v := []float64{1, 2, 3}
	d := ComputeDiff(0, v, []float64{1, 2, 3})
	if !d.Empty() || d.Words() != 0 {
		t.Fatal("identical pages produced a non-empty diff")
	}
	if d.WireSize() != 16 {
		t.Fatalf("empty diff wire size = %d", d.WireSize())
	}
}

func TestDiffNaNAndSignedZero(t *testing.T) {
	nan1 := math.NaN()
	nan2 := math.Float64frombits(math.Float64bits(nan1) ^ 1) // different NaN payload
	twin := []float64{nan1, 0.0, 1}
	cur := []float64{nan1, math.Copysign(0, -1), 1}
	d := ComputeDiff(0, twin, cur)
	if d.Words() != 1 {
		t.Fatalf("signed-zero change not detected exactly: %d words", d.Words())
	}
	twin2 := []float64{nan1}
	cur2 := []float64{nan2}
	d2 := ComputeDiff(0, twin2, cur2)
	if d2.Words() != 1 {
		t.Fatal("NaN payload change not detected")
	}
	dst := []float64{nan1}
	d2.Apply(dst)
	if math.Float64bits(dst[0]) != math.Float64bits(nan2) {
		t.Fatal("NaN payload not preserved through apply")
	}
}

func TestDiffFullPage(t *testing.T) {
	n := 512
	twin := make([]float64, n)
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = float64(i + 1)
	}
	d := ComputeDiff(0, twin, cur)
	if len(d.Runs) != 1 || d.Words() != n {
		t.Fatalf("full-page diff: %d runs, %d words", len(d.Runs), d.Words())
	}
	if d.WireSize() != 16+8+8*n {
		t.Fatalf("wire size = %d", d.WireSize())
	}
}

// Property: applying Diff(twin, cur) to a copy of twin reconstructs cur
// exactly, for arbitrary modifications.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64, nMods uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		twin := make([]float64, n)
		for i := range twin {
			twin[i] = rng.NormFloat64()
		}
		cur := make([]float64, n)
		copy(cur, twin)
		for m := 0; m < int(nMods); m++ {
			cur[rng.Intn(n)] = rng.NormFloat64()
		}
		d := ComputeDiff(0, twin, cur)
		dst := make([]float64, n)
		copy(dst, twin)
		d.Apply(dst)
		for i := range cur {
			if math.Float64bits(dst[i]) != math.Float64bits(cur[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent diffs against the same twin touching disjoint words
// merge commutatively (the multiple-writer guarantee the protocols rely
// on).
func TestDiffDisjointMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		twin := make([]float64, n)
		for i := range twin {
			twin[i] = rng.NormFloat64()
		}
		a := make([]float64, n)
		b := make([]float64, n)
		copy(a, twin)
		copy(b, twin)
		perm := rng.Perm(n)
		for _, i := range perm[:16] {
			a[i] = rng.NormFloat64() + 1e9
		}
		for _, i := range perm[16:32] {
			b[i] = rng.NormFloat64() - 1e9
		}
		da := ComputeDiff(0, twin, a)
		db := ComputeDiff(0, twin, b)

		ab := append([]float64(nil), twin...)
		da.Apply(ab)
		db.Apply(ab)
		ba := append([]float64(nil), twin...)
		db.Apply(ba)
		da.Apply(ba)
		for i := range ab {
			if math.Float64bits(ab[i]) != math.Float64bits(ba[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: diff sizes are consistent — Words matches the sum of run
// lengths implied by WireSize.
func TestDiffSizeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		twin := make([]float64, n)
		cur := make([]float64, n)
		for i := range cur {
			if rng.Intn(3) == 0 {
				cur[i] = 1
			}
		}
		d := ComputeDiff(0, twin, cur)
		return d.WireSize() == 16+8*len(d.Runs)+8*d.Words()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
