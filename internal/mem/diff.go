package mem

import "math"

// Run is a maximal run of consecutive modified words within a page.
type Run struct {
	Off  int       // word offset within the page
	Vals []float64 // new values
}

// Diff is the set of words a writer changed in one page during one
// interval, encoded as runs. Words are compared by bit pattern, so NaNs
// and signed zeros are handled exactly.
type Diff struct {
	Page int
	Runs []Run
}

// ComputeDiff scans cur against the clean twin and returns the modified
// runs. The two slices must have equal length.
func ComputeDiff(page int, twin, cur []float64) Diff {
	if len(twin) != len(cur) {
		panic("mem: diff of mismatched pages")
	}
	d := Diff{Page: page}
	i := 0
	for i < len(cur) {
		if sameBits(twin[i], cur[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && !sameBits(twin[j], cur[j]) {
			j++
		}
		vals := make([]float64, j-i)
		copy(vals, cur[i:j])
		d.Runs = append(d.Runs, Run{Off: i, Vals: vals})
		i = j
	}
	return d
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Apply writes the diff's runs into dst (a local copy of the page).
func (d *Diff) Apply(dst []float64) {
	for _, r := range d.Runs {
		copy(dst[r.Off:r.Off+len(r.Vals)], r.Vals)
	}
}

// Empty reports whether the diff modifies no words.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Words returns the number of modified words.
func (d *Diff) Words() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Vals)
	}
	return n
}

// WireSize returns the encoded size in bytes: a small diff header plus,
// per run, a (page offset, length) descriptor and the word values.
func (d *Diff) WireSize() int {
	sz := 16 // page id + run count + interval stamp
	for _, r := range d.Runs {
		sz += 8 + 8*len(r.Vals)
	}
	return sz
}

// MemSize returns the in-memory footprint charged to protocol memory
// accounting when a diff is retained.
func (d *Diff) MemSize() int64 {
	sz := int64(48) // descriptor
	for _, r := range d.Runs {
		sz += 24 + 8*int64(len(r.Vals))
	}
	return sz
}
