package mem

import "math"

// Run is a maximal run of consecutive modified words within a page.
type Run struct {
	Off  int       // word offset within the page
	Vals []float64 // new values
}

// Diff is the set of words a writer changed in one page during one
// interval, encoded as runs. Words are compared by bit pattern, so NaNs
// and signed zeros are handled exactly.
type Diff struct {
	Page int
	Runs []Run

	// buf is the pooled backing array all Runs' Vals are sliced from, nil
	// for unpooled diffs. See ComputeDiffPooled and Release.
	buf []float64
}

// ComputeDiff scans cur against the clean twin and returns the modified
// runs. The two slices must have equal length.
func ComputeDiff(page int, twin, cur []float64) Diff {
	return ComputeDiffPooled(nil, page, twin, cur)
}

// ComputeDiffPooled is ComputeDiff with the run values packed into a
// single backing buffer drawn from pool (one allocation per diff instead
// of one per run, none when the pool has a free backing). A nil pool
// falls back to a plain allocation. If the diff's sole owner discards it,
// Release returns the backing for reuse; a diff that stays referenced is
// simply left to the garbage collector.
func ComputeDiffPooled(pool *Pool, page int, twin, cur []float64) Diff {
	if len(twin) != len(cur) {
		panic("mem: diff of mismatched pages")
	}
	// Pass 1: count modified words and runs so the backing is exact.
	words, runs := 0, 0
	for i := 0; i < len(cur); {
		if sameBits(twin[i], cur[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && !sameBits(twin[j], cur[j]) {
			j++
		}
		words += j - i
		runs++
		i = j
	}
	d := Diff{Page: page}
	if runs == 0 {
		return d
	}
	var buf []float64
	if pool != nil {
		buf = pool.getBuf(words)
		d.buf = buf
	} else {
		buf = make([]float64, words)
	}
	d.Runs = make([]Run, 0, runs)
	// Pass 2: fill the runs, slicing values out of the shared backing.
	used := 0
	for i := 0; i < len(cur); {
		if sameBits(twin[i], cur[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && !sameBits(twin[j], cur[j]) {
			j++
		}
		vals := buf[used : used+(j-i)]
		copy(vals, cur[i:j])
		used += j - i
		d.Runs = append(d.Runs, Run{Off: i, Vals: vals})
		i = j
	}
	return d
}

// Release returns a pooled diff's backing buffer to pool and empties the
// diff. It must only be called by the diff's sole owner, after the last
// Apply; no Run of the diff may be used afterwards. No-op for unpooled
// diffs (and safe to call twice).
func (d *Diff) Release(pool *Pool) {
	if d.buf == nil {
		return
	}
	pool.putBuf(d.buf)
	d.buf = nil
	d.Runs = nil
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Apply writes the diff's runs into dst (a local copy of the page).
func (d *Diff) Apply(dst []float64) {
	for _, r := range d.Runs {
		copy(dst[r.Off:r.Off+len(r.Vals)], r.Vals)
	}
}

// Empty reports whether the diff modifies no words.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Words returns the number of modified words.
func (d *Diff) Words() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Vals)
	}
	return n
}

// WireSize returns the encoded size in bytes: a small diff header plus,
// per run, a (page offset, length) descriptor and the word values.
func (d *Diff) WireSize() int {
	sz := 16 // page id + run count + interval stamp
	for _, r := range d.Runs {
		sz += 8 + 8*len(r.Vals)
	}
	return sz
}

// MemSize returns the in-memory footprint charged to protocol memory
// accounting when a diff is retained.
func (d *Diff) MemSize() int64 {
	sz := int64(48) // descriptor
	for _, r := range d.Runs {
		sz += 24 + 8*int64(len(r.Vals))
	}
	return sz
}
