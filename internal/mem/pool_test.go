package mem

import (
	"math"
	"testing"
)

func TestPoolPageRoundTrip(t *testing.T) {
	p := NewPool(8)
	a := p.GetPage()
	if len(a) != 8 {
		t.Fatalf("GetPage len = %d, want 8", len(a))
	}
	a[0] = 42
	p.PutPage(a)
	b := p.GetPage()
	if &a[0] != &b[0] {
		t.Fatal("PutPage buffer was not recycled")
	}
	// Wrong-sized buffers must be rejected, not poison the free list.
	p.PutPage(make([]float64, 4))
	c := p.GetPage()
	if len(c) != 8 {
		t.Fatalf("pool handed out a wrong-sized page: len %d", len(c))
	}
}

func TestPoolNilReceiver(t *testing.T) {
	var p *Pool
	p.PutPage(make([]float64, 8)) // must not panic
	d := ComputeDiffPooled(nil, 0, []float64{0, 1}, []float64{5, 1})
	if d.Words() != 1 {
		t.Fatal("unpooled ComputeDiffPooled broken")
	}
	d.Release(nil) // unpooled release is a no-op
	d.Release(nil) // and safe twice
}

// TestPooledDiffReuseExactness recycles one dirty backing through diffs of
// different shapes, including NaN payloads and signed zeros: reused (never
// zeroed) buffers must not leak stale bits into any run.
func TestPooledDiffReuseExactness(t *testing.T) {
	pool := NewPool(16)
	nan1 := math.NaN()
	nan2 := math.Float64frombits(math.Float64bits(nan1) ^ 1)
	negZero := math.Copysign(0, -1)

	// First diff dirties a backing with large values, then frees it.
	twin := make([]float64, 16)
	cur := make([]float64, 16)
	for i := range cur {
		cur[i] = 1e18
	}
	d := ComputeDiffPooled(pool, 0, twin, cur)
	if d.Words() != 16 {
		t.Fatalf("setup diff words = %d", d.Words())
	}
	d.Release(pool)

	// Second diff reuses the dirty backing for tricky bit patterns.
	twin2 := []float64{nan1, 0, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	cur2 := append([]float64(nil), twin2...)
	cur2[0] = nan2    // NaN payload change
	cur2[1] = negZero // signed-zero change
	cur2[5] = 1e18    // same value the stale buffer holds
	d2 := ComputeDiffPooled(pool, 0, twin2, cur2)
	if d2.Words() != 3 {
		t.Fatalf("reused-backing diff words = %d, want 3", d2.Words())
	}
	dst := append([]float64(nil), twin2...)
	d2.Apply(dst)
	for i := range cur2 {
		if math.Float64bits(dst[i]) != math.Float64bits(cur2[i]) {
			t.Fatalf("word %d: got %x want %x after pooled round-trip",
				i, math.Float64bits(dst[i]), math.Float64bits(cur2[i]))
		}
	}
	d2.Release(pool)
	if d2.Runs != nil {
		t.Fatal("Release did not empty the diff")
	}
	d2.Release(pool) // double release is a no-op
}

func TestTwinPooling(t *testing.T) {
	s := NewSpace(64) // 8 words
	tb := NewTable(s)
	p := tb.Materialize(0)
	p.Data[2] = 7
	p.MakeTwin(s.Pool)
	twin0 := p.Twin
	if twin0[2] != 7 {
		t.Fatal("pooled twin does not snapshot data")
	}
	p.DropTwin(s.Pool)
	p.Data[2] = 9
	p.MakeTwin(s.Pool)
	if &p.Twin[0] != &twin0[0] {
		t.Fatal("dropped twin buffer was not recycled")
	}
	if p.Twin[2] != 9 {
		t.Fatal("recycled twin holds stale contents")
	}
	p.DropTwin(s.Pool)
}

// TestComputeDiffPooledAllocs pins the hot-path allocation count: with a
// warm pool, a diff costs exactly one allocation (the runs slice).
func TestComputeDiffPooledAllocs(t *testing.T) {
	pool := NewPool(1024)
	twin := make([]float64, 1024)
	cur := make([]float64, 1024)
	for i := 0; i < 1024; i += 16 {
		cur[i] = 1
	}
	// Warm the pool so the backing is recycled.
	warm := ComputeDiffPooled(pool, 0, twin, cur)
	warm.Release(pool)
	allocs := testing.AllocsPerRun(100, func() {
		d := ComputeDiffPooled(pool, 0, twin, cur)
		d.Release(pool)
	})
	if allocs > 1 {
		t.Errorf("ComputeDiffPooled+Release = %.1f allocs/op, want <= 1", allocs)
	}
}
