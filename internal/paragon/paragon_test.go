package paragon

import (
	"testing"

	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

func testCosts() Costs {
	c := DefaultCosts()
	return c
}

func TestWireTiming(t *testing.T) {
	c := DefaultCosts()
	// A 4-byte message: latency dominates.
	small := c.Wire(4)
	if small < c.MsgLatency || small > c.MsgLatency+sim.Microsecond {
		t.Fatalf("small wire = %v", small)
	}
	// An 8KB page: latency + ~92us transfer.
	page := c.Wire(8192) - c.MsgLatency
	if page < 90*sim.Microsecond || page > 95*sim.Microsecond {
		t.Fatalf("8KB transfer = %v, want ~92us", page)
	}
}

func TestDerivedTable3Latencies(t *testing.T) {
	// Cross-checks from the paper's §4.3, minus the page-fault cost which
	// is charged by the VM layer: an HLRC page miss is 50+690+92+50 =
	// 882us of machine time (1172 with the 290us fault).
	c := DefaultCosts()
	rt := c.Wire(4) + c.ReceiveInterrupt + c.Wire(8192)
	lo := 880 * sim.Microsecond
	hi := 886 * sim.Microsecond
	if rt < lo || rt > hi {
		t.Fatalf("HLRC machine round trip = %v, want ~882us", rt)
	}
	// Overlapped: no interrupt: 50+92+50 = 192us.
	ov := c.Wire(4) + c.Wire(8192)
	if ov < 190*sim.Microsecond || ov > 196*sim.Microsecond {
		t.Fatalf("OHLRC machine round trip = %v, want ~192us", ov)
	}
}

// reqRespMachine wires a 2-node machine where node 1 answers kind-1
// requests after `work` service time.
func reqRespMachine(t *testing.T, work sim.Time, target Target) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	h := func(msg Msg) (sim.Time, func()) {
		return work, func() {
			m.Nodes[1].Respond(msg, Msg{Kind: 2, Size: 4, Class: stats.ClassProtocol})
		}
	}
	m.Nodes[1].InstallCompute(h)
	m.Nodes[1].InstallCoproc(h)
	_ = target
	return k, m
}

func TestCallInterruptPath(t *testing.T) {
	k, m := reqRespMachine(t, 10*sim.Microsecond, ToCompute)
	var elapsed sim.Time
	k.Spawn("app0", 0, func(p *sim.Proc) {
		m.Nodes[0].CPU.Bind(p)
		t0 := p.Now()
		m.Nodes[0].Call(p, 1, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCompute})
		elapsed = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	want := c.Wire(4) + c.ReceiveInterrupt + 10*sim.Microsecond + c.Wire(4)
	if elapsed != want {
		t.Fatalf("interrupt-path RPC = %v, want %v", elapsed, want)
	}
}

func TestCallCoprocPathSkipsInterrupt(t *testing.T) {
	k, m := reqRespMachine(t, 10*sim.Microsecond, ToCoproc)
	var elapsed sim.Time
	k.Spawn("app0", 0, func(p *sim.Proc) {
		m.Nodes[0].CPU.Bind(p)
		t0 := p.Now()
		m.Nodes[0].Call(p, 1, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
		elapsed = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	want := c.Wire(4) + 10*sim.Microsecond + c.Wire(4)
	if elapsed != want {
		t.Fatalf("coproc-path RPC = %v, want %v", elapsed, want)
	}
}

func TestInterruptStealsFromComputation(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	m.Nodes[1].InstallCompute(func(msg Msg) (sim.Time, func()) {
		return 0, nil
	})
	var elapsed sim.Time
	k.Spawn("app1", 0, func(p *sim.Proc) {
		m.Nodes[1].CPU.Bind(p)
		m.Nodes[1].CPU.Use(p, 10*sim.Millisecond, stats.CatCompute)
		elapsed = p.Now()
	})
	k.Spawn("app0", 0, func(p *sim.Proc) {
		// Fire a request that lands mid-computation on node 1.
		m.Nodes[0].Send(1, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCompute})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	want := 10*sim.Millisecond + c.ReceiveInterrupt
	if elapsed != want {
		t.Fatalf("computation with one interrupt = %v, want %v", elapsed, want)
	}
	st := m.Nodes[1].Stats
	if st.Time[stats.CatCompute] != 10*sim.Millisecond {
		t.Fatalf("compute time = %v", st.Time[stats.CatCompute])
	}
	if st.Time[stats.CatProtocol] != c.ReceiveInterrupt {
		t.Fatalf("protocol (stolen) time = %v, want %v", st.Time[stats.CatProtocol], c.ReceiveInterrupt)
	}
}

func TestInterruptDuringWaitIsFree(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	m.Nodes[1].InstallCompute(func(msg Msg) (sim.Time, func()) { return 0, nil })
	wake := sim.NewChan[int]("wake")
	var elapsed sim.Time
	k.Spawn("app1", 0, func(p *sim.Proc) {
		m.Nodes[1].CPU.Bind(p)
		wake.Recv(p) // blocked, not computing
		m.Nodes[1].CPU.Use(p, sim.Millisecond, stats.CatCompute)
		elapsed = p.Now()
	})
	k.Spawn("app0", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(1, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCompute})
		p.Sleep(5 * sim.Millisecond) // interrupt fully serviced by now
		wake.Push(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	want := 5*sim.Millisecond + sim.Millisecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v (interrupt absorbed by wait)", elapsed, want)
	}
}

func TestDispatcherSerializesHotSpot(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 3, testCosts())
	work := 100 * sim.Microsecond
	m.Nodes[2].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return work, func() {
			m.Nodes[2].Respond(msg, Msg{Kind: 2, Size: 4, Class: stats.ClassProtocol})
		}
	})
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("req", 0, func(p *sim.Proc) {
			m.Nodes[i].Call(p, 2, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
			done[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	first := c.Wire(4) + work + c.Wire(4)
	second := c.Wire(4) + 2*work + c.Wire(4) // queued behind the first
	if done[0] != first && done[1] != first {
		t.Fatalf("no requester finished at %v: %v", first, done)
	}
	if done[0] != second && done[1] != second {
		t.Fatalf("no requester was serialized to %v: %v", second, done)
	}
}

func TestPostCoproc(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 1, testCosts())
	var handled sim.Time
	m.Nodes[0].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 7 * sim.Microsecond, func() { handled = k.Now() }
	})
	k.Spawn("app", 0, func(p *sim.Proc) {
		m.Nodes[0].CPU.Bind(p)
		m.Nodes[0].PostCoproc(p, Msg{Kind: 9})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	want := c.CoprocPost + 7*sim.Microsecond
	if handled != want {
		t.Fatalf("coproc handled at %v, want %v", handled, want)
	}
}

func TestTrafficAccounting(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	m.Nodes[1].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() {
			m.Nodes[1].Respond(msg, Msg{Kind: 2, Size: 8192, Class: stats.ClassData})
		}
	})
	k.Spawn("app", 0, func(p *sim.Proc) {
		m.Nodes[0].Call(p, 1, Msg{Kind: 1, Size: 16, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	n0, n1 := m.Nodes[0].Stats, m.Nodes[1].Stats
	if n0.MsgsOut[stats.ClassProtocol] != 1 || n0.Bytes[stats.ClassProtocol] != int64(16+c.MsgHeader) {
		t.Fatalf("node0 traffic: %+v", n0)
	}
	if n1.MsgsOut[stats.ClassData] != 1 || n1.Bytes[stats.ClassData] != int64(8192+c.MsgHeader) {
		t.Fatalf("node1 traffic: %+v", n1)
	}
}

func TestRespondWithoutReplyPanics(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 1, testCosts())
	defer func() {
		if recover() == nil {
			t.Fatal("Respond on reply-less message did not panic")
		}
	}()
	m.Nodes[0].Respond(Msg{}, Msg{})
}

func TestFIFOPerPair(t *testing.T) {
	// A large message followed immediately by a small one must arrive in
	// send order despite the small one's shorter wire time.
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	var order []int
	m.Nodes[1].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { order = append(order, msg.Kind) }
	})
	k.Spawn("send", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(1, Msg{Kind: 1, Size: 1 << 20, Class: stats.ClassData, Target: ToCoproc})
		m.Nodes[0].Send(1, Msg{Kind: 2, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", order)
	}
}

func TestDistinctPairsDoNotSerialize(t *testing.T) {
	// FIFO is per (src,dst) pair: messages from different sources are
	// not delayed by each other's wire times.
	k := sim.NewKernel()
	m := New(k, 3, testCosts())
	var arrivals []sim.Time
	m.Nodes[2].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		arrivals = append(arrivals, k.Now())
		return 0, nil
	})
	k.Spawn("s0", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(2, Msg{Kind: 1, Size: 1 << 20, Class: stats.ClassData, Target: ToCoproc})
	})
	k.Spawn("s1", 0, func(p *sim.Proc) {
		m.Nodes[1].Send(2, Msg{Kind: 2, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != c.Wire(4) {
		t.Fatalf("small message from a different source was delayed: %v", arrivals[0])
	}
}
