// Package paragon models the machine of the paper's evaluation: an Intel
// Paragon multicomputer. Each node has a compute processor and a
// communication co-processor sharing local memory; nodes exchange
// NX/2-style messages over a network characterized by a one-way latency
// and a transfer bandwidth.
//
// The model reproduces the machine behaviours the protocols can observe:
//
//   - the large fixed cost of interrupting the compute processor to
//     service an unsolicited remote request (stolen from computation),
//   - the co-processor's polling dispatch loop, which services requests
//     with no interrupt but is one message at a time (so heavily loaded
//     nodes serialize service — the paper's "hot spots"),
//   - latency/bandwidth message timing, and
//   - the costs of the virtual-memory and diff primitives (Table 3).
package paragon

import (
	"fmt"

	"gosvm/internal/sim"
)

// Costs is the basic-operation cost model (the paper's Table 3, plus the
// derived constants the text quotes). All times are simulated time.
type Costs struct {
	MsgLatency       sim.Time // one-way latency of a small message
	BandwidthMBs     float64  // large-transfer bandwidth, MB/s
	ReceiveInterrupt sim.Time // interrupting the compute processor
	TwinCopy         sim.Time // copying one 8KB page (scaled by page size)
	DiffCreateBase   sim.Time
	DiffPerWord      sim.Time // per 8-byte word scanned or applied
	DiffApplyBase    sim.Time
	PageFault        sim.Time // taking an access fault to the handler
	PageInval        sim.Time
	PageProtect      sim.Time
	LockHandling     sim.Time // manager/holder bookkeeping per lock hop
	CoprocPost       sim.Time // posting a request to the co-processor
	MsgHeader        int      // wire overhead per message, bytes
}

// DefaultCosts returns the reconstructed Table 3 values (see DESIGN.md for
// the cross-checks against the latencies quoted in the paper's §4.3).
func DefaultCosts() Costs {
	return Costs{
		MsgLatency:       50 * sim.Microsecond,
		BandwidthMBs:     89.0, // 8KB page in 92us
		ReceiveInterrupt: 690 * sim.Microsecond,
		TwinCopy:         120 * sim.Microsecond, // per 8KB
		DiffCreateBase:   85 * sim.Microsecond,
		DiffPerWord:      42 * sim.Nanosecond,
		DiffApplyBase:    50 * sim.Microsecond,
		PageFault:        290 * sim.Microsecond,
		PageInval:        2 * sim.Microsecond,
		PageProtect:      5 * sim.Microsecond,
		LockHandling:     20 * sim.Microsecond,
		CoprocPost:       5 * sim.Microsecond,
		MsgHeader:        32,
	}
}

// ModernCosts returns a cost profile resembling a contemporary cluster:
// kernel-bypass messaging (microsecond-scale latency, multi-GB/s links)
// and ~10us interrupt/handler costs instead of the Paragon's 690us. The
// machine model is unchanged — only the constants move — so runs isolate
// how much of the paper's protocol ranking is an artifact of 1996
// communication costs.
func ModernCosts() Costs {
	return Costs{
		MsgLatency:       2 * sim.Microsecond,
		BandwidthMBs:     3000.0,
		ReceiveInterrupt: 10 * sim.Microsecond,
		TwinCopy:         4 * sim.Microsecond, // per 8KB: ~2GB/s memcpy
		DiffCreateBase:   2 * sim.Microsecond,
		DiffPerWord:      1 * sim.Nanosecond,
		DiffApplyBase:    1 * sim.Microsecond,
		PageFault:        5 * sim.Microsecond,
		PageInval:        500 * sim.Nanosecond,
		PageProtect:      1 * sim.Microsecond,
		LockHandling:     2 * sim.Microsecond,
		CoprocPost:       1 * sim.Microsecond,
		MsgHeader:        64,
	}
}

// CostProfiles lists the built-in cost profile names for CostProfile.
var CostProfiles = []string{"paragon", "modern"}

// CostProfile returns a named built-in cost model: "paragon" (the
// paper's Table 3, also the default for an empty name) or "modern"
// (ModernCosts).
func CostProfile(name string) (Costs, error) {
	switch name {
	case "", "paragon":
		return DefaultCosts(), nil
	case "modern":
		return ModernCosts(), nil
	}
	return Costs{}, fmt.Errorf("paragon: unknown cost profile %q (have paragon, modern)", name)
}

// Lookahead returns the minimum cross-node interaction delay of this
// cost model: nodes influence each other only through messages, and no
// message arrives sooner than MsgLatency after it is sent (Wire adds a
// non-negative transfer time on top, and the FIFO clamp only pushes
// arrivals later). This is the safe window width for the conservative
// parallel kernel — 50us at Paragon costs, 2us for -costs modern.
func (c *Costs) Lookahead() sim.Time { return c.MsgLatency }

// Wire returns the time a message of the given payload size occupies the
// network: latency plus size over bandwidth.
func (c *Costs) Wire(bytes int) sim.Time {
	bytes += c.MsgHeader
	bw := c.BandwidthMBs * 1e6 // bytes per second
	tx := sim.Time(float64(bytes) / bw * float64(sim.Second))
	return c.MsgLatency + tx
}

// TwinCost returns the cost of copying a page of pageBytes into a twin.
func (c *Costs) TwinCost(pageBytes int) sim.Time {
	return c.TwinCopy * sim.Time(pageBytes) / 8192
}

// DiffCreateCost returns the cost of scanning a page of wordsScanned
// 8-byte words against its twin.
func (c *Costs) DiffCreateCost(wordsScanned int) sim.Time {
	return c.DiffCreateBase + c.DiffPerWord*sim.Time(wordsScanned)
}

// DiffApplyCost returns the cost of applying a diff of wordsApplied words.
func (c *Costs) DiffApplyCost(wordsApplied int) sim.Time {
	return c.DiffApplyBase + c.DiffPerWord*sim.Time(wordsApplied)
}
