package paragon

import (
	"sort"

	"gosvm/internal/fault"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// ackBytes is the payload size of a transport-level acknowledgement: a
// message id plus a small header, in the spirit of NX-level flow control.
const ackBytes = 12

// faultLayer is the faulty network plus the reliability transport that
// recovers from it. Every inter-node transmission receives a unique id;
// the sender retransmits on an exponential-backoff timer (on the
// simulated clock) until the receiver's ack lands, and the receiver
// dedups by id so replayed requests, replies, and injected duplicates
// are delivered exactly once. With Plan.NoRetry the same machinery
// delivers raw faulty traffic — no ids on the wire, no acks, no
// retransmission — to expose the protocols' unprotected behaviour.
//
// All state is touched only from the simulation goroutine, so no locking
// is needed and the execution stays deterministic.
type faultLayer struct {
	m   *Machine
	inj *fault.Injector

	reliable     bool
	rto          sim.Time
	rtoMax       sim.Time
	backoff      float64
	maxAttempts  int
	suspectAfter int

	// adaptive switches the initial retransmission timeout from the
	// plan's fixed RTO to a per-(src,dst)-edge Jacobson/Karels estimate
	// (see rtoFor); rtt is the estimator state, indexed [src][dst].
	adaptive bool
	rtt      [][]edgeRTT

	nextID  uint64
	pending map[uint64]*netMsg
	// seen holds, per destination node, the ids already delivered there.
	// Entries are retired as soon as no copy of the id can still be in
	// flight (see maybeRetire), so the maps stay bounded by the number
	// of concurrently outstanding messages, not by run length.
	seen []map[uint64]struct{}
	// suspected marks nodes already reported dead to OnSuspect, cleared
	// when the node rejoins.
	suspected []bool
}

// edgeRTT is one edge's RTT estimator (Jacobson/Karels, on the
// simulated clock): smoothed RTT with gain 1/8, mean deviation with
// gain 1/4.
type edgeRTT struct {
	srtt, rttvar sim.Time
	samples      int
}

// observe folds one round-trip sample in. Only unambiguous samples are
// offered (Karn's rule, see ackArrived).
func (e *edgeRTT) observe(rtt sim.Time) {
	if e.samples == 0 {
		e.srtt = rtt
		e.rttvar = rtt / 2
	} else {
		dev := e.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		e.rttvar += (dev - e.rttvar) / 4
		e.srtt += (rtt - e.srtt) / 8
	}
	e.samples++
}

// netMsg is one logical message in flight: the transport retransmits the
// same id until it is acked or given up on.
type netMsg struct {
	id        uint64
	src, dst  int
	kind      int
	class     stats.Class
	reply     bool
	attempts  int
	firstSent sim.Time
	acked     bool
	lost      bool
	// inflight counts copies on the wire (scheduled arrivals not yet
	// processed). Once the sender is done with the id (acked or lost)
	// and inflight hits zero, no copy can ever arrive again and the
	// receiver's dedup entry is retired.
	inflight int

	// msg is the original payload of a non-reply message, kept so the
	// recovery layer can recall and re-address it when its destination
	// dies (zero Msg for replies).
	msg Msg

	// transmit puts one (possibly faulty) copy on the wire; deliver hands
	// the payload to the destination exactly once.
	transmit func(fault.Verdict)
	deliver  func()
}

func newFaultLayer(m *Machine, inj *fault.Injector) *faultLayer {
	p := inj.Plan()
	fl := &faultLayer{
		m:            m,
		inj:          inj,
		reliable:     inj.Reliable(),
		rto:          p.RTO,
		rtoMax:       p.RTOMax,
		backoff:      p.Backoff,
		maxAttempts:  p.MaxAttempts,
		suspectAfter: p.SuspectAfter,
		adaptive:     p.AdaptiveRTO,
		pending:      make(map[uint64]*netMsg),
		seen:         make([]map[uint64]struct{}, len(m.Nodes)),
		suspected:    make([]bool, len(m.Nodes)),
	}
	for i := range fl.seen {
		fl.seen[i] = make(map[uint64]struct{})
	}
	if fl.adaptive {
		// Rows materialize on first use (see edgeEstimate): estimator
		// state is per communicating edge, not per possible edge.
		fl.rtt = make([][]edgeRTT, len(m.Nodes))
	}
	return fl
}

// rtoFor returns the first retransmission wait for a message on the
// (src,dst) edge. With AdaptiveRTO the edge's srtt + 2*rttvar estimate
// raises the timeout above the plan's fixed RTO once the edge has a
// sample; it never lowers it. The fixed RTO thus plays the role of
// TCP's minimum RTO: it guards against spurious retransmission on the
// fault plan's injected delay tail (which is i.i.d. per message, so no
// per-edge estimate can dodge it), while the estimate adapts to what
// does differ per edge — route length and link congestion. Every wait,
// first or backed-off, is capped at RTOMax.
// edgeEstimate returns the RTT estimator for the (src,dst) edge,
// materializing the source's row on first touch.
func (fl *faultLayer) edgeEstimate(src, dst int) *edgeRTT {
	row := fl.rtt[src]
	if row == nil {
		row = make([]edgeRTT, len(fl.m.Nodes))
		fl.rtt[src] = row
	}
	return &row[dst]
}

func (fl *faultLayer) rtoFor(src, dst int) sim.Time {
	rto := fl.rto
	if fl.adaptive {
		if e := fl.edgeEstimate(src, dst); e.samples > 0 && e.srtt+2*e.rttvar > rto {
			rto = e.srtt + 2*e.rttvar
		}
	}
	if rto > fl.rtoMax {
		rto = fl.rtoMax
	}
	return rto
}

// send routes a one-way or request message through the faulty network.
func (fl *faultLayer) send(n *Node, to int, msg Msg) {
	fl.nextID++
	nm := &netMsg{
		id:        fl.nextID,
		src:       n.ID,
		dst:       to,
		kind:      msg.Kind,
		class:     msg.Class,
		firstSent: fl.m.K.Now(),
		msg:       msg,
	}
	dst := fl.m.Nodes[to]
	nm.deliver = func() { dst.enqueue(msg) }
	nm.transmit = func(v fault.Verdict) { fl.putOnWire(n, nm, msg.Size, v) }
	fl.launch(nm)
}

// respond routes a reply through the faulty network to node to, the
// original requester (whose proc polls reply.ch). Replies cross the
// same modeled network as requests: hop latency, link contention,
// link-level faults, and the per-(src,dst) FIFO order all apply.
func (fl *faultLayer) respond(n *Node, to int, reply *Reply, resp Msg) {
	fl.nextID++
	nm := &netMsg{
		id:        fl.nextID,
		src:       n.ID,
		dst:       to,
		kind:      resp.Kind,
		class:     resp.Class,
		reply:     true,
		firstSent: fl.m.K.Now(),
	}
	nm.deliver = func() { reply.ch.Push(resp) }
	nm.transmit = func(v fault.Verdict) { fl.putOnWire(n, nm, resp.Size, v) }
	fl.launch(nm)
}

// putOnWire transmits one (possibly faulty) copy of nm from n: the
// injector's message-level verdict first, then the network model
// (crossbar or mesh, where a link-level fault may still eat the copy).
func (fl *faultLayer) putOnWire(n *Node, nm *netMsg, size int, v fault.Verdict) {
	n.Stats.Sent(nm.class, size+fl.m.Costs.MsgHeader)
	if v.Drop {
		fl.dropped(nm)
		return
	}
	// A delayed primary copy leaves the FIFO order, as do duplicates:
	// both model packets straggling through the mesh.
	at, ok := n.arrivalTime(nm.dst, size, v.Delay == 0)
	if !ok {
		fl.linkDropped(nm)
	} else {
		nm.inflight++
		// Arrivals go through the same src->dst handoff path as fault-free
		// sends. (Fault runs always execute on an unpartitioned kernel —
		// the transport's dedup/pending maps are global — so this is the
		// plain event path; the routing just stays uniform.)
		fl.m.K.Post(nm.src, nm.dst, at+v.Delay, func() { fl.arrive(nm) })
	}
	if v.Duplicate {
		at2, ok := n.arrivalTime(nm.dst, size, false)
		if !ok {
			fl.linkDropped(nm)
			return
		}
		nm.inflight++
		fl.m.K.Post(nm.src, nm.dst, at2, func() { fl.arrive(nm) })
	}
}

// launch puts the first copy on the wire and, when the reliability layer
// is on, arms the retransmission timer.
func (fl *faultLayer) launch(nm *netMsg) {
	nm.attempts = 1
	nm.transmit(fl.inj.Judge(nm.src, nm.dst, nm.kind, nm.reply))
	if fl.reliable {
		fl.pending[nm.id] = nm
		fl.scheduleRetry(nm, fl.rtoFor(nm.src, nm.dst))
	}
}

// linkDropped accounts a copy a mesh link ate mid-route.
func (fl *faultLayer) linkDropped(nm *netMsg) {
	fl.m.Nodes[nm.src].Stats.Counts.LinkDrops++
	fl.dropped(nm)
}

// maybeRetire drops the receiver's dedup entry for nm once no copy can
// ever arrive again: the sender is done with the id (acked or given up,
// so no retransmission will mint new copies) and every copy already on
// the wire has been processed. This keeps the seen maps bounded by the
// number of concurrently outstanding messages.
func (fl *faultLayer) maybeRetire(nm *netMsg) {
	if (nm.acked || nm.lost) && nm.inflight == 0 {
		delete(fl.seen[nm.dst], nm.id)
	}
}

// dropped accounts a copy the network ate. Without the reliability layer
// that loss is final, so it is recorded for the watchdog right away.
func (fl *faultLayer) dropped(nm *netMsg) {
	fl.m.Nodes[nm.src].Stats.Counts.MsgsDropped++
	if !fl.reliable {
		fl.inj.RecordLoss(fault.Loss{
			At:       fl.m.K.Now(),
			From:     nm.src,
			To:       nm.dst,
			Kind:     nm.kind,
			Reply:    nm.reply,
			Attempts: nm.attempts,
		})
	}
}

// arrive runs when a copy reaches the destination. Under the reliability
// layer the id is deduped (replays and injected duplicates deliver
// exactly once) and every copy is acknowledged.
func (fl *faultLayer) arrive(nm *netMsg) {
	nm.inflight--
	if fl.m.Down(nm.dst) {
		// The destination is crashed: the copy falls on the floor — no
		// delivery, no ack. The retransmission chain keeps trying and
		// succeeds after the restart (or raises suspicion).
		fl.dropped(nm)
		fl.maybeRetire(nm)
		return
	}
	if !fl.reliable {
		nm.deliver()
		return
	}
	if _, dup := fl.seen[nm.dst][nm.id]; dup {
		fl.m.Nodes[nm.dst].Stats.Counts.DupsSuppressed++
		fl.sendAck(nm)
		fl.maybeRetire(nm)
		return
	}
	fl.seen[nm.dst][nm.id] = struct{}{}
	fl.sendAck(nm)
	nm.deliver()
	fl.maybeRetire(nm)
}

// sendAck returns a tiny acknowledgement to the sender. Acks themselves
// cross the faulty network (drop only — a lost ack just provokes one
// more suppressed retransmission).
func (fl *faultLayer) sendAck(nm *netMsg) {
	fl.m.Nodes[nm.dst].Stats.Sent(stats.ClassProtocol, ackBytes+fl.m.Costs.MsgHeader)
	if fl.inj.JudgeAck() {
		fl.m.Nodes[nm.dst].Stats.Counts.MsgsDropped++
		return
	}
	fl.m.K.Post(nm.dst, nm.src,
		fl.m.K.LaneNow(nm.dst)+fl.m.Costs.Wire(ackBytes),
		func() { fl.ackArrived(nm) })
}

func (fl *faultLayer) ackArrived(nm *netMsg) {
	if nm.acked || nm.lost {
		return
	}
	nm.acked = true
	delete(fl.pending, nm.id)
	if fl.adaptive && nm.attempts == 1 {
		// Karn's rule: an ack for a retransmitted message is ambiguous
		// (it may answer any copy), so only first-attempt round trips
		// feed the estimator.
		fl.edgeEstimate(nm.src, nm.dst).observe(fl.m.K.Now() - nm.firstSent)
	}
	if nm.attempts > 1 {
		// Recovery time: how long the loss stalled this message beyond a
		// clean first-attempt round trip.
		fl.m.Nodes[nm.src].Stats.Recovery += fl.m.K.Now() - nm.firstSent
	}
	fl.maybeRetire(nm)
}

// scheduleRetry arms one retransmission timer. At most one timer per
// message is outstanding; the chain ends on ack, on give-up, or with a
// final no-op firing after the ack lands.
func (fl *faultLayer) scheduleRetry(nm *netMsg, wait sim.Time) {
	fl.m.K.After(wait, func() {
		if nm.acked || nm.lost {
			return
		}
		if nm.attempts >= fl.maxAttempts {
			nm.lost = true
			delete(fl.pending, nm.id)
			fl.inj.RecordLoss(fault.Loss{
				At:       fl.m.K.Now(),
				From:     nm.src,
				To:       nm.dst,
				Kind:     nm.kind,
				Reply:    nm.reply,
				Attempts: nm.attempts,
				GaveUp:   true,
			})
			fl.maybeRetire(nm)
			return
		}
		nm.attempts++
		fl.m.Nodes[nm.src].Stats.Counts.Retries++
		// Failure detection: enough unanswered attempts to a node that
		// really is down (the plan is ground truth, so lossy networks
		// cannot produce false positives) raises suspicion exactly once
		// per outage.
		if nm.attempts >= fl.suspectAfter && !fl.suspected[nm.dst] &&
			fl.m.Down(nm.dst) && fl.m.OnSuspect != nil {
			fl.suspected[nm.dst] = true
			fl.m.OnSuspect(nm.dst, nm.src)
		}
		if nm.acked || nm.lost {
			// The suspicion handler may have recalled this message.
			return
		}
		nm.transmit(fl.inj.Judge(nm.src, nm.dst, nm.kind, nm.reply))
		next := sim.Time(float64(wait) * fl.backoff)
		if next > fl.rtoMax {
			next = fl.rtoMax
		}
		fl.scheduleRetry(nm, next)
	})
}

// clearSuspect re-arms failure detection for a node that rejoined.
func (fl *faultLayer) clearSuspect(node int) { fl.suspected[node] = false }

// recall cancels every pending non-reply message to dead whose payload
// matches the filter and returns the payloads, oldest first. The
// recovery layer re-addresses them (e.g. to a page's new home); copies
// already in flight are eaten by the dead node or deduped on delivery.
func (fl *faultLayer) recall(dead int, match func(Msg) bool) []Msg {
	var picked []*netMsg
	for _, nm := range fl.pending {
		if nm.dst == dead && !nm.reply && !nm.acked && !nm.lost && match(nm.msg) {
			picked = append(picked, nm)
		}
	}
	// Map iteration order is random; restore send order for determinism.
	sort.Slice(picked, func(i, j int) bool { return picked[i].id < picked[j].id })
	out := make([]Msg, 0, len(picked))
	for _, nm := range picked {
		nm.lost = true
		delete(fl.pending, nm.id)
		fl.maybeRetire(nm)
		out = append(out, nm.msg)
	}
	return out
}
