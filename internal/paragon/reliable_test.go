package paragon

import (
	"testing"

	"gosvm/internal/fault"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// inertMessagingPlan returns a plan that activates the reliability
// transport (Messaging() is true) but never perturbs anything: its only
// entry is a target that matches no real message kind.
func inertMessagingPlan() fault.Plan {
	return fault.Plan{
		Seed:    1,
		Targets: []fault.Target{{Kind: 99, From: 0, To: 0, Nth: 1}},
	}
}

// meshTx is the wire occupancy of a payload on one mesh link, matching
// arrivalTime's computation.
func meshTx(c Costs, size int) sim.Time {
	bw := c.BandwidthMBs * 1e6
	return sim.Time(float64(size+c.MsgHeader) / bw * float64(sim.Second))
}

// measureReqReply runs one 4-byte request/4-byte reply RPC across the
// full mesh diagonal (node 0 -> 15 on a 4x4 grid) and returns the two
// one-way times.
func measureReqReply(t *testing.T, withTransport bool) (req, rep sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	m := New(k, 16, testCosts())
	m.EnableMesh(0)
	if withTransport {
		m.EnableFaults(fault.NewInjector(inertMessagingPlan()))
	}
	var reqArrive, repArrive sim.Time
	m.Nodes[15].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() {
			reqArrive = k.Now()
			m.Nodes[15].Respond(msg, Msg{Kind: 2, Size: 4, Class: stats.ClassProtocol})
		}
	})
	k.Spawn("app0", 0, func(p *sim.Proc) {
		m.Nodes[0].CPU.Bind(p)
		m.Nodes[0].Call(p, 15, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
		repArrive = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	return reqArrive, repArrive - reqArrive
}

// The headline regression test: a reply must cross the same modeled
// network as the request. On an idle mesh the 0->15 request and the
// 15->0 reply travel symmetric 6-hop routes with equal payloads, so
// their one-way times must be identical — before the fix the reply
// bypassed the mesh (flat crossbar wire time) and arrived too early.
func TestMeshReplySymmetry(t *testing.T) {
	for _, tc := range []struct {
		name      string
		transport bool
	}{
		{"plain", false},
		{"fault-transport", true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			req, rep := measureReqReply(t, tc.transport)
			if req != rep {
				t.Fatalf("one-way times asymmetric: request %v, reply %v", req, rep)
			}
			c := testCosts()
			want := c.MsgLatency + 6*DefaultHopLatency + meshTx(c, 4)
			if req != want {
				t.Fatalf("one-way time = %v, want %v (latency + 6 hops + tx)", req, want)
			}
		})
	}
}

// Retransmission waits are capped at RTOMax, so recovery latency after a
// long outage is bounded: the sender re-probes at least every RTOMax and
// delivery lands within one cap of the restart. Uncapped exponential
// backoff would have pushed the next probe tens of milliseconds past it.
func TestRetryBackoffCappedAtRTOMax(t *testing.T) {
	const restart = 100 * sim.Millisecond
	const rtoMax = 8 * sim.Millisecond
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	m.EnableFaults(fault.NewInjector(fault.Plan{
		Seed:        1,
		RTO:         sim.Millisecond,
		Backoff:     2,
		RTOMax:      rtoMax,
		MaxAttempts: 50,
		Crashes:     []fault.Crash{{Node: 1, At: 1, RestartAt: restart}},
	}))
	var delivered sim.Time
	m.Nodes[1].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { delivered = k.Now() }
	})
	k.Spawn("send", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(1, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if delivered == 0 {
		t.Fatal("message never delivered after restart")
	}
	if delivered < restart {
		t.Fatalf("delivered at %v, before the restart at %v", delivered, restart)
	}
	if limit := restart + rtoMax + sim.Millisecond; delivered > limit {
		t.Fatalf("delivered at %v, want within one capped RTO of restart (%v)", delivered, limit)
	}
	if retries := m.Nodes[0].Stats.Counts.Retries; retries < 10 {
		t.Fatalf("retries = %d, want the capped chain to keep probing through the outage", retries)
	}
}

// The dedup maps must not grow with run length: every id is retired once
// the sender is done with it and no copy is still in flight, so after a
// long faulty run with duplicates and lost acks they drain to empty.
func TestSeenMapsBounded(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	m.EnableFaults(fault.NewInjector(fault.Plan{
		Seed:      3,
		Drop:      0.2,
		Duplicate: 0.5,
	}))
	m.Nodes[1].InstallCoproc(func(msg Msg) (sim.Time, func()) { return 0, nil })
	const msgs = 500
	k.Spawn("send", 0, func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			m.Nodes[0].Send(1, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
			p.Sleep(20 * sim.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	fl := m.faults
	if fl.m.Nodes[1].Stats.Counts.DupsSuppressed == 0 {
		t.Fatal("no duplicates suppressed: the test exercised nothing")
	}
	for dst, seen := range fl.seen {
		if len(seen) != 0 {
			t.Fatalf("dedup map for node %d holds %d unretired ids after the run", dst, len(seen))
		}
	}
	if len(fl.pending) != 0 {
		t.Fatalf("%d messages still pending after the run", len(fl.pending))
	}
}

// The per-edge estimator only ever raises the timeout above the plan's
// fixed RTO (which plays the minRTO role), and both the estimate and
// the cap behave per edge.
func TestAdaptiveRTOPerEdge(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 4, testCosts())
	m.EnableFaults(fault.NewInjector(fault.Plan{
		Seed:        1,
		Drop:        0.01,
		AdaptiveRTO: true,
		RTO:         2 * sim.Millisecond,
		RTOMax:      50 * sim.Millisecond,
	}))
	fl := m.faults
	// No samples: the fixed RTO.
	if got := fl.rtoFor(0, 1); got != 2*sim.Millisecond {
		t.Fatalf("unsampled edge RTO = %v, want 2ms", got)
	}
	// A slow edge: first sample sets srtt=rtt, rttvar=rtt/2, so the
	// timeout becomes srtt + 2*rttvar = 2*rtt.
	fl.edgeEstimate(0, 1).observe(10 * sim.Millisecond)
	if got := fl.rtoFor(0, 1); got != 20*sim.Millisecond {
		t.Fatalf("sampled edge RTO = %v, want 20ms", got)
	}
	// Other edges are untouched.
	if got := fl.rtoFor(1, 0); got != 2*sim.Millisecond {
		t.Fatalf("reverse edge RTO = %v, want the fixed 2ms", got)
	}
	// A fast edge never drops below the fixed RTO (minRTO floor).
	fl.edgeEstimate(2, 3).observe(10 * sim.Microsecond)
	if got := fl.rtoFor(2, 3); got != 2*sim.Millisecond {
		t.Fatalf("fast edge RTO = %v, want the 2ms floor", got)
	}
	// A pathological edge is capped at RTOMax.
	fl.edgeEstimate(3, 2).observe(200 * sim.Millisecond)
	if got := fl.rtoFor(3, 2); got != 50*sim.Millisecond {
		t.Fatalf("slow edge RTO = %v, want the 50ms cap", got)
	}
	k.Shutdown()
}

// First-attempt acks feed the estimator; acks of retransmitted messages
// are ambiguous and must be excluded (Karn's rule).
func TestAdaptiveRTOKarnFilter(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 2, testCosts())
	m.EnableFaults(fault.NewInjector(fault.Plan{
		Seed:        1,
		AdaptiveRTO: true,
		// Drop exactly the first transmission of kind 7: its ack follows a
		// retransmission, so it must not be sampled. Kind 8 flows clean.
		Targets: []fault.Target{{Kind: 7, From: 0, To: 1, Nth: 1}},
	}))
	m.Nodes[1].InstallCoproc(func(msg Msg) (sim.Time, func()) { return 0, nil })
	k.Spawn("send", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(1, Msg{Kind: 7, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
		p.Sleep(20 * sim.Millisecond) // past the retransmission and its ack
		m.Nodes[0].Send(1, Msg{Kind: 8, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	e := m.faults.rtt[0][1]
	if e.samples != 1 {
		t.Fatalf("estimator saw %d samples, want 1 (Karn must exclude the retransmitted message)", e.samples)
	}
	// The surviving sample is the clean round trip, not the
	// RTO-inflated one of the dropped-then-retransmitted message.
	if e.srtt > sim.Millisecond {
		t.Fatalf("srtt = %v: the ambiguous retransmission round trip leaked in", e.srtt)
	}
}
