package paragon

import (
	"testing"

	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

func TestMeshRouting(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 16, testCosts()) // 4x4 grid
	m.EnableMesh(0)
	ms := m.mesh
	if ms.rows != 4 || ms.cols != 4 {
		t.Fatalf("grid = %dx%d", ms.rows, ms.cols)
	}
	// Node 0 at (0,0), node 15 at (3,3): XY route goes east then south.
	path := ms.route(0, 15)
	want := []int{1, 2, 3, 7, 11, 15}
	if len(path) != len(want) {
		t.Fatalf("route = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("route = %v, want %v", path, want)
		}
	}
	if ms.hops(0, 15) != 6 {
		t.Fatalf("hops = %d", ms.hops(0, 15))
	}
	if len(ms.route(5, 5)) != 0 {
		t.Fatal("self route not empty")
	}
	k.Shutdown()
}

func TestMeshHopLatency(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 16, testCosts())
	m.EnableMesh(sim.Microsecond)
	// Disjoint routes so contention cannot blur the hop-count difference:
	// node 4 -> 5 is one hop; node 0 -> 15 is six.
	var near, far sim.Time
	m.Nodes[5].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { near = k.Now() }
	})
	m.Nodes[15].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { far = k.Now() }
	})
	k.Spawn("near", 0, func(p *sim.Proc) {
		m.Nodes[4].Send(5, Msg{Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	k.Spawn("far", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(15, Msg{Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	// 6 hops vs 1 hop at 1us/hop: 5us farther.
	if far-near != 5*sim.Microsecond {
		t.Fatalf("far-near = %v, want 5us", far-near)
	}
}

func TestMeshLinkContention(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 4, testCosts()) // 2x2 grid
	m.EnableMesh(0)
	// Nodes 0 and 1 are horizontal neighbors; node 0 -> 1 twice: the
	// second large message must wait for the first's tail on link 0->1.
	var arrivals []sim.Time
	m.Nodes[1].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { arrivals = append(arrivals, k.Now()) }
	})
	k.Spawn("send", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(1, Msg{Size: 1 << 20, Class: stats.ClassData, Target: ToCoproc})
		m.Nodes[0].Send(1, Msg{Size: 1 << 20, Class: stats.ClassData, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	bw := testCosts().BandwidthMBs * 1e6
	tx := sim.Time(float64(1<<20+testCosts().MsgHeader) / bw * float64(sim.Second))
	gap := arrivals[1] - arrivals[0]
	if gap < tx {
		t.Fatalf("second message not serialized behind the first: gap %v < tx %v", gap, tx)
	}
}

func TestMeshDisjointPathsParallel(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 4, testCosts()) // 2x2: 0-1 top row, 2-3 bottom row
	m.EnableMesh(0)
	var arrivals []sim.Time
	handler := func(msg Msg) (sim.Time, func()) {
		return 0, func() { arrivals = append(arrivals, k.Now()) }
	}
	m.Nodes[1].InstallCoproc(handler)
	m.Nodes[3].InstallCoproc(handler)
	k.Spawn("s0", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(1, Msg{Size: 1 << 20, Class: stats.ClassData, Target: ToCoproc})
	})
	k.Spawn("s2", 0, func(p *sim.Proc) {
		m.Nodes[2].Send(3, Msg{Size: 1 << 20, Class: stats.ClassData, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(arrivals) != 2 || arrivals[0] != arrivals[1] {
		t.Fatalf("disjoint paths interfered: %v", arrivals)
	}
}
