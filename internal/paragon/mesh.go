package paragon

import (
	"gosvm/internal/fault"
	"gosvm/internal/sim"
)

// mesh models the Paragon's 2-D wormhole-routed mesh at link granularity.
// The default machine model treats the network as a full crossbar (every
// message pays latency + size/bandwidth); enabling the mesh adds
// dimension-ordered (XY) routing with a per-hop latency and per-link
// occupancy, so messages crossing a congested link serialize — link-level
// hot spots on top of the node-level service serialization.
type mesh struct {
	rows, cols int
	hop        sim.Time
	// linkFree[l] is when link l's tail clears. Links are directional:
	// 4 per node (N, S, E, W).
	linkFree map[link]sim.Time
	// judge, when non-nil, consults the fault injector for every link
	// crossing (see Machine.EnableFaults): a drop verdict loses the
	// message at that link, and jitter delays the header there. Faults
	// therefore correlate with XY routes instead of being i.i.d. per
	// message.
	judge func(from, to int, t sim.Time) (drop bool, jitter sim.Time)
}

type link struct {
	from, to int // adjacent node ids
}

// DefaultHopLatency is the per-hop routing delay of the mesh model. The
// Paragon's hardware routing was sub-microsecond; contention, not hop
// count, is what the model is after.
const DefaultHopLatency = 200 * sim.Nanosecond

// EnableMesh switches the machine's network to the 2-D mesh model with
// the given per-hop latency (0 selects DefaultHopLatency). Node i sits at
// position (i/cols, i%cols) of the most-square grid.
func (m *Machine) EnableMesh(hop sim.Time) {
	n := len(m.Nodes)
	rows := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	m.EnableMeshDims(hop, rows, n/rows)
}

// EnableMeshDims is EnableMesh with an explicit rows x cols grid shape
// (which must hold exactly the machine's nodes).
func (m *Machine) EnableMeshDims(hop sim.Time, rows, cols int) {
	if hop == 0 {
		hop = DefaultHopLatency
	}
	if rows*cols != len(m.Nodes) {
		panic("paragon: mesh grid does not match machine size")
	}
	m.mesh = &mesh{
		rows:     rows,
		cols:     cols,
		hop:      hop,
		linkFree: map[link]sim.Time{},
	}
	if m.inj != nil {
		m.mesh.installJudge(m.inj)
	}
}

// installJudge wires the injector's link-level verdicts into delivery
// when the plan has any. EnableMesh and EnableFaults may run in either
// order; both call here.
func (ms *mesh) installJudge(inj *fault.Injector) {
	if p := inj.Plan(); p.LinkLevel() {
		ms.judge = inj.JudgeLink
	}
}

// pos returns the grid coordinates of node id.
func (ms *mesh) pos(id int) (r, c int) { return id / ms.cols, id % ms.cols }

func (ms *mesh) id(r, c int) int { return r*ms.cols + c }

// route returns the XY path from src to dst, excluding src.
func (ms *mesh) route(src, dst int) []int {
	var path []int
	r, c := ms.pos(src)
	dr, dc := ms.pos(dst)
	for c != dc {
		if c < dc {
			c++
		} else {
			c--
		}
		path = append(path, ms.id(r, c))
	}
	for r != dr {
		if r < dr {
			r++
		} else {
			r--
		}
		path = append(path, ms.id(r, c))
	}
	return path
}

// Hops returns the XY route length between two nodes.
func (ms *mesh) hops(src, dst int) int {
	r, c := ms.pos(src)
	dr, dc := ms.pos(dst)
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(r-dr) + abs(c-dc)
}

// deliver advances the message header across the route, reserving each
// link for the payload's transmission time, and returns the arrival time
// of the tail at dst. start is when the message leaves the source's
// network interface. With link-level faults installed a crossing may eat
// the message: ok is false, nothing arrives, and the failed link is not
// reserved (links already crossed keep their reservations — the worm
// was truncated mid-route).
func (ms *mesh) deliver(start sim.Time, src, dst int, tx sim.Time) (arrival sim.Time, ok bool) {
	t := start
	cur := src
	for _, next := range ms.route(src, dst) {
		l := link{cur, next}
		if free := ms.linkFree[l]; free > t {
			t = free
		}
		if ms.judge != nil {
			drop, jitter := ms.judge(l.from, l.to, t)
			if drop {
				return 0, false
			}
			t += jitter
		}
		t += ms.hop
		// Wormhole: the link is held until the tail passes.
		ms.linkFree[l] = t + tx
		cur = next
	}
	return t + tx, true
}
