package paragon

import (
	"fmt"
	"testing"

	"gosvm/internal/fault"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// A prime node count degenerates to a 1xN grid: routes are the flat
// column distance and delivery still works end to end.
func TestMeshPrimeGrid(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 7, testCosts())
	m.EnableMesh(0)
	ms := m.mesh
	if ms.rows != 1 || ms.cols != 7 {
		t.Fatalf("grid = %dx%d, want 1x7", ms.rows, ms.cols)
	}
	path := ms.route(0, 6)
	if len(path) != 6 || path[0] != 1 || path[5] != 6 {
		t.Fatalf("route 0->6 = %v", path)
	}
	if ms.hops(6, 0) != 6 || ms.hops(3, 3) != 0 {
		t.Fatalf("hops wrong: %d, %d", ms.hops(6, 0), ms.hops(3, 3))
	}
	var arrived sim.Time
	m.Nodes[6].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { arrived = k.Now() }
	})
	k.Spawn("send", 0, func(p *sim.Proc) {
		m.Nodes[0].Send(6, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	want := c.MsgLatency + 6*DefaultHopLatency + meshTx(c, 4)
	if arrived != want {
		t.Fatalf("1x7 end-to-end arrival = %v, want %v", arrived, want)
	}
}

// A single-node machine builds a 1x1 mesh and a self-send bypasses it
// (local delivery pays the plain wire time, no hops).
func TestMeshSelfSend(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 4, testCosts())
	m.EnableMesh(0)
	var arrived sim.Time
	m.Nodes[2].InstallCoproc(func(msg Msg) (sim.Time, func()) {
		return 0, func() { arrived = k.Now() }
	})
	k.Spawn("send", 0, func(p *sim.Proc) {
		m.Nodes[2].Send(2, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	c := testCosts()
	if want := c.Wire(4); arrived != want {
		t.Fatalf("self-send arrival = %v, want plain wire time %v", arrived, want)
	}
	if len(m.mesh.route(2, 2)) != 0 {
		t.Fatal("self route not empty")
	}
}

// XY routes are a pure function of the endpoints: repeated calls and
// fresh machines agree, which the deterministic fault replay relies on.
func TestMeshRouteDeterminism(t *testing.T) {
	mk := func() *mesh {
		k := sim.NewKernel()
		m := New(k, 16, testCosts())
		m.EnableMesh(0)
		k.Shutdown()
		return m.mesh
	}
	a, b := mk(), mk()
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			p1 := a.route(src, dst)
			p2 := a.route(src, dst)
			p3 := b.route(src, dst)
			if fmt.Sprint(p1) != fmt.Sprint(p2) || fmt.Sprint(p1) != fmt.Sprint(p3) {
				t.Fatalf("route %d->%d unstable: %v / %v / %v", src, dst, p1, p2, p3)
			}
			if len(p1) != a.hops(src, dst) {
				t.Fatalf("route %d->%d length %d != hops %d", src, dst, len(p1), a.hops(src, dst))
			}
		}
	}
}

// A scheduled link-failure window must eat exactly the traffic whose XY
// route crosses the failed link — no collateral loss elsewhere. On a
// 4x4 grid, link 1->2 is crossed precisely by messages from a row-0
// source in columns {0,1} to any destination in columns {2,3} (XY
// routes go east along the source's row first).
func TestLinkFailWindowConcentratesDrops(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, 16, testCosts())
	m.EnableMesh(0)
	m.EnableFaults(fault.NewInjector(fault.Plan{
		Seed:      1,
		NoRetry:   true,
		LinkFails: []fault.LinkFail{{From: 1, To: 2, Start: 0, End: sim.Second}},
	}))
	type pair struct{ from, to int }
	delivered := make(map[pair]bool)
	for i := range m.Nodes {
		i := i
		m.Nodes[i].InstallCoproc(func(msg Msg) (sim.Time, func()) {
			return 0, func() { delivered[pair{msg.From, i}] = true }
		})
	}
	k.Spawn("sendall", 0, func(p *sim.Proc) {
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				if src != dst {
					m.Nodes[src].Send(dst, Msg{Kind: 1, Size: 4, Class: stats.ClassProtocol, Target: ToCoproc})
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	crossesFailedLink := func(src, dst int) bool {
		return (src == 0 || src == 1) && dst%4 >= 2
	}
	var wantLost int64
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			got := delivered[pair{src, dst}]
			if crossesFailedLink(src, dst) {
				wantLost++
				if got {
					t.Errorf("%d->%d crosses the failed link 1->2 but was delivered", src, dst)
				}
			} else if !got {
				t.Errorf("%d->%d does not cross link 1->2 but was lost", src, dst)
			}
		}
	}
	var linkDrops int64
	for _, nd := range m.Nodes {
		linkDrops += nd.Stats.Counts.LinkDrops
	}
	if linkDrops != wantLost {
		t.Fatalf("LinkDrops = %d, want %d (one per route crossing the failed link)", linkDrops, wantLost)
	}
	// The drops are concentrated on the two row-0 senders west of the link.
	if d0, d1 := m.Nodes[0].Stats.Counts.LinkDrops, m.Nodes[1].Stats.Counts.LinkDrops; d0 != 8 || d1 != 8 {
		t.Fatalf("per-sender link drops = %d, %d, want 8, 8", d0, d1)
	}
}
