package paragon

import (
	"fmt"

	"gosvm/internal/fault"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// Handler services one message. It returns the compute work the service
// requires and an effect to apply once that time has elapsed (typically
// state mutation plus sending replies). Handlers must not block; requests
// that cannot be satisfied yet are parked on protocol pending lists and
// answered from a later handler's effect.
type Handler func(m Msg) (work sim.Time, effect func())

// Machine is a multicomputer: a set of nodes connected by a
// latency/bandwidth network, driven by one simulation kernel.
type Machine struct {
	K     *sim.Kernel
	Costs Costs
	Nodes []*Node

	// lastArrival enforces per-(src,dst) FIFO delivery, as the Paragon's
	// wormhole mesh does: a later small message must not overtake an
	// earlier large one. Indexed [src][dst].
	lastArrival [][]sim.Time

	// mesh, when non-nil, routes messages over a 2-D wormhole mesh with
	// link contention instead of the default crossbar. See EnableMesh.
	mesh *mesh

	// inj, when non-nil, scales compute work by the fault plan's slowdown
	// windows; faults, when non-nil, additionally routes inter-node
	// traffic through the faulty/reliable transport. Both nil in a
	// fault-free run, leaving every code path untouched.
	inj    *fault.Injector
	faults *faultLayer

	// Crash/recovery hooks, installed by the protocol layer. OnCrash and
	// OnRejoin fire (event context) when a planned crash takes a node
	// down or brings it back. OnSuspect fires when the transport's
	// retransmission chain to a genuinely-down node exceeds the plan's
	// suspicion threshold; it may fire more than once per death, so
	// handlers must be idempotent.
	OnCrash   func(node int)
	OnRejoin  func(node int)
	OnSuspect func(dead, reporter int)
}

// New builds an n-node machine on kernel k and starts the per-node
// dispatcher daemons.
func New(k *sim.Kernel, n int, costs Costs) *Machine {
	m := &Machine{K: k, Costs: costs}
	for i := 0; i < n; i++ {
		nd := &Node{
			ID:       i,
			M:        m,
			Stats:    &stats.Node{},
			computeQ: sim.NewChan[Msg](fmt.Sprintf("n%d.compute", i)),
			coprocQ:  sim.NewChan[Msg](fmt.Sprintf("n%d.coproc", i)),
		}
		nd.crashReason = fmt.Sprintf("n%d crashed", i)
		nd.coprocCrashReason = fmt.Sprintf("n%d coproc crashed", i)
		nd.CPU = &CPU{node: nd}
		m.Nodes = append(m.Nodes, nd)
		nd.startDispatchers()
	}
	// Per-source rows materialize on first ordered send (see sendTime):
	// most (src,dst) pairs never communicate at scale.
	m.lastArrival = make([][]sim.Time, n)
	return m
}

// NumNodes returns the machine size.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// EnableFaults wires a fault injector into the machine: compute work is
// scaled by the plan's slowdown windows, and if the plan injects message
// faults all inter-node traffic is routed through the fault transport
// (see reliable.go). Must be called before the simulation starts.
func (m *Machine) EnableFaults(inj *fault.Injector) {
	m.inj = inj
	if p := inj.Plan(); p.Messaging() {
		m.faults = newFaultLayer(m, inj)
	}
	if m.mesh != nil {
		m.mesh.installJudge(inj)
	}
	for _, c := range inj.Crashes() {
		c := c
		m.K.At(c.At, func() {
			if m.OnCrash != nil {
				m.OnCrash(c.Node)
			}
		})
		if !c.Permanent() {
			m.K.At(c.RestartAt, func() {
				if m.faults != nil {
					m.faults.clearSuspect(c.Node)
				}
				if m.OnRejoin != nil {
					m.OnRejoin(c.Node)
				}
			})
		}
	}
}

// Down reports whether node is inside a crash outage window right now
// (by node's own lane clock).
func (m *Machine) Down(node int) bool {
	return m.inj != nil && m.inj.Down(node, m.K.LaneNow(node))
}

// outage stretches compute work d on node across any crash window it
// overlaps. The second result is true when the node is permanently dead
// and the caller's proc should freeze forever.
func (m *Machine) outage(node int, d sim.Time) (sim.Time, bool) {
	if m.inj == nil {
		return d, false
	}
	return m.inj.Stall(node, m.K.LaneNow(node), d)
}

// RecallPending withdraws every unacknowledged request to the dead node
// whose payload matches the filter, returning the payloads oldest
// first. The recovery layer re-sends them to the successor node.
func (m *Machine) RecallPending(dead int, match func(Msg) bool) []Msg {
	if m.faults == nil {
		return nil
	}
	return m.faults.recall(dead, match)
}

// scale applies any active slowdown window on node to work d.
func (m *Machine) scale(node int, d sim.Time) sim.Time {
	if m.inj == nil {
		return d
	}
	return m.inj.Slow(node, m.K.LaneNow(node), d)
}

// Node is one Paragon node: compute processor, communication co-processor,
// and shared local memory (implicit — protocol state lives in Go objects
// owned by the node).
type Node struct {
	ID    int
	M     *Machine
	CPU   *CPU
	Stats *stats.Node

	computeQ *sim.Chan[Msg]
	coprocQ  *sim.Chan[Msg]
	computeH Handler
	coprocH  Handler

	// crashReason is prebuilt: crashed procs park in a loop and must not
	// allocate a fresh reason string per wakeup.
	crashReason       string
	coprocCrashReason string
}

// InstallCompute sets the handler for messages targeted at the compute
// processor (serviced under a receive interrupt).
func (n *Node) InstallCompute(h Handler) { n.computeH = h }

// InstallCoproc sets the handler run by the co-processor dispatch loop.
func (n *Node) InstallCoproc(h Handler) { n.coprocH = h }

func (n *Node) startDispatchers() {
	k := n.M.K
	k.SpawnOn(n.ID, fmt.Sprintf("n%d.intr", n.ID), 0, func(p *sim.Proc) {
		for {
			m := n.computeQ.Recv(p)
			work, effect := n.computeH(m)
			service := n.M.scale(n.ID, n.M.Costs.ReceiveInterrupt+work)
			// A crash freezes the processor mid-service: the work resumes
			// after the restart (its effect — already-acknowledged state —
			// still applies), or never on a permanent failure.
			service, dead := n.M.outage(n.ID, service)
			for dead {
				p.Park(n.crashReason)
			}
			// The interrupt runs on the compute processor: it both
			// occupies this service loop (serializing back-to-back
			// requests into hot spots) and steals the time from whatever
			// the application was doing.
			n.CPU.Steal(service)
			p.Sleep(service)
			if effect != nil {
				effect()
			}
		}
	}).SetDaemon()
	k.SpawnOn(n.ID, fmt.Sprintf("n%d.coproc", n.ID), 0, func(p *sim.Proc) {
		for {
			m := n.coprocQ.Recv(p)
			work, effect := n.coprocH(m)
			service, dead := n.M.outage(n.ID, n.M.scale(n.ID, work))
			for dead {
				p.Park(n.coprocCrashReason)
			}
			p.Sleep(service)
			if effect != nil {
				effect()
			}
		}
	}).SetDaemon()
}

// arrivalTime computes when a payload of size bytes sent now arrives at
// node to. When ordered, the per-(src,dst) FIFO clamp is applied and
// recorded; unordered copies (fault-delayed or duplicate transmissions)
// may overtake earlier traffic on the same wire. Under the link-level
// fault model a mesh link may eat the message: ok is false, nothing
// arrives, and the FIFO clamp is left untouched.
func (n *Node) arrivalTime(to, size int, ordered bool) (at sim.Time, ok bool) {
	if ms := n.M.mesh; ms != nil && n.ID != to {
		// Software latency covers injection; the mesh model adds hop
		// delay and link contention for the payload.
		bw := n.M.Costs.BandwidthMBs * 1e6
		tx := sim.Time(float64(size+n.M.Costs.MsgHeader) / bw * float64(sim.Second))
		at, ok = ms.deliver(n.M.K.LaneNow(n.ID)+n.M.Costs.MsgLatency, n.ID, to, tx)
		if !ok {
			return 0, false
		}
	} else {
		at = n.M.K.LaneNow(n.ID) + n.M.Costs.Wire(size)
	}
	if !ordered {
		return at, true
	}
	row := n.M.lastArrival[n.ID]
	if row == nil {
		row = make([]sim.Time, len(n.M.Nodes))
		n.M.lastArrival[n.ID] = row
	}
	if prev := row[to]; at <= prev {
		at = prev + 1
	}
	row[to] = at
	return at, true
}

// enqueue hands a delivered message to the targeted dispatcher queue.
// Every enqueued message is an unsolicited request this node must
// service (replies bypass the dispatchers), so this is where the
// hot-spot metric MsgsIn is counted.
func (n *Node) enqueue(msg Msg) {
	n.Stats.MsgsIn++
	switch msg.Target {
	case ToCompute:
		n.computeQ.Push(msg)
	case ToCoproc:
		n.coprocQ.Push(msg)
	}
}

// Send transmits msg from this node. Delivery is scheduled after the wire
// time (FIFO per source/destination pair); the receiving dispatcher then
// serializes service.
func (n *Node) Send(to int, msg Msg) {
	msg.From = n.ID
	if fl := n.M.faults; fl != nil && to != n.ID {
		fl.send(n, to, msg)
		return
	}
	n.Stats.Sent(msg.Class, msg.Size+n.M.Costs.MsgHeader)
	dst := n.M.Nodes[to]
	// Link-level drops only exist with a fault plan, which routes all
	// inter-node traffic through the fault layer above — this arrival is
	// always ok. The delivery is posted from this node's lane to the
	// destination's: on a partitioned kernel it becomes a window-boundary
	// handoff, on an unpartitioned one a plain event.
	at, _ := n.arrivalTime(to, msg.Size, true)
	n.M.K.Post(n.ID, to, at, func() { dst.enqueue(msg) })
}

// Call sends a request and blocks p until the reply arrives. The reply is
// delivered directly to the waiting requester (it polls), so no receive
// interrupt is charged on this node.
func (n *Node) Call(p *sim.Proc, to int, msg Msg) Msg {
	msg.Reply = NewReply()
	msg.Reply.owner = n.ID
	n.Send(to, msg)
	return msg.Reply.Wait(p)
}

// Respond sends resp as the answer to req. It may be called from handler
// effects or proc code on the node that received req. Replies cross the
// same modeled network as requests — hop latency, link contention, and
// the per-(src,dst) FIFO order all apply on the way back.
func (n *Node) Respond(req Msg, resp Msg) {
	if req.Reply == nil {
		panic("paragon: Respond to a message with no reply port")
	}
	resp.From = n.ID
	to := req.Reply.dest(req.From)
	if fl := n.M.faults; fl != nil && to != n.ID {
		fl.respond(n, to, req.Reply, resp)
		return
	}
	n.Stats.Sent(resp.Class, resp.Size+n.M.Costs.MsgHeader)
	reply := req.Reply
	at, _ := n.arrivalTime(to, resp.Size, true)
	n.M.K.Post(n.ID, to, at, func() { reply.ch.Push(resp) })
}

// PostCoproc posts a request from the compute processor to the local
// co-processor through the post page, charging the post cost to p.
func (n *Node) PostCoproc(p *sim.Proc, msg Msg) {
	msg.From = n.ID
	n.CPU.Use(p, n.M.Costs.CoprocPost, stats.CatProtocol)
	n.coprocQ.Push(msg)
}

// InjectCoproc queues a message on the local co-processor from a handler
// effect (no proc context to charge).
func (n *Node) InjectCoproc(msg Msg) {
	msg.From = n.ID
	n.coprocQ.Push(msg)
}

// CPU models the compute processor as seen by the application process:
// application work is charged through Use, and interrupt service steals
// time by extending whatever Use is in progress.
type CPU struct {
	node   *Node
	proc   *sim.Proc
	busy   bool
	stolen sim.Time
}

// Bind associates the application process with this CPU.
func (c *CPU) Bind(p *sim.Proc) { c.proc = p }

// Use charges d of processor time to category cat on behalf of p. If
// interrupts steal time while the work is in progress, the work is
// extended and the stolen time is accounted as protocol overhead.
func (c *CPU) Use(p *sim.Proc, d sim.Time, cat stats.Category) {
	d = c.node.M.scale(c.node.ID, d)
	d, dead := c.node.M.outage(c.node.ID, d)
	for dead {
		p.Park(c.node.crashReason)
	}
	c.busy = true
	p.Sleep(d)
	c.node.Stats.Add(cat, d)
	for c.stolen > 0 {
		d = c.stolen
		c.stolen = 0
		p.Sleep(d)
		c.node.Stats.Add(stats.CatProtocol, d)
	}
	c.busy = false
}

// Steal records that an interrupt consumed d of compute-processor time.
// If the application is mid-Use the work is extended; if it is blocked
// (waiting on a reply or synchronization) the service overlaps the wait
// and costs the application nothing extra.
func (c *CPU) Steal(d sim.Time) {
	if c.busy {
		c.stolen += d
	}
}
