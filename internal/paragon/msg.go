package paragon

import (
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// Target selects which processor on the destination node services a
// message.
type Target int

const (
	// ToCompute delivers to the compute processor: servicing requires a
	// receive interrupt that steals time from the application.
	ToCompute Target = iota
	// ToCoproc delivers to the communication co-processor's polling
	// dispatch loop: no interrupt, but serviced one at a time.
	ToCoproc
)

// Msg is an NX/2-style message. Kind is interpreted by the installed
// protocol handler; Body carries the protocol payload. Size is the payload
// wire size in bytes (header added by the network).
type Msg struct {
	Kind   int
	From   int
	Size   int
	Class  stats.Class
	Target Target
	Body   any
	// Reply, when non-nil, is where the handler sends its response. A
	// requester blocked on a Reply polls for the message, so delivery
	// needs no receive interrupt.
	Reply *Reply
}

// Reply is a one-shot response port for request/response exchanges.
type Reply struct {
	ch *sim.Chan[Msg]
	// owner is the node whose proc waits on this port, or -1 when unknown.
	// Call records it so the fault layer can address the reply wire: the
	// request's From field is overwritten at every forwarding hop and may
	// no longer name the original requester.
	owner int
}

// NewReply returns a fresh response port.
func NewReply() *Reply {
	return &Reply{ch: sim.NewChan[Msg]("reply"), owner: -1}
}

// dest resolves the node the response travels to, falling back to the
// request's From field when the owner was never recorded.
func (r *Reply) dest(from int) int {
	if r.owner >= 0 {
		return r.owner
	}
	return from
}

// Owner returns the node whose proc waits on this port, or -1 when it
// was never recorded. Recovery code uses it to re-address parked
// requests after a home migrates.
func (r *Reply) Owner() int { return r.owner }

// Wait blocks p until the response arrives.
func (r *Reply) Wait(p *sim.Proc) Msg { return r.ch.Recv(p) }
