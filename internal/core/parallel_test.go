package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

// runJSON executes app under opts and returns the full WriteJSON stats
// plus the gathered data image, the two surfaces the determinism matrix
// compares byte-for-byte.
func runJSON(t *testing.T, opts core.Options, app core.App) (string, []float64) {
	t.Helper()
	res, err := core.Run(opts, app, false)
	if err != nil {
		t.Fatalf("run %s/%s workers=%d: %v", app.Name(), opts.Protocol, opts.RunWorkers, err)
	}
	var buf bytes.Buffer
	if err := res.Stats.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.String(), res.Data
}

func matrixOpts(proto core.Protocol, procs int, profile string, workers int) core.Options {
	opts := core.Options{Protocol: proto, NumProcs: procs, RunWorkers: workers}
	opts.Defaults()
	if profile != "none" {
		plan, err := fault.Profile(profile, 1)
		if err != nil {
			panic(err)
		}
		opts.Fault = plan
	}
	if crashProfile(profile) {
		opts.Recovery = core.Recovery{Replicas: 1}
	}
	return opts
}

// protoFor filters the matrix: the crash profiles need the home-based
// recovery machinery, which only the HLRC family implements.
func crashCompatible(proto core.Protocol) bool {
	return proto == core.ProtoHLRC || proto == core.ProtoOHLRC
}

// crashProfile reports whether the fault profile schedules node crashes
// (and so needs Recovery replicas): "crash" kills an ordinary node,
// "crash-mgr" kills the barrier-manager node and then a lock manager.
func crashProfile(profile string) bool {
	return profile == "crash" || profile == "crash-mgr"
}

// TestDeterminismMatrix is the bitwise-determinism matrix of the parallel
// kernel: SOR and LU under all four protocols x fault profiles x
// run-workers in {1, 2, 8}, asserting byte-identical WriteJSON output
// and result images. Fault profiles exercise the sequential-fallback
// path, where identity across worker counts must hold trivially.
func TestDeterminismMatrix(t *testing.T) {
	profiles := []string{"none", "lossy", "hostile", "crash", "crash-mgr"}
	mkApps := map[string]func() core.App{
		"sor": func() core.App { return &apps.SOR{H: 48, W: 16, Iters: 2} },
		"lu":  func() core.App { return &apps.LU{N: 64, B: 8} },
	}
	for _, proto := range core.Protocols {
		for _, profile := range profiles {
			if crashProfile(profile) && !crashCompatible(proto) {
				continue
			}
			for name, mk := range mkApps {
				t.Run(fmt.Sprintf("%s/%s/%s", name, proto, profile), func(t *testing.T) {
					t.Parallel()
					refJSON, refData := runJSON(t, matrixOpts(proto, 4, profile, 1), mk())
					for _, w := range []int{2, 8} {
						gotJSON, gotData := runJSON(t, matrixOpts(proto, 4, profile, w), mk())
						if gotJSON != refJSON {
							t.Fatalf("workers=%d stats diverge from workers=1:\n--- w=1 ---\n%s\n--- w=%d ---\n%s",
								w, refJSON, w, gotJSON)
						}
						if len(gotData) != len(refData) {
							t.Fatalf("workers=%d data length %d != %d", w, len(gotData), len(refData))
						}
						for i := range gotData {
							if gotData[i] != refData[i] {
								t.Fatalf("workers=%d data[%d] = %v != %v", w, i, gotData[i], refData[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestDeterminismMatrixServe covers the open-loop serving workload: the
// same byte-identity bar across protocols, fault profiles, and worker
// counts, on the serve stats report.
func TestDeterminismMatrixServe(t *testing.T) {
	profiles := []string{"none", "lossy", "hostile", "crash", "crash-mgr"}
	for _, proto := range core.Protocols {
		for _, profile := range profiles {
			if crashProfile(profile) && !crashCompatible(proto) {
				continue
			}
			proto, profile := proto, profile
			t.Run(fmt.Sprintf("serve/%s/%s", proto, profile), func(t *testing.T) {
				t.Parallel()
				run := func(workers int) string {
					opts := matrixOpts(proto, 4, profile, workers)
					kv, err := serve.New(serve.Config{
						Keys: 64, OfferedLoad: 2000, Window: 30 * sim.Millisecond, Seed: 7,
					}, 4)
					if err != nil {
						t.Fatalf("serve.New: %v", err)
					}
					res, err := serve.Run(opts, kv)
					if err != nil {
						t.Fatalf("serve workers=%d: %v", workers, err)
					}
					var buf bytes.Buffer
					if err := res.Stats.WriteJSON(&buf); err != nil {
						t.Fatalf("WriteJSON: %v", err)
					}
					return buf.String()
				}
				ref := run(1)
				for _, w := range []int{2, 8} {
					if got := run(w); got != ref {
						t.Fatalf("serve workers=%d diverges:\n--- w=1 ---\n%s\n--- w=%d ---\n%s", w, ref, w, got)
					}
				}
			})
		}
	}
}

// TestDeterminismMatrixFastpath holds the serving fast path to the same
// bar: seqlock lock-free reads, striped locks, batching, and prefetch
// pipelining are all simulated application behavior, so their stats
// must stay byte-identical across run-worker counts under every
// protocol and fault profile.
func TestDeterminismMatrixFastpath(t *testing.T) {
	profiles := []string{"none", "lossy", "crash", "crash-mgr"}
	for _, mode := range []string{serve.ModeSeqlock, serve.ModeAll} {
		for _, proto := range core.Protocols {
			for _, profile := range profiles {
				if crashProfile(profile) && !crashCompatible(proto) {
					continue
				}
				mode, proto, profile := mode, proto, profile
				t.Run(fmt.Sprintf("%s/%s/%s", mode, proto, profile), func(t *testing.T) {
					t.Parallel()
					run := func(workers int) string {
						opts := matrixOpts(proto, 4, profile, workers)
						cfg := serve.Config{
							Keys: 64, OfferedLoad: 4000, Window: 30 * sim.Millisecond,
							ZipfTheta: 0.9, Seed: 7,
						}
						if err := serve.ApplyFastpath(&cfg, mode); err != nil {
							t.Fatal(err)
						}
						kv, err := serve.New(cfg, 4)
						if err != nil {
							t.Fatalf("serve.New: %v", err)
						}
						res, err := serve.Run(opts, kv)
						if err != nil {
							t.Fatalf("fastpath %s workers=%d: %v", mode, workers, err)
						}
						var buf bytes.Buffer
						if err := res.Stats.WriteJSON(&buf); err != nil {
							t.Fatalf("WriteJSON: %v", err)
						}
						return buf.String()
					}
					ref := run(1)
					if got := run(8); got != ref {
						t.Fatalf("fastpath %s workers=8 diverges:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", mode, ref, got)
					}
				})
			}
		}
	}
}
