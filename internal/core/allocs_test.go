package core

import (
	"testing"

	"gosvm/internal/mem"
)

// oneWriterApp stores into a single page from node 0 each episode, then
// everyone barriers. The active writer set is fixed, so per-sync-op
// protocol work must not grow with machine size.
func oneWriterApp(episodes int) *testApp {
	var addr mem.Addr
	return &testApp{
		name:  "onewriter",
		setup: func(s *Setup) { addr = s.Alloc(1) },
		init: func(w *Init) {
			w.Store(addr, 0)
			w.SetHome(addr, 1, 0)
		},
		worker: func(c *Ctx, id int) {
			for e := 0; e < episodes; e++ {
				if id == 0 {
					c.Store(addr, float64(e+1))
				}
				c.Barrier(e)
			}
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
}

// TestSyncOpAllocsFlatInNodeCount guards the scaling contract: the host
// allocation COUNT per (node x barrier episode) stays constant as the
// machine grows. Sparse vector clocks, the tree barrier, and lazily
// materialized per-node state keep it O(1); a regression to dense
// per-node vectors or eager state shows up as per-op allocations
// scaling with the node count. (Allocation sizes may still grow — one
// dense clock buffer is one allocation at any machine size.)
func TestSyncOpAllocsFlatInNodeCount(t *testing.T) {
	const episodes = 30
	for _, proto := range []Protocol{ProtoHLRC, ProtoLRC} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			perOp := func(p int) float64 {
				total := testing.AllocsPerRun(2, func() {
					if _, err := Run(testOpts(proto, p), oneWriterApp(episodes), false); err != nil {
						t.Fatal(err)
					}
				})
				return total / float64(p*episodes)
			}
			// 8 nodes takes the centralized barrier, 96 the tree (auto
			// crossover at 64), so both implementations are under guard.
			small := perOp(8)
			large := perOp(96)
			if large > 1.6*small+2 {
				t.Errorf("allocs per sync op grew with machine size: %.1f at p=8, %.1f at p=96", small, large)
			}
		})
	}
}
