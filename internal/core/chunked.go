package core

// pageChunk is the allocation granule of per-page protocol state, in
// pages. Mirrors mem.TableChunk's role for the page table.
const pageChunk = 128

// chunked is a lazily-materialized fixed-size array of per-page protocol
// state. Nodes touch only a sliver of the address space at scale, so
// state is allocated a chunk at a time on first touch; untouched entries
// read as zero values through each(), and at() returns pointers that stay
// stable for the container's lifetime.
type chunked[T any] struct {
	n      int
	chunks [][]T
}

func newChunked[T any](n int) chunked[T] {
	return chunked[T]{n: n, chunks: make([][]T, (n+pageChunk-1)/pageChunk)}
}

// at returns a stable pointer to element pg, materializing its chunk.
func (c *chunked[T]) at(pg int) *T {
	ch := c.chunks[pg/pageChunk]
	if ch == nil {
		ch = make([]T, pageChunk)
		c.chunks[pg/pageChunk] = ch
	}
	return &ch[pg%pageChunk]
}

// each visits every element of every materialized chunk in index order,
// skipping untouched chunks (whose elements are zero values).
func (c *chunked[T]) each(fn func(pg int, t *T)) {
	for ci, ch := range c.chunks {
		if ch == nil {
			continue
		}
		base := ci * pageChunk
		for i := range ch {
			if pg := base + i; pg < c.n {
				fn(pg, &ch[i])
			}
		}
	}
}

// len returns the logical (address-space) length.
func (c *chunked[T]) len() int { return c.n }
