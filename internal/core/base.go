package core

import (
	"fmt"
	"sort"

	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/trace"
	"gosvm/internal/vc"
)

// coherence is the protocol-specific half of an engine, used by the shared
// synchronization machinery in base.
type coherence interface {
	// closeCost returns the compute cost of ending the current interval
	// (diff creation or co-processor posting, page reprotection).
	closeCost() sim.Time
	// closeCommit ends the current interval: records the interval, emits
	// write notices, and performs update propagation. It must be called
	// exactly once per closeCost, after the cost has been charged.
	closeCommit()
	// noticePage integrates one incoming write notice: invalidate local
	// copies and record protocol-specific per-page state. Returns the
	// invalidation cost to charge.
	noticePage(rec *IntervalRec, page int) sim.Time
	// onBarrierRelease runs protocol-specific end-of-barrier work on the
	// application proc (GC for the homeless protocols, log pruning for
	// the home-based ones).
	onBarrierRelease(g *grantInfo)
	// protoMem returns current protocol metadata bytes (GC trigger).
	protoMem() int64
}

// base carries the state and synchronization algorithms shared by all
// protocol engines: the vector clock, the interval log, distributed lock
// management, and the centralized barrier.
type base struct {
	sys  *System
	node *paragon.Node
	self int
	co   coherence

	clock vc.VC
	pt    *mem.Table

	// dirty is the ordered set of pages written in the open interval.
	dirty []int32

	// log holds known interval records per processor, ascending by
	// interval index. Homeless protocols prune it at GC; home-based ones
	// at every barrier.
	log [][]*IntervalRec

	locks map[int]*lockState
	// lockOwner is the manager-side table: for locks managed by this
	// node, the last known owner.
	lockOwner map[int]int

	// lastReported is the highest own interval index sent to the barrier
	// manager.
	lastReported int32

	bmgr *barrierMgr // non-nil on the barrier manager node

	// mshadow is the backup-side copy of manager state mirrored to this
	// node by the managers it backs (kMgrMirror, mgr.go). Zero unless
	// Recovery.Replicas > 0.
	mshadow mgrShadow

	// synthClosed is set when lock reclamation closed this crashed
	// node's open interval on paper (synthCloseOpen); the restart makes
	// the close real so parked fetches waiting on its writes can drain.
	synthClosed bool

	// tree is non-nil when the machine uses the k-ary tree barrier
	// (treebarrier.go). The centralized manager above still exists on
	// node 0 for the GC rendezvous.
	tree *treeBarrier

	// memPool recycles page/diff buffers for this node only; see init.
	memPool *mem.Pool
}

type lockState struct {
	owner  bool          // this node holds the lock token
	held   bool          // the application is inside the critical section
	wanted bool          // this node's own remote acquire is in flight
	queue  []paragon.Msg // forwarded acquire requests awaiting our release
}

func (b *base) init(sys *System, self int, co coherence) {
	b.sys = sys
	b.node = sys.M.Nodes[self]
	b.self = self
	b.co = co
	b.clock = vc.New(sys.Opts.NumProcs)
	b.pt = sys.Tables[self]
	b.log = make([][]*IntervalRec, sys.Opts.NumProcs)
	b.locks = make(map[int]*lockState)
	b.lockOwner = make(map[int]int)
	if self == barrierManager {
		b.bmgr = newBarrierMgr(sys.Opts.NumProcs)
	}
	if sys.Opts.Machine.TreeBarrier() {
		b.tree = newTreeBarrier(self, sys.Opts.Machine.BarrierRadix, sys.Opts.NumProcs)
	}
	// Buffer recycling is per node so concurrent lanes never share a free
	// list. Pool contents are never observable (every consumer overwrites
	// the full buffer), so sharding changes no simulated outcome.
	b.memPool = mem.NewPool(sys.Space.PageWords)
}

func (b *base) costs() *paragon.Costs { return &b.sys.Opts.Costs }

// vecBytes is the protocol-memory charge for one per-page vector. The
// accounting models the dense reservation (as the paper's prototypes
// allocate) regardless of the host representation, so memory-triggered GC
// behaves identically under vc.ForceDense.
func (b *base) vecBytes() int64 { return int64(4 * b.sys.Opts.NumProcs) }
func (b *base) pool() *mem.Pool { return b.memPool }
func (b *base) st() *stats.Node { return b.node.Stats }
func (b *base) app() *sim.Proc  { return b.sys.appProcs[b.self] }

// use charges d of compute time on the application proc.
func (b *base) use(d sim.Time, cat stats.Category) {
	if d > 0 {
		b.node.CPU.Use(b.app(), d, cat)
	}
}

// emit records a protocol trace event (no-op unless tracing is enabled).
// The guard comes first so a parallel run never touches lane 0's clock
// from another lane (tracing itself forces the sequential kernel).
func (b *base) emit(k trace.Kind, page, peer int, arg int64) {
	if b.sys.traceLog == nil {
		return
	}
	b.sys.traceLog.Emit(trace.Event{
		T: b.sys.K.Now(), Node: b.self, Kind: k, Page: page, Peer: peer, Arg: arg,
	})
}

// ---------------------------------------------------------------------------
// Interval management

// markDirty records the first write to page in the open interval.
func (b *base) markDirty(page int) { b.dirty = append(b.dirty, int32(page)) }

// closeIntervalOnApp ends the open interval from application-proc context
// (remote acquire or barrier entry), charging its cost.
func (b *base) closeIntervalOnApp() {
	if len(b.dirty) == 0 {
		return
	}
	b.use(b.co.closeCost(), stats.CatProtocol)
	b.co.closeCommit()
}

// newIntervalRec assigns the next own interval index, advancing the clock,
// and stores the record in the log. Called by closeCommit implementations.
func (b *base) newIntervalRec() *IntervalRec {
	b.clock[b.self]++
	rec := &IntervalRec{
		Proc:     b.self,
		Interval: b.clock[b.self],
		VC:       vc.SparseFrom(b.clock),
		Pages:    b.dirty,
	}
	b.dirty = nil
	b.insertLog(rec)
	return rec
}

// synthCloseOpen closes this node's open interval on paper only: the
// record enters the log and the clock advances, so reclamation can hand
// a revoked token's next holder the write notices it depends on. The
// data itself stays private — the dirty list and twins are kept intact,
// and the restart turns the close into a real one (rejoin, recover.go),
// flushing diffs whose interval index is at least this record's, which
// is what the homes' flush vectors park dependent fetches on.
func (b *base) synthCloseOpen() {
	if len(b.dirty) == 0 {
		return
	}
	saved := b.dirty
	b.newIntervalRec()
	b.dirty = saved
	b.synthClosed = true
}

// insertLog stores rec in the interval log with memory accounting.
func (b *base) insertLog(rec *IntervalRec) {
	b.log[rec.Proc] = append(b.log[rec.Proc], rec)
	b.st().MemAlloc(rec.memSize())
}

// pruneLogThrough drops all log records with interval index <= upTo[proc],
// releasing their memory. Home-based protocols call this after barriers;
// homeless ones at GC.
func (b *base) pruneLogThrough(upTo vc.VC) {
	for p := range b.log {
		recs := b.log[p]
		cut := sort.Search(len(recs), func(i int) bool { return recs[i].Interval > upTo[p] })
		for _, r := range recs[:cut] {
			b.st().MemFree(r.memSize())
		}
		b.log[p] = append([]*IntervalRec(nil), recs[cut:]...)
	}
}

// logSince collects the interval records the holder of knowledge `have`
// is missing, in log order.
func (b *base) logSince(have vc.VC) []IntervalRec {
	var out []IntervalRec
	for p := range b.log {
		recs := b.log[p]
		from := sort.Search(len(recs), func(i int) bool { return recs[i].Interval > have[p] })
		for _, r := range recs[from:] {
			out = append(out, *r)
		}
	}
	return out
}

// ownRecsAfter returns this node's own interval records with index > after.
func (b *base) ownRecsAfter(after int32) []IntervalRec {
	recs := b.log[b.self]
	from := sort.Search(len(recs), func(i int) bool { return recs[i].Interval > after })
	out := make([]IntervalRec, 0, len(recs)-from)
	for _, r := range recs[from:] {
		out = append(out, *r)
	}
	return out
}

// grantPayload builds the coherence payload for a grant to a requester
// whose clock is reqVC.
func (b *base) grantPayload(reqVC vc.VC) grantInfo {
	g := grantInfo{VC: b.clock.Copy(), Intervals: b.logSince(reqVC)}
	if !b.sys.homeBased {
		return g
	}
	// Home-based protocols do not ship vector timestamps with write
	// notices (a per-page per-writer max interval suffices); strip them
	// to model the smaller wire format.
	for i := range g.Intervals {
		g.Intervals[i].VC = nil
	}
	return g
}

// applyGrant merges a grant/release payload on the application proc:
// store new interval records, deliver write notices (invalidations), and
// advance the clock.
func (b *base) applyGrant(g grantInfo) {
	var cost sim.Time
	for i := range g.Intervals {
		rec := g.Intervals[i]
		if rec.Interval <= b.clock[rec.Proc] {
			continue // already known via another path
		}
		r := &rec
		b.insertLog(r)
		b.clock[rec.Proc] = rec.Interval
		for _, pg := range rec.Pages {
			cost += b.co.noticePage(r, int(pg))
		}
	}
	b.clock.MaxWith(g.VC)
	b.use(cost, stats.CatProtocol)
}

// ---------------------------------------------------------------------------
// Locks

// lockMgrNode is the node currently serving lock-manager duty for lock:
// the natural manager (lock % NumProcs) unless a crash promoted one of
// its backups (see mgr.go).
func (b *base) lockMgrNode(lock int) int { return b.sys.lockMgrOf(lock) }

// syncTarget is where synchronization messages (lock, barrier, GC
// rendezvous) are serviced: the compute processor in the paper's four
// protocols, or the co-processor under the OverlapLocks extension.
func (b *base) syncTarget() paragon.Target {
	if b.sys.Opts.OverlapLocks && b.sys.Opts.Overlapped() {
		return paragon.ToCoproc
	}
	return paragon.ToCompute
}

func (b *base) lockState(lock int) *lockState {
	ls, ok := b.locks[lock]
	if !ok {
		// The manager starts out owning every lock it manages.
		ls = &lockState{owner: b.lockMgrNode(lock) == b.self}
		b.locks[lock] = ls
	}
	return ls
}

// Acquire implements LOCK. Local re-acquires are free; remote acquires end
// the current interval, chase the token through the manager, and merge the
// coherence payload carried by the grant.
func (b *base) Acquire(lock int) {
	ls := b.lockState(lock)
	if ls.held {
		panic(fmt.Sprintf("core: node %d re-entering lock %d", b.self, lock))
	}
	if ls.owner {
		ls.held = true
		return
	}
	// Remote acquire: an interval boundary.
	b.closeIntervalOnApp()
	b.st().Counts.LockAcquires++
	b.emit(trace.LockAcquire, -1, -1, int64(lock))
	req := paragon.Msg{
		Kind:   kLockAcq,
		Size:   8 + b.clock.WireSize(),
		Class:  stats.ClassProtocol,
		Target: b.syncTarget(),
		Body:   &lockReq{Lock: lock, Requester: b.self, ReqVC: b.clock.Copy()},
	}
	var resp paragon.Msg
	ls.wanted = true
	mgr := b.lockMgrNode(lock)
	if mgr == b.self {
		// We are the manager: forward straight to the owner.
		b.use(b.costs().LockHandling, stats.CatProtocol)
		owner := b.mgrOwner(lock)
		b.mgrSetOwner(lock, b.self)
		req.Kind = kLockFwd
		if owner != b.self {
			b.st().Counts.LockForwards++
		}
		t0 := b.app().Now()
		resp = b.node.Call(b.app(), owner, req)
		b.st().Add(stats.CatLock, b.app().Now()-t0)
	} else {
		t0 := b.app().Now()
		resp = b.node.Call(b.app(), mgr, req)
		b.st().Add(stats.CatLock, b.app().Now()-t0)
	}
	g := resp.Body.(*grantInfo)
	b.emit(trace.LockGrant, -1, resp.From, int64(lock))
	b.applyGrant(*g)
	ls.owner = true
	ls.held = true
	ls.wanted = false
}

// Release implements UNLOCK. If remote requests are queued, the release is
// an interval boundary and the token moves to the head of the queue.
func (b *base) Release(lock int) {
	ls := b.lockState(lock)
	if !ls.held {
		panic(fmt.Sprintf("core: node %d releasing lock %d it does not hold", b.self, lock))
	}
	ls.held = false
	if len(ls.queue) == 0 {
		return // keep the token cached
	}
	b.closeIntervalOnApp()
	b.use(b.costs().LockHandling, stats.CatProtocol)
	head := ls.queue[0]
	rest := ls.queue[1:]
	ls.queue = nil
	ls.owner = false
	lr := head.Body.(*lockReq)
	b.grantTo(head, lr)
	// Any remaining queued requests chase the new owner.
	b.st().Counts.LockForwards += int64(len(rest))
	for _, m := range rest {
		b.node.Send(lr.Requester, m)
	}
}

// grantTo sends the lock token plus coherence payload to the requester.
func (b *base) grantTo(req paragon.Msg, lr *lockReq) {
	g := b.grantPayload(lr.ReqVC)
	b.node.Respond(req, paragon.Msg{
		Kind:  kLockFwd,
		Size:  g.wireSize(),
		Class: stats.ClassProtocol,
		Body:  &g,
	})
}

type lockReq struct {
	Lock      int
	Requester int
	ReqVC     vc.VC

	// Chase marks a request whose forward died with a crashed owner
	// after the token was reclaimed: it must reconnect straight to the
	// reclaimed token at the manager, without re-entering the
	// genealogical chain (the owner table's tail already records it).
	Chase bool
}

func (b *base) mgrOwner(lock int) int {
	if o, ok := b.lockOwner[lock]; ok {
		return o
	}
	// An untouched lock's token rides with the manager role, so a
	// promoted manager owns the unmaterialized locks it adopted.
	return b.sys.lockMgrOf(lock)
}

func (b *base) mgrSetOwner(lock, owner int) {
	b.lockOwner[lock] = owner
	b.mirrorLockOwner(lock, owner)
}

// handleLockAcq services a kLockAcq at the manager (dispatcher context).
func (b *base) handleLockAcq(m paragon.Msg) (sim.Time, func()) {
	return b.costs().LockHandling, func() {
		lr := m.Body.(*lockReq)
		if mgr := b.sys.lockMgrOf(lr.Lock); mgr != b.self {
			// Stale delivery: the manager role moved to a backup while
			// this request was in flight or frozen on the crashed
			// manager. Forward to the current manager.
			b.st().Counts.LockForwards++
			b.node.Send(mgr, m)
			return
		}
		if lr.Chase {
			// The requester's forward was severed by a crash and the
			// token was reclaimed here. Hand it the token (or queue for
			// our release) without touching the owner table: the tail
			// still correctly records the youngest requester.
			b.ownerReceives(m, lr)
			return
		}
		owner := b.mgrOwner(lr.Lock)
		b.mgrSetOwner(lr.Lock, lr.Requester)
		m.Kind = kLockFwd // from here on the message is a forwarded request
		if owner == b.self {
			// Manager owns the token: behave as the owner.
			b.ownerReceives(m, lr)
			return
		}
		b.st().Counts.LockForwards++
		b.node.Send(owner, m)
	}
}

// handleLockFwd services a forwarded acquire at the (supposed) owner.
// The grant/queue decision is made in the effect: between the message's
// arrival and the end of its service time the application may locally
// re-acquire the lock, and granting anyway would break mutual exclusion.
func (b *base) handleLockFwd(m paragon.Msg) (sim.Time, func()) {
	lr := m.Body.(*lockReq)
	ls := b.lockState(lr.Lock)
	work := b.costs().LockHandling
	if ls.owner && !ls.held && len(b.dirty) > 0 {
		// Likely a free grant with an interval to close; charge for it.
		work += b.co.closeCost()
	}
	return work, func() {
		ls := b.lockState(lr.Lock)
		if !ls.owner || ls.held {
			if !ls.owner && !ls.held && !ls.wanted {
				// Neither owning, holding, nor acquiring: the token was
				// revoked from this node by crash reclamation while this
				// forward was frozen in flight. Re-route to the current
				// manager as a chase, which reconnects the requester to
				// the reclaimed token.
				b.st().Counts.LockForwards++
				m.Kind = kLockAcq
				lr.Chase = true
				b.node.Send(b.sys.lockMgrOf(lr.Lock), m)
				return
			}
			// Busy, or ownership still in flight: queue for our release.
			ls.queue = append(ls.queue, m)
			return
		}
		// Free: receiving a remote lock request ends the current interval.
		b.co.closeCommit()
		ls.owner = false
		b.grantTo(m, lr)
	}
}

// ownerReceives handles an acquire landing on the manager when its table
// says the manager is the owner, from dispatcher effect context. The
// token may nonetheless be in flight towards us (our own acquire), so the
// ls.owner check is essential.
func (b *base) ownerReceives(m paragon.Msg, lr *lockReq) {
	ls := b.lockState(lr.Lock)
	if ls.held || !ls.owner {
		ls.queue = append(ls.queue, m)
		return
	}
	if len(b.dirty) > 0 {
		// Interval boundary in handler context: the closing cost was not
		// part of this handler's declared work; steal it explicitly so
		// the compute processor pays for it.
		b.node.CPU.Steal(b.co.closeCost())
		b.co.closeCommit()
	}
	ls.owner = false
	b.grantTo(m, lr)
}

// ---------------------------------------------------------------------------
// Barriers

// barrierManager is the node that initially runs the centralized barrier
// algorithm. Under crash recovery the role can move to a backup; route
// through System.bmgrNode, not this constant.
const barrierManager = 0

// bmgrArrival pairs one registered barrier arrival with the request that
// delivered it. req is the zero Msg for the manager's own local arrival
// (and for arrivals adopted from a crashed manager whose own app proc is
// parked at the barrier).
type bmgrArrival struct {
	rep *barrierReport
	req paragon.Msg
}

type barrierMgr struct {
	nproc    int
	arrivals []bmgrArrival // registered arrivals, in genealogical order
	episodes int

	// localWait/localRelease hand the manager's own release from
	// dispatcher context back to its parked application proc.
	localWait    *sim.Proc
	localRelease *grantInfo

	// GC rendezvous state (homeless protocols).
	gcDone    int
	gcWaiters []paragon.Msg
}

func newBarrierMgr(nproc int) *barrierMgr {
	return &barrierMgr{nproc: nproc}
}

type barrierReport struct {
	Node     int
	VC       vc.VC
	Recs     []IntervalRec
	ProtoMem int64
}

// Barrier implements BARRIER. Every node ends its interval, reports its
// new own intervals to the manager, and blocks until the manager
// redistributes the merged knowledge.
func (b *base) Barrier(id int) {
	b.closeIntervalOnApp()
	b.st().Counts.Barriers++
	b.emit(trace.BarrierEnter, -1, -1, int64(id))
	rep := &barrierReport{
		Node:     b.self,
		VC:       b.clock.Copy(),
		Recs:     b.ownRecsAfter(b.lastReported),
		ProtoMem: b.co.protoMem(),
	}
	if b.sys.homeBased {
		// Home-based write notices carry no vector timestamps.
		for i := range rep.Recs {
			rep.Recs[i].VC = nil
		}
	}
	if len(b.log[b.self]) > 0 {
		b.lastReported = b.log[b.self][len(b.log[b.self])-1].Interval
	}
	var g *grantInfo
	t0 := b.app().Now()
	if b.tree != nil {
		g = b.treeArrive(id, rep)
	} else if b.self == b.sys.bmgrNode() {
		release := b.bmgrArrive(rep, paragon.Msg{})
		if release == nil {
			// Wait for the stragglers; the dispatcher completes the
			// barrier and unparks us via the manager's local release slot.
			b.bmgr.localWait = b.app()
			b.app().ParkArg("barrier", int64(id))
			release = b.bmgr.localRelease
			b.bmgr.localRelease = nil
		}
		g = release
	} else {
		resp := b.node.Call(b.app(), b.sys.bmgrNode(), paragon.Msg{
			Kind:   kBarrier,
			Size:   8 + rep.VC.WireSize() + recsWireSize(rep.Recs),
			Class:  stats.ClassProtocol,
			Target: b.syncTarget(),
			Body:   rep,
		})
		g = resp.Body.(*grantInfo)
	}
	b.st().Add(stats.CatBarrier, b.app().Now()-t0)
	b.emit(trace.BarrierExit, -1, -1, int64(id))
	b.applyGrant(*g)
	b.co.onBarrierRelease(g)
}

// bmgrArrive registers an arrival at the barrier manager. For the
// manager's local arrival req is the zero Msg. It returns the release
// payload immediately if this arrival completes the barrier and the caller
// is the local node; remote completions are sent from dispatcher context.
func (b *base) bmgrArrive(rep *barrierReport, req paragon.Msg) *grantInfo {
	mgr := b.bmgr
	for _, a := range mgr.arrivals {
		if a.rep.Node == rep.Node {
			// Duplicate delivery: the arrival was already adopted from a
			// crashed manager and the in-flight copy caught up. Drop it;
			// the registered arrival holds a live reply path.
			return nil
		}
	}
	mgr.arrivals = append(mgr.arrivals, bmgrArrival{rep: rep, req: req})
	// Keep the backups' shadow in step before any release can be sent.
	b.mirrorBarrierArrival(rep)
	if len(mgr.arrivals) < mgr.nproc {
		return nil
	}
	return b.bmgrComplete()
}

// bmgrComplete merges all reports and releases every waiter. Returns the
// local node's release payload.
func (b *base) bmgrComplete() *grantInfo {
	mgr := b.bmgr
	// Merge every reported interval into the manager's log. Reports carry
	// each node's *own* intervals, so together they cover everything.
	for _, a := range mgr.arrivals {
		for i := range a.rep.Recs {
			rec := a.rep.Recs[i]
			if !b.hasLogRec(rec.Proc, rec.Interval) {
				r := rec
				b.insertLog(&r)
			}
		}
	}
	merged := b.clock.Copy()
	for _, a := range mgr.arrivals {
		merged.MaxWith(a.rep.VC)
	}
	for p := range b.log {
		if n := len(b.log[p]); n > 0 && b.log[p][n-1].Interval > merged[p] {
			merged[p] = b.log[p][n-1].Interval
		}
	}
	var gc bool
	if b.sys.gcDecider != nil {
		reports := make([]*barrierReport, len(mgr.arrivals))
		for i, a := range mgr.arrivals {
			reports[i] = a.rep
		}
		gc = b.sys.gcDecider(reports)
	}
	var local *grantInfo
	for _, a := range mgr.arrivals {
		g := grantInfo{VC: merged.Copy(), GC: gc, Intervals: b.releaseRecsFor(a.rep)}
		if a.req.Reply != nil {
			b.node.Respond(a.req, paragon.Msg{
				Kind:  kBarrier,
				Size:  g.wireSize(),
				Class: stats.ClassProtocol,
				Body:  &g,
			})
			continue
		}
		if a.rep.Node == b.self {
			local = &g
			continue
		}
		// An arrival adopted from a crashed manager: its node's app proc
		// is parked locally at the barrier over there. Hand the release
		// to that engine and wake it (or let rejoin deliver it).
		b.deliverAdoptedRelease(a.rep.Node, &g)
	}
	mgr.arrivals = nil
	mgr.episodes++
	b.mirrorBarrierReset()
	if b.sys.onBarrier != nil {
		b.sys.onBarrier(mgr.episodes)
	}
	return local
}

// releaseRecsFor selects the interval records node rep is missing.
func (b *base) releaseRecsFor(rep *barrierReport) []IntervalRec {
	var out []IntervalRec
	for p := range b.log {
		if p == rep.Node {
			continue
		}
		recs := b.log[p]
		from := sort.Search(len(recs), func(i int) bool { return recs[i].Interval > rep.VC[p] })
		for _, r := range recs[from:] {
			out = append(out, *r)
		}
	}
	if b.sys.homeBased {
		for i := range out {
			out[i].VC = nil
		}
	}
	return out
}

func (b *base) hasLogRec(proc int, interval int32) bool {
	recs := b.log[proc]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Interval >= interval })
	return i < len(recs) && recs[i].Interval == interval
}

// handleBarrier services a remote barrier arrival at the manager.
func (b *base) handleBarrier(m paragon.Msg) (sim.Time, func()) {
	return b.costs().LockHandling, func() {
		if mgr := b.sys.bmgrNode(); mgr != b.self {
			// Stale delivery after a manager failover (the arrival was
			// frozen on this node's crashed dispatcher, or in flight when
			// the role moved). Forward; arrival registration dedups.
			b.node.Send(mgr, m)
			return
		}
		rep := m.Body.(*barrierReport)
		if g := b.bmgrArrive(rep, m); g != nil {
			// The remote arrival completed the barrier and the local
			// node's release is pending: hand it over and wake the app.
			b.bmgr.localRelease = g
			if b.bmgr.localWait != nil {
				w := b.bmgr.localWait
				b.bmgr.localWait = nil
				w.Unpark()
			}
		}
	}
}

// gcRendezvous blocks until every node has reported kGCDone to the
// manager (used by the homeless protocols after GC validation, so nobody
// discards diffs another node may still need).
func (b *base) gcRendezvous() {
	if b.self == b.sys.bmgrNode() {
		mgr := b.bmgr
		mgr.gcDone++
		b.mirrorGCDone()
		if b.gcMaybeComplete() {
			return
		}
		mgr.localWait = b.app()
		b.app().Park("gc rendezvous")
		return
	}
	b.node.Call(b.app(), b.sys.bmgrNode(), paragon.Msg{
		Kind:   kGCDone,
		Size:   8,
		Class:  stats.ClassProtocol,
		Target: b.syncTarget(),
		Body:   b.self,
	})
}

// gcMaybeComplete releases all GC waiters if every node has arrived.
func (b *base) gcMaybeComplete() bool {
	mgr := b.bmgr
	if mgr.gcDone < mgr.nproc {
		return false
	}
	for _, req := range mgr.gcWaiters {
		b.node.Respond(req, paragon.Msg{
			Kind: kGCDone, Size: 4, Class: stats.ClassProtocol,
		})
	}
	mgr.gcWaiters = nil
	mgr.gcDone = 0
	if mgr.localWait != nil {
		w := mgr.localWait
		mgr.localWait = nil
		w.Unpark()
	}
	return true
}

// handleGCDone counts GC completions at the manager.
func (b *base) handleGCDone(m paragon.Msg) (sim.Time, func()) {
	return 0, func() {
		b.bmgr.gcDone++
		b.mirrorGCDone()
		b.bmgr.gcWaiters = append(b.bmgr.gcWaiters, m)
		b.gcMaybeComplete()
	}
}
