package core

import (
	"errors"
	"testing"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// mgrStressApp exercises both synchronization-manager roles hard: 2p
// counters, each on its own page and protected by its own lock, so every
// node serves lock-manager duty for two locks, and a barrier closes
// every round. Worker id touches counter (id+r)%(2p) in round r, which
// rotates every worker over every lock (and thus over every manager).
func mgrStressApp(p, rounds int, step sim.Time) *testApp {
	var base mem.Addr
	const words = 64 // one 512-byte page per counter
	n := 2 * p
	return &testApp{
		name:  "mgrstress",
		setup: func(s *Setup) { base = s.Alloc(n * words) },
		init: func(w *Init) {
			for i := 0; i < n*words; i++ {
				w.Store(base+mem.Addr(i), 0)
			}
		},
		worker: func(c *Ctx, id int) {
			for r := 1; r <= rounds; r++ {
				c.Compute(step)
				j := (id + r) % n
				c.Lock(j)
				v := c.Load(base + mem.Addr(j*words))
				c.Compute(5 * sim.Microsecond)
				c.Store(base+mem.Addr(j*words), v+1)
				c.Unlock(j)
				c.Barrier(r)
			}
		},
		gather: func(c *Ctx) []float64 {
			out := make([]float64, n)
			for j := 0; j < n; j++ {
				out[j] = c.Load(base + mem.Addr(j*words))
			}
			return out
		},
	}
}

// TestMgrFailoverBitwise is the headline property: crash windows that
// take out a lock-manager node and the barrier-manager node (node 0),
// with one backup, must complete with results bitwise identical to the
// failure-free run, for both home-based protocols, and must actually
// move manager roles and mirror manager state.
func TestMgrFailoverBitwise(t *testing.T) {
	const p, rounds = 4, 100
	plan, err := fault.Profile(fault.ProfileCrashMgr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []Protocol{ProtoHLRC, ProtoOHLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			app := func() *testApp { return mgrStressApp(p, rounds, 400*sim.Microsecond) }
			base := runOrFail(t, testOpts(proto, p), app())

			opts := testOpts(proto, p)
			opts.Fault = plan
			opts.Recovery = Recovery{Replicas: 1}
			res := runOrFail(t, opts, app())

			if len(res.Data) != len(base.Data) {
				t.Fatalf("result length changed under manager failover: %d vs %d",
					len(res.Data), len(base.Data))
			}
			for i := range base.Data {
				if res.Data[i] != base.Data[i] {
					t.Fatalf("word %d = %v under manager crashes, want %v",
						i, res.Data[i], base.Data[i])
				}
			}
			var rehomedMgrs, mirror int64
			for _, nd := range res.Stats.Nodes {
				rehomedMgrs += nd.Counts.MgrsRehomed
				mirror += nd.MirrorBytes
			}
			if rehomedMgrs == 0 {
				t.Fatal("manager crashes recovered without re-homing any manager role")
			}
			if mirror == 0 {
				t.Fatal("replication enabled but no manager mirror traffic recorded")
			}
			if res.Stats.Elapsed <= base.Stats.Elapsed {
				t.Fatalf("crash run not slower than fault-free: %v vs %v",
					res.Stats.Elapsed, base.Stats.Elapsed)
			}
		})
	}
}

// A barrier-manager crash landing mid-episode — after some arrivals are
// registered, before the release — must be replayed on the promoted
// backup: the run completes with fault-free results.
func TestBarrierMgrCrashMidBarrier(t *testing.T) {
	const p, rounds = 4, 30
	for _, proto := range []Protocol{ProtoHLRC, ProtoOHLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			app := func() *testApp { return mgrStressApp(p, rounds, 300*sim.Microsecond) }
			base := runOrFail(t, testOpts(proto, p), app())

			opts := testOpts(proto, p)
			// Stagger the workers' compute so node 0 dies while its
			// barrier holds a strict subset of the arrivals.
			opts.Fault = fault.Plan{
				Seed:    1,
				RTO:     100 * sim.Microsecond,
				Crashes: []fault.Crash{{Node: 0, At: 2100 * sim.Microsecond, RestartAt: 9 * sim.Millisecond}},
			}
			opts.Recovery = Recovery{Replicas: 1}
			res := runOrFail(t, opts, app())

			for i := range base.Data {
				if res.Data[i] != base.Data[i] {
					t.Fatalf("word %d = %v under a mid-barrier manager crash, want %v",
						i, res.Data[i], base.Data[i])
				}
			}
			var rehomedMgrs int64
			for _, nd := range res.Stats.Nodes {
				rehomedMgrs += nd.Counts.MgrsRehomed
			}
			if rehomedMgrs == 0 {
				t.Fatal("barrier-manager crash recovered without moving the role")
			}
		})
	}
}

// A free lock token cached on the crashed node is reclaimed by the
// lock's manager at detection time: a waiting acquirer proceeds without
// sitting out the whole outage, and the reclamation is counted.
func TestDeadLockOwnerReclaim(t *testing.T) {
	var addr mem.Addr
	const lock = 2 // managed by node 0 (2 % 2)
	app := &testApp{
		name:  "deadowner",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 0) // keep the crashed node homeless
		},
		worker: func(c *Ctx, id int) {
			if id == 1 {
				// Acquire and release: the token stays cached here, and
				// the node then dies with it.
				c.Lock(lock)
				c.Store(addr, 1)
				c.Unlock(lock)
			} else {
				c.Compute(4 * sim.Millisecond) // let the crash land first
				c.Lock(lock)
				c.Store(addr+1, c.Load(addr)+1)
				c.Unlock(lock)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 {
			return []float64{c.Load(addr), c.Load(addr + 1)}
		},
	}
	opts := testOpts(ProtoHLRC, 2)
	const restart = 40 * sim.Millisecond
	opts.Fault = fault.Plan{
		Seed: 1,
		RTO:  100 * sim.Microsecond,
		// 2.5ms: after node 1's unlock, before node 0's acquire.
		Crashes: []fault.Crash{{Node: 1, At: 2500 * sim.Microsecond, RestartAt: restart}},
	}
	opts.Recovery = Recovery{Replicas: 1}
	res := runOrFail(t, opts, app)
	if res.Data[0] != 1 || res.Data[1] != 2 {
		t.Fatalf("results = %v, want [1 2]", res.Data)
	}
	var reclaimed int64
	for _, nd := range res.Stats.Nodes {
		reclaimed += nd.Counts.LocksReclaimed
	}
	if reclaimed == 0 {
		t.Fatal("dead owner's free token was not reclaimed")
	}
	// The final barrier still waits for the restarted node, but node 0's
	// acquire itself must not: its lock stall is bounded by detection,
	// far below the 39ms outage.
	if lockWait := res.Stats.Nodes[0].Time[stats.CatLock]; lockWait >= restart/2 {
		t.Fatalf("acquirer waited %v for a reclaimable token", lockWait)
	}
}

// Without backups, a permanent crash of a node whose lock-manager role
// is in use by others must fail fast with a structured error naming the
// node and the role — not an opaque hang.
func TestLockMgrCrashFailFastWithoutReplicas(t *testing.T) {
	var addr mem.Addr
	const lock = 1 // managed by node 1 (1 % 2)
	app := &testApp{
		name:  "deadlockmgr",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 0) // node 1 homes nothing: the lock role is the casualty
		},
		worker: func(c *Ctx, id int) {
			for r := 0; r < 12; r++ {
				c.Compute(300 * sim.Microsecond)
				c.Lock(lock)
				c.Store(addr, c.Load(addr)+1)
				c.Unlock(lock)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed:    1,
		RTO:     100 * sim.Microsecond,
		Crashes: []fault.Crash{{Node: 1, At: sim.Millisecond}}, // permanent
	}
	_, err := Run(opts, app, false)
	var nde *fault.NodeDeadError
	if !errors.As(err, &nde) {
		t.Fatalf("error is not a NodeDeadError: %v", err)
	}
	if nde.Node != 1 || nde.Role != "lock manager" {
		t.Fatalf("NodeDeadError blames node %d role %q, want node 1 role \"lock manager\"", nde.Node, nde.Role)
	}
	if nde.Restarts {
		t.Fatal("permanent crash reported as restarting")
	}
}

// The same fail-fast contract for the barrier manager: a permanent
// crash of node 0 with no backups names the barrier-manager role.
func TestBarrierMgrCrashFailFastWithoutReplicas(t *testing.T) {
	var addr mem.Addr
	app := &testApp{
		name:  "deadbarriermgr",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 1) // node 0 homes nothing: the barrier role is the casualty
		},
		worker: func(c *Ctx, id int) {
			for r := 1; r <= 12; r++ {
				c.Compute(300 * sim.Microsecond)
				c.Store(addr+mem.Addr(id), float64(r))
				c.Barrier(r)
			}
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed:    1,
		RTO:     100 * sim.Microsecond,
		Crashes: []fault.Crash{{Node: 0, At: sim.Millisecond}}, // permanent
	}
	_, err := Run(opts, app, false)
	var nde *fault.NodeDeadError
	if !errors.As(err, &nde) {
		t.Fatalf("error is not a NodeDeadError: %v", err)
	}
	if nde.Node != 0 || nde.Role != "barrier manager" {
		t.Fatalf("NodeDeadError blames node %d role %q, want node 0 role \"barrier manager\"", nde.Node, nde.Role)
	}
}

// A node that dies permanently inside a critical section pins the token
// forever: the run must fail naming the lock owner, not hang.
func TestPermanentCrashInsideCriticalSection(t *testing.T) {
	var addr mem.Addr
	const lock = 2 // managed by node 0, held by node 1 at death
	app := &testApp{
		name:  "deadholder",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 0)
		},
		worker: func(c *Ctx, id int) {
			if id == 1 {
				c.Lock(lock)
				c.Compute(10 * sim.Millisecond) // dies in here
				c.Unlock(lock)
			} else {
				c.Compute(2 * sim.Millisecond)
				c.Lock(lock)
				c.Unlock(lock)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed:    1,
		RTO:     100 * sim.Microsecond,
		Crashes: []fault.Crash{{Node: 1, At: sim.Millisecond}}, // permanent
	}
	opts.Recovery = Recovery{Replicas: 1}
	_, err := Run(opts, app, false)
	var nde *fault.NodeDeadError
	if !errors.As(err, &nde) {
		t.Fatalf("error is not a NodeDeadError: %v", err)
	}
	if nde.Node != 1 || nde.Role != "lock owner" {
		t.Fatalf("NodeDeadError blames node %d role %q, want node 1 role \"lock owner\"", nde.Node, nde.Role)
	}
}

// Chained promotion: the crash-mgr profile kills node 0 and then node 1
// while node 1 (node 0's first backup) may still hold adopted roles.
// The second election must land every role on a live node and the run
// must stay deterministic: two identical runs, byte-identical stats.
func TestMgrFailoverChainedDeterminism(t *testing.T) {
	plan, err := fault.Profile(fault.ProfileCrashMgr, 9)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		opts := testOpts(ProtoOHLRC, 4)
		opts.Fault = plan
		opts.Recovery = Recovery{Replicas: 2}
		return runOrFail(t, opts, mgrStressApp(4, 100, 400*sim.Microsecond))
	}
	r1, r2 := run(), run()
	if r1.Stats.Elapsed != r2.Stats.Elapsed {
		t.Fatalf("elapsed differs: %v vs %v", r1.Stats.Elapsed, r2.Stats.Elapsed)
	}
	for i := range r1.Stats.Nodes {
		if *r1.Stats.Nodes[i] != *r2.Stats.Nodes[i] {
			t.Fatalf("node %d stats differ:\n%+v\n%+v", i, r1.Stats.Nodes[i], r2.Stats.Nodes[i])
		}
	}
	for i := range r1.Data {
		if r1.Data[i] != r2.Data[i] {
			t.Fatalf("data word %d differs: %v vs %v", i, r1.Data[i], r2.Data[i])
		}
	}
}

// Manager mirroring without any crash must not change what the run
// computes — it only adds kMgrMirror traffic, which is counted.
func TestMgrMirroringTransparent(t *testing.T) {
	const p, rounds = 3, 20
	base := runOrFail(t, testOpts(ProtoHLRC, p), mgrStressApp(p, rounds, 200*sim.Microsecond))
	opts := testOpts(ProtoHLRC, p)
	opts.Recovery = Recovery{Replicas: 1}
	rep := runOrFail(t, opts, mgrStressApp(p, rounds, 200*sim.Microsecond))
	for i := range base.Data {
		if base.Data[i] != rep.Data[i] {
			t.Fatalf("mirroring changed word %d: %v vs %v", i, rep.Data[i], base.Data[i])
		}
	}
	var mirror int64
	for _, nd := range rep.Stats.Nodes {
		mirror += nd.MirrorBytes
	}
	if mirror == 0 {
		t.Fatal("replication enabled but no manager mirror traffic recorded")
	}
	var rehomedMgrs int64
	for _, nd := range rep.Stats.Nodes {
		rehomedMgrs += nd.Counts.MgrsRehomed
	}
	if rehomedMgrs != 0 {
		t.Fatalf("fault-free run re-homed %d manager roles", rehomedMgrs)
	}
}
