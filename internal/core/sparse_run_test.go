package core

import (
	"fmt"
	"testing"

	"gosvm/internal/vc"
)

// fingerprint renders every observable of a run — elapsed time, gathered
// data, and the complete per-node statistics — into one comparable string.
func fingerprint(res *Result) string {
	out := fmt.Sprintf("elapsed=%d data=%v\n", res.Stats.Elapsed, res.Data)
	for i, nd := range res.Stats.Nodes {
		out += fmt.Sprintf("node%d=%+v\n", i, *nd)
	}
	return out
}

// TestSparseMatchesDenseRuns is the tentpole validation for the sparse
// vector-clock representation: full simulation runs must be byte-identical
// with vc.ForceDense on (dense backing arrays) and off (sparse pair
// lists), at both the paper's 8-node scale and the 64-node Paragon scale.
// Wire sizes, and therefore all simulated timing, are computed from the
// logical vector contents, so any divergence indicates a representation
// bug.
func TestSparseMatchesDenseRuns(t *testing.T) {
	defer func(old bool) { vc.ForceDense = old }(vc.ForceDense)

	cases := []struct {
		procs int
		mk    func() *testApp
	}{
		{8, func() *testApp { return counterApp(4) }},
		{8, func() *testApp { return migratoryApp(3) }},
		{8, multiWriterApp},
		{64, multiWriterApp},
		{64, func() *testApp { return migratoryApp(2) }},
	}
	for _, tc := range cases {
		for _, proto := range Protocols {
			tc, proto := tc, proto
			name := fmt.Sprintf("%s/%s/p%d", tc.mk().Name(), proto, tc.procs)
			t.Run(name, func(t *testing.T) {
				opts := testOpts(proto, tc.procs)
				vc.ForceDense = false
				sparse := fingerprint(runOrFail(t, opts, tc.mk()))
				vc.ForceDense = true
				dense := fingerprint(runOrFail(t, opts, tc.mk()))
				vc.ForceDense = false
				if sparse != dense {
					t.Fatalf("sparse and dense runs diverge:\n--- sparse ---\n%s--- dense ---\n%s", sparse, dense)
				}
			})
		}
	}
}
