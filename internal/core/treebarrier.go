package core

import (
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/vc"
)

// Hierarchical k-ary tree barrier.
//
// The paper's prototypes use a centralized barrier: every node reports to
// a single manager, which merges the interval records and releases
// everyone. That is O(n) serialized interrupt service at the manager per
// episode — fine at 8 nodes, ruinous at 1024. Above Machine.BarrierCrossover
// (or when explicitly selected) the nodes instead form a k-ary tree in
// heap layout: node i's parent is (i-1)/k, its children k*i+1 .. k*i+k.
//
// Arrivals climb the tree as aggregated subtree summaries (kBarrierUp):
// the component-wise min and max of the subtree's vector clocks, the
// union of its new interval records, and the subtree's peak protocol
// memory. The root — node 0, the same node that runs the centralized
// manager — merges exactly as the centralized algorithm does, then pushes
// releases down (kBarrierDown). Each edge carries only the records the
// receiving subtree's minimum clock shows missing; individual nodes skip
// records they already know because applyGrant is idempotent. Service
// cost per node is O(radix) messages instead of O(n), and root ingress
// bytes are O(radix * (n + new records)) instead of O(n^2).
//
// Garbage-collection decisions (homeless protocols) still happen at the
// root, fed by per-subtree protocol-memory maxima; the GC rendezvous
// itself stays centralized — GC is rare and correctness-critical, not a
// barrier-rate hot path.

// treeUp is one subtree's aggregated barrier arrival.
type treeUp struct {
	MinVC    vc.VC         // component-wise min over the subtree's clocks
	MaxVC    vc.VC         // component-wise max over the subtree's clocks
	Recs     []IntervalRec // union of new interval records in the subtree
	ProtoMem int64         // max per-node protocol memory in the subtree
	Nodes    int           // subtree size
}

func (u *treeUp) wireSize() int {
	return 16 + u.MinVC.WireSize() + u.MaxVC.WireSize() + recsWireSize(u.Recs)
}

// treeBarrier is one node's view of the barrier tree.
type treeBarrier struct {
	radix    int
	parent   int
	children []int

	// Per-episode state.
	selfIn  bool           // the local application has arrived
	ownRep  *barrierReport // the local arrival report
	childUp []*treeUp      // per child slot, nil until its subtree arrives
	arrived int            // children whose subtree reports are in

	// localWait/release hand the release from dispatcher context back to
	// the parked application proc (or directly, when the local arrival
	// completes the subtree at the root).
	localWait *sim.Proc
	release   *grantInfo

	episodes int // root only: completed barrier episodes
}

func newTreeBarrier(self, radix, nproc int) *treeBarrier {
	tb := &treeBarrier{radix: radix, parent: (self - 1) / radix}
	for c := radix*self + 1; c <= radix*self+radix && c < nproc; c++ {
		tb.children = append(tb.children, c)
	}
	tb.childUp = make([]*treeUp, len(tb.children))
	return tb
}

// resetEpisode clears per-episode state. The pending release and waiter
// are intentionally left alone: they belong to the episode being
// completed, not the next one.
func (tb *treeBarrier) resetEpisode() {
	tb.selfIn = false
	tb.ownRep = nil
	tb.arrived = 0
	for i := range tb.childUp {
		tb.childUp[i] = nil
	}
}

// treeArrive runs the local barrier arrival on the application proc and
// returns the release payload once the whole machine has arrived.
func (b *base) treeArrive(id int, rep *barrierReport) *grantInfo {
	tb := b.tree
	tb.ownRep = rep
	tb.selfIn = true
	if tb.arrived == len(tb.children) {
		b.treeSubtreeDone()
	}
	if tb.release == nil {
		tb.localWait = b.app()
		b.app().ParkArg("tree barrier", int64(id))
	}
	g := tb.release
	tb.release = nil
	tb.localWait = nil
	return g
}

// treeSubtreeDone fires when the local node and every child subtree have
// arrived: the root completes the barrier, everyone else reports up.
func (b *base) treeSubtreeDone() {
	if b.self == barrierManager {
		b.treeRootComplete()
		return
	}
	up := b.treeAggregate()
	b.node.Send(b.tree.parent, paragon.Msg{
		Kind:   kBarrierUp,
		Size:   up.wireSize(),
		Class:  stats.ClassProtocol,
		Target: b.syncTarget(),
		Body:   up,
	})
}

// treeAggregate folds the local report and the child summaries into one
// subtree summary.
func (b *base) treeAggregate() *treeUp {
	tb := b.tree
	rep := tb.ownRep
	up := &treeUp{
		MinVC:    rep.VC.Copy(),
		MaxVC:    rep.VC.Copy(),
		Recs:     append([]IntervalRec(nil), rep.Recs...),
		ProtoMem: rep.ProtoMem,
		Nodes:    1,
	}
	for _, cu := range tb.childUp {
		for p := range up.MinVC {
			if cu.MinVC[p] < up.MinVC[p] {
				up.MinVC[p] = cu.MinVC[p]
			}
			if cu.MaxVC[p] > up.MaxVC[p] {
				up.MaxVC[p] = cu.MaxVC[p]
			}
		}
		up.Recs = append(up.Recs, cu.Recs...)
		if cu.ProtoMem > up.ProtoMem {
			up.ProtoMem = cu.ProtoMem
		}
		up.Nodes += cu.Nodes
	}
	return up
}

// treeRootComplete merges the whole machine's arrivals at the root and
// releases every subtree — the tree counterpart of bmgrComplete.
func (b *base) treeRootComplete() {
	tb := b.tree
	// Merge every interval record that climbed the tree into the log.
	// Reports carry each node's own intervals, so together they cover
	// everything; the root's own records are already logged.
	for _, cu := range tb.childUp {
		for i := range cu.Recs {
			rec := cu.Recs[i]
			if !b.hasLogRec(rec.Proc, rec.Interval) {
				r := rec
				b.insertLog(&r)
			}
		}
	}
	merged := b.clock.Copy()
	merged.MaxWith(tb.ownRep.VC)
	for _, cu := range tb.childUp {
		merged.MaxWith(cu.MaxVC)
	}
	for p := range b.log {
		if n := len(b.log[p]); n > 0 && b.log[p][n-1].Interval > merged[p] {
			merged[p] = b.log[p][n-1].Interval
		}
	}
	// GC decision: one synthetic report per subtree carrying its peak
	// protocol memory feeds the same decider the centralized manager uses.
	gc := false
	if b.sys.gcDecider != nil {
		reps := []*barrierReport{tb.ownRep}
		for _, cu := range tb.childUp {
			reps = append(reps, &barrierReport{ProtoMem: cu.ProtoMem})
		}
		gc = b.sys.gcDecider(reps)
	}
	for i, c := range tb.children {
		g := grantInfo{VC: merged.Copy(), GC: gc, Intervals: b.releaseRecsSince(tb.childUp[i].MinVC)}
		b.node.Send(c, paragon.Msg{
			Kind:   kBarrierDown,
			Size:   8 + g.wireSize(),
			Class:  stats.ClassProtocol,
			Target: b.syncTarget(),
			Body:   &g,
		})
	}
	local := &grantInfo{VC: merged.Copy(), GC: gc, Intervals: b.releaseRecsSince(tb.ownRep.VC)}
	tb.resetEpisode()
	tb.episodes++
	if b.sys.onBarrier != nil {
		b.sys.onBarrier(tb.episodes)
	}
	tb.release = local
	if tb.localWait != nil {
		w := tb.localWait
		tb.localWait = nil
		w.Unpark()
	}
}

// releaseRecsSince selects log records beyond the knowledge horizon
// `have` — the minimum clock of a receiving subtree. Individual members
// skip records they already know (applyGrant is idempotent), so the
// per-subtree minimum is sufficient and no per-node filtering is needed.
func (b *base) releaseRecsSince(have vc.VC) []IntervalRec {
	out := b.logSince(have)
	if b.sys.homeBased {
		for i := range out {
			out[i].VC = nil
		}
	}
	return out
}

// filterRecsSince narrows a release to the records a child subtree with
// minimum clock `have` is missing.
func filterRecsSince(recs []IntervalRec, have vc.VC) []IntervalRec {
	out := make([]IntervalRec, 0, len(recs))
	for _, r := range recs {
		if r.Interval > have[r.Proc] {
			out = append(out, r)
		}
	}
	return out
}

// handleBarrierUp services a child subtree's arrival (dispatcher
// context on the parent).
func (b *base) handleBarrierUp(m paragon.Msg) (sim.Time, func()) {
	return b.costs().LockHandling, func() {
		up := m.Body.(*treeUp)
		tb := b.tree
		tb.childUp[m.From-(tb.radix*b.self+1)] = up
		tb.arrived++
		if tb.selfIn && tb.arrived == len(tb.children) {
			b.treeSubtreeDone()
		}
	}
}

// handleBarrierDown services the parent's release (dispatcher context):
// forward each child subtree its slice, then wake the local application.
func (b *base) handleBarrierDown(m paragon.Msg) (sim.Time, func()) {
	return b.costs().LockHandling, func() {
		g := m.Body.(*grantInfo)
		tb := b.tree
		for i, c := range tb.children {
			cg := grantInfo{VC: g.VC.Copy(), GC: g.GC, Intervals: filterRecsSince(g.Intervals, tb.childUp[i].MinVC)}
			b.node.Send(c, paragon.Msg{
				Kind:   kBarrierDown,
				Size:   8 + cg.wireSize(),
				Class:  stats.ClassProtocol,
				Target: b.syncTarget(),
				Body:   &cg,
			})
		}
		tb.resetEpisode()
		tb.release = g
		if tb.localWait != nil {
			w := tb.localWait
			tb.localWait = nil
			w.Unpark()
		}
	}
}
