package core

import (
	"errors"
	"strings"
	"testing"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

func faultOpts(t *testing.T, proto Protocol, p int, profile string, seed int64) Options {
	t.Helper()
	plan, err := fault.Profile(profile, seed)
	if err != nil {
		t.Fatal(err)
	}
	o := testOpts(proto, p)
	o.Fault = plan
	return o
}

// Every litmus app must still compute the right answer when the network
// drops, duplicates, delays, and reorders messages: the reliability
// transport has to make the faulty network indistinguishable from a slow
// reliable one.
func TestProtocolsSurviveFaultProfiles(t *testing.T) {
	for _, profile := range []string{fault.ProfileLossy, fault.ProfileHostile} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			forEachProto(t, []int{2, 4}, func(t *testing.T, proto Protocol, p int) {
				const n = 6
				res := runOrFail(t, faultOpts(t, proto, p, profile, 7), counterApp(n))
				if want := float64(p * n); res.Data[0] != want {
					t.Fatalf("counter = %v, want %v", res.Data[0], want)
				}

				res = runOrFail(t, faultOpts(t, proto, p, profile, 11), multiWriterApp())
				for i, v := range res.Data {
					if want := float64(100*(i%p) + i); v != want {
						t.Fatalf("multiwriter word %d = %v, want %v", i, v, want)
					}
				}

				const rounds = 4
				res = runOrFail(t, faultOpts(t, proto, p, profile, 13), migratoryApp(rounds))
				for i, v := range res.Data {
					if want := float64(rounds * p); v != want {
						t.Fatalf("migratory word %d = %v, want %v", i, v, want)
					}
				}
			})
		})
	}
}

// A faulty run is still a deterministic function of (program, plan,
// seed): the injector's PRNG is the only randomness and it is consulted
// in kernel order.
func TestFaultRunDeterminism(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			r1 := runOrFail(t, faultOpts(t, proto, 4, fault.ProfileHostile, 3), counterApp(6))
			r2 := runOrFail(t, faultOpts(t, proto, 4, fault.ProfileHostile, 3), counterApp(6))
			if r1.Stats.Elapsed != r2.Stats.Elapsed {
				t.Fatalf("elapsed differs: %v vs %v", r1.Stats.Elapsed, r2.Stats.Elapsed)
			}
			for i := range r1.Stats.Nodes {
				a, b := r1.Stats.Nodes[i], r2.Stats.Nodes[i]
				if *a != *b {
					t.Fatalf("node %d stats differ:\n%+v\n%+v", i, a, b)
				}
			}
		})
	}
}

// A different seed must change the fault schedule (otherwise the seed
// isn't plumbed through).
func TestFaultSeedMatters(t *testing.T) {
	r1 := runOrFail(t, faultOpts(t, ProtoHLRC, 4, fault.ProfileHostile, 1), counterApp(6))
	r2 := runOrFail(t, faultOpts(t, ProtoHLRC, 4, fault.ProfileHostile, 2), counterApp(6))
	if r1.Stats.Elapsed == r2.Stats.Elapsed {
		t.Fatalf("different seeds produced identical elapsed time %v", r1.Stats.Elapsed)
	}
}

// The reliability counters must surface in stats: under a lossy plan
// something is dropped, retried, and deduped somewhere across the run.
func TestFaultCountersVisible(t *testing.T) {
	res := runOrFail(t, faultOpts(t, ProtoHLRC, 4, fault.ProfileHostile, 5), migratoryApp(6))
	var dropped, retries, dups int64
	var recovery sim.Time
	for _, nd := range res.Stats.Nodes {
		dropped += nd.Counts.MsgsDropped
		retries += nd.Counts.Retries
		dups += nd.Counts.DupsSuppressed
		recovery += nd.Recovery
	}
	if dropped == 0 || retries == 0 || dups == 0 {
		t.Fatalf("fault counters flat: dropped=%d retries=%d dups=%d", dropped, retries, dups)
	}
	if retries > 0 && recovery == 0 {
		t.Fatalf("retries=%d but recovery time is zero", retries)
	}
	avg := res.Stats.AvgNode()
	total := avg.Counts.Retries + avg.Counts.DupsSuppressed + avg.Counts.MsgsDropped
	if total == 0 && dropped+retries+dups >= int64(len(res.Stats.Nodes)) {
		t.Fatalf("AvgNode dropped the fault counters: %+v", avg.Counts)
	}
}

// Targeted drop of a reply with the reliability layer disabled: the run
// must hang, the kernel must convert the hang into a DeadlockError
// naming the blocked proc, and the watchdog must name the lost message.
func TestDroppedReplyWithoutRetryDiagnosed(t *testing.T) {
	var addr mem.Addr
	app := &testApp{
		name:  "dropreply",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 1)
		},
		worker: func(c *Ctx, id int) {
			if id == 1 {
				c.Store(addr, 7)
			}
			c.Barrier(0)
			if id == 0 {
				c.Load(addr) // page fetch from home 1; the reply is eaten
			}
			c.Barrier(1)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed:    1,
		NoRetry: true,
		Targets: []fault.Target{{
			Kind:  kFetchPage,
			From:  fault.AnyNode,
			To:    0,
			Reply: true,
			Nth:   1,
		}},
	}
	_, err := Run(opts, app, false)
	if err == nil {
		t.Fatal("run with a swallowed reply succeeded")
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is not a DeadlockError: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "app0") {
		t.Fatalf("report does not name the blocked proc app0: %v", msg)
	}
	if !strings.Contains(msg, "fetch-page reply") || !strings.Contains(msg, "n1->n0") {
		t.Fatalf("watchdog did not name the lost message: %v", msg)
	}
}

// The same drop with the reliability layer on must recover invisibly.
func TestDroppedReplyWithRetryRecovers(t *testing.T) {
	var addr mem.Addr
	app := &testApp{
		name:  "dropreply",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 1)
		},
		worker: func(c *Ctx, id int) {
			if id == 1 {
				c.Store(addr, 7)
			}
			c.Barrier(0)
			if id == 0 {
				if got := c.Load(addr); got != 7 {
					panic("stale read after recovery")
				}
			}
			c.Barrier(1)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed: 1,
		Targets: []fault.Target{{
			Kind:  kFetchPage,
			From:  fault.AnyNode,
			To:    0,
			Reply: true,
			Nth:   1,
		}},
	}
	res := runOrFail(t, opts, app)
	if res.Data[0] != 7 {
		t.Fatalf("result = %v, want 7", res.Data[0])
	}
	var retries int64
	for _, nd := range res.Stats.Nodes {
		retries += nd.Counts.Retries
	}
	if retries == 0 {
		t.Fatal("recovery happened without any recorded retry")
	}
}

// Link-level faults: the hostile profile rendered at mesh-link
// granularity (loss and jitter correlated with XY routes) plus transient
// link-failure windows across the early protocol traffic. Every protocol
// must still compute exact results, the mesh model must be engaged
// implicitly (LinkDrops counted), and the transport must have recovered
// route-correlated loss.
func TestLinkLevelFaultsAllProtocols(t *testing.T) {
	base, err := fault.Profile(fault.ProfileHostile, 5)
	if err != nil {
		t.Fatal(err)
	}
	forEachProto(t, []int{4}, func(t *testing.T, proto Protocol, p int) {
		plan := base.AtLinkLevel(p)
		plan.Slowdowns = nil
		plan.LinkFails = []fault.LinkFail{
			{From: 0, To: 1, Start: 0, End: 2 * sim.Millisecond},
			{From: 1, To: 0, Start: sim.Millisecond, End: 3 * sim.Millisecond},
		}
		o := testOpts(proto, p)
		o.Fault = plan
		const n = 6
		res := runOrFail(t, o, counterApp(n))
		if want := float64(p * n); res.Data[0] != want {
			t.Fatalf("counter = %v, want %v", res.Data[0], want)
		}
		var linkDrops, retries int64
		for _, nd := range res.Stats.Nodes {
			linkDrops += nd.Counts.LinkDrops
			retries += nd.Counts.Retries
		}
		if linkDrops == 0 {
			t.Fatal("no copies eaten at links: the plan never reached the mesh model")
		}
		if retries == 0 {
			t.Fatal("link-level loss recovered without a single retransmission")
		}

		res = runOrFail(t, o, multiWriterApp())
		for i, v := range res.Data {
			if want := float64(100*(i%p) + i); v != want {
				t.Fatalf("multiwriter word %d = %v, want %v", i, v, want)
			}
		}
	})
}

// The link-level run is still a deterministic function of (plan, seed),
// adaptive RTO included.
func TestLinkLevelFaultDeterminism(t *testing.T) {
	base, err := fault.Profile(fault.ProfileHostile, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := base.AtLinkLevel(4)
	plan.AdaptiveRTO = true
	o := testOpts(ProtoHLRC, 4)
	o.Fault = plan
	r1 := runOrFail(t, o, counterApp(6))
	r2 := runOrFail(t, o, counterApp(6))
	if r1.Stats.Elapsed != r2.Stats.Elapsed {
		t.Fatalf("elapsed differs: %v vs %v", r1.Stats.Elapsed, r2.Stats.Elapsed)
	}
	for i := range r1.Stats.Nodes {
		if *r1.Stats.Nodes[i] != *r2.Stats.Nodes[i] {
			t.Fatalf("node %d stats differ:\n%+v\n%+v", i, r1.Stats.Nodes[i], r2.Stats.Nodes[i])
		}
	}
}

// Severing every copy of one edge's requests while retries are on: the
// transport gives up after MaxAttempts and the watchdog reports it.
func TestRetryGiveUpDiagnosed(t *testing.T) {
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed:        1,
		MaxAttempts: 3,
		RTO:         200 * sim.Microsecond,
		// Sever all barrier requests from node 1 to the manager.
		Targets: []fault.Target{{Kind: kBarrier, From: 1, To: fault.AnyNode}},
	}
	_, err := Run(opts, counterApp(2), false)
	if err == nil {
		t.Fatal("run with a severed barrier edge succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "given up") || !strings.Contains(msg, "after 3 attempts") {
		t.Fatalf("watchdog did not report retry exhaustion: %v", msg)
	}
	if !strings.Contains(msg, "barrier") {
		t.Fatalf("watchdog did not name the message kind: %v", msg)
	}
}
