package core

import (
	"fmt"

	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/trace"
	"gosvm/internal/vc"
)

// hlrcEngine implements Home-based LRC (HLRC) and its overlapped variant
// OHLRC. Every page has a home; writers flush diffs to the home at the
// end of each interval and discard them immediately; faulting nodes fetch
// whole pages from the home in a single round trip.
// Under the AURC emulation (aurc flag) the same engine models the
// Automatic Update Release Consistency protocol HLRC derives from: the
// SHRIMP automatic-update hardware snoops writes off the memory bus and
// propagates them to the home with zero software overhead. Twins and
// diffs become free (the twin is kept purely to identify the words to
// ship in the simulation), update traffic is proportional to the number
// of *stores* rather than distinct modified words (no combining), and
// updates land in home memory through the network interface with no
// receive interrupt and no apply cost.
type hlrcEngine struct {
	base
	overlapped bool
	aurc       bool
	pages      chunked[hlrcPage]

	// Crash-recovery state (see recover.go). mirrors holds this node's
	// replica copies of other homes' pages; dlog retains flushed diffs
	// in checkpoint mode until a checkpoint covers them; ckptDirty
	// tracks home pages modified since the last checkpoint shipped.
	mirrors   map[int]*mirrorPage
	dlog      map[int][]*diffFlush
	ckptDirty map[int]bool

	// lateInval holds pages a mid-interval write notice could not
	// invalidate because they sit in the open interval (only lock
	// reclamation's absorbFrom delivers notices mid-interval); the next
	// closeCommit invalidates them right after reprotection.
	lateInval []int32
}

// hlrcPage is per-page protocol state on one node.
type hlrcPage struct {
	// seen[j] is the highest interval of writer j whose updates this node
	// is required to observe (from write notices) or has incorporated
	// (from a home fetch). Nil means all-zero. This is the "vector of
	// lock timestamps" sent with fetch requests.
	seen *vc.Sparse

	// Home-side state (only on the page's home node):
	flushVC      *vc.Sparse    // highest interval applied per writer
	pendingDiff  []*diffFlush  // diffs awaiting causal predecessors
	pendingFetch []paragon.Msg // fetches awaiting flush coverage
	waiters      []*sim.Proc   // local accesses waiting for coverage

	// Overlapped: a diff for this page is being computed on the coproc;
	// the twin is in use and the next write must wait.
	inflight   bool
	twinWaiter []*sim.Proc

	// prefetching marks an asynchronous prefetch in flight for this page
	// (suppresses duplicates until the response lands).
	prefetching bool
}

type fetchPageReq struct {
	Page int
	Need *vc.Sparse
}

type fetchPageResp struct {
	Data    []float64
	FlushVC *vc.Sparse
}

// prefetchReq/prefetchResp carry the asynchronous best-effort page
// prefetch (kPrefetch/kPrefetchResp). Unlike the blocking fetch, the
// home answers immediately with whatever it has; the requester installs
// the snapshot only if it still needs the page and the snapshot covers
// its requirement vector.
type prefetchReq struct {
	Page int
	From int
	Need *vc.Sparse
}

type prefetchResp struct {
	Page    int
	Data    []float64
	FlushVC *vc.Sparse
}

type diffFlush struct {
	Page     int
	Writer   int
	Interval int32
	Dep      *vc.Sparse // per-page dependency: intervals that must be applied first
	Diff     mem.Diff
}

type makeDiffReq struct {
	Page     int
	Interval int32
	Dep      *vc.Sparse
}

func newHLRCEngine(sys *System, self int, overlapped bool) *hlrcEngine {
	return newHomeEngine(sys, self, overlapped, false)
}

// newAURCEngine returns the automatic-update emulation.
func newAURCEngine(sys *System, self int) *hlrcEngine {
	return newHomeEngine(sys, self, false, true)
}

func newHomeEngine(sys *System, self int, overlapped, aurc bool) *hlrcEngine {
	e := &hlrcEngine{overlapped: overlapped, aurc: aurc}
	e.base.init(sys, self, e)
	e.pages = newChunked[hlrcPage](sys.Space.NumPages())
	e.mirrors = make(map[int]*mirrorPage)
	e.dlog = make(map[int][]*diffFlush)
	e.ckptDirty = make(map[int]bool)
	e.node.InstallCompute(e.handleCompute)
	e.node.InstallCoproc(e.handleCoproc)
	return e
}

func (e *hlrcEngine) home(page int) int { return e.sys.homes[page] }

// dataTarget is where data-plane requests (fetches, diff flushes) go.
func (e *hlrcEngine) dataTarget() paragon.Target {
	if e.overlapped {
		return paragon.ToCoproc
	}
	return paragon.ToCompute
}

// seenOf returns the page's requirement vector, allocating lazily.
func (e *hlrcEngine) seenOf(page int) *vc.Sparse {
	m := e.pages.at(page)
	if m.seen == nil {
		m.seen = vc.NewSparse(e.sys.Opts.NumProcs)
		e.st().MemAlloc(e.vecBytes())
	}
	return m.seen
}

func (e *hlrcEngine) flushOf(page int) *vc.Sparse {
	m := e.pages.at(page)
	if m.flushVC == nil {
		m.flushVC = vc.NewSparse(e.sys.Opts.NumProcs)
		e.st().MemAlloc(e.vecBytes())
	}
	return m.flushVC
}

func covers(v, need *vc.Sparse) bool { return v.Covers(need) }

// ---------------------------------------------------------------------------
// Faults

func (e *hlrcEngine) ReadFault(page int) {
	e.use(e.costs().PageFault, stats.CatData)
	e.st().Counts.ReadMisses++
	e.emit(trace.ReadMiss, page, -1, 0)
	m := e.pages.at(page)
	t0 := e.app().Now()
	for e.home(page) == e.self {
		// The home's copy is always present; an "invalid" state here just
		// means required diffs are still in flight. Wait for coverage.
		// Re-check the home after every wake-up: if this node crashed and
		// rejoined, its pages moved and the fault must fetch remotely.
		if covers(m.flushVC, m.seen) {
			e.pt.Page(page).State = mem.ReadOnly
			e.st().Add(stats.CatData, e.app().Now()-t0)
			return
		}
		m.waiters = append(m.waiters, e.app())
		e.app().ParkArg("hlrc home wait page", int64(page))
	}
	resp := e.node.Call(e.app(), e.home(page), paragon.Msg{
		Kind:   kFetchPage,
		Size:   8 + e.clock.WireSize(),
		Class:  stats.ClassProtocol,
		Target: e.dataTarget(),
		// Need must be a snapshot: the live vector can grow while the
		// request waits on the home's pending list.
		Body: &fetchPageReq{Page: page, Need: m.seen.Copy()},
	})
	e.st().Add(stats.CatData, e.app().Now()-t0)
	pr := resp.Body.(*fetchPageResp)
	p := e.pt.Materialize(page)
	copy(p.Data, pr.Data)
	p.State = mem.ReadOnly
	seen := e.seenOf(page)
	seen.MaxWith(pr.FlushVC)
	e.st().Counts.PagesFetched++
	e.emit(trace.PageFetch, page, e.home(page), 0)
}

// FreshRead implements the serving fast path's lock-free read
// revalidation (Ctx.FreshRead): drop any cached copy of the page and
// re-fetch the home's current copy, so the caller's subsequent Loads
// observe one atomic, up-to-date snapshot. A page this node has written
// in the open interval is read in place (its own writes are the
// freshest view it can legally observe, and merging remote diffs into a
// dirty copy is the home's job, not ours); so is a self-homed page,
// after waiting out any in-flight diffs the node is required to see.
func (e *hlrcEngine) FreshRead(page int) bool {
	p := e.pt.Page(page)
	if p.State == mem.ReadWrite {
		return true
	}
	if e.home(page) == e.self && p.State != mem.Invalid {
		return true
	}
	if p.State == mem.ReadOnly {
		// Drop the possibly stale cached copy; charge the reprotect.
		e.use(e.costs().PageProtect, stats.CatProtocol)
		p.State = mem.Invalid
	}
	e.ReadFault(page)
	return true
}

// Prefetch implements Ctx.Prefetch: a fire-and-forget page pull from
// the home, serviced on the co-processor under the overlapped
// protocols. The response installs the page only if it is still
// invalid here and the snapshot covers this node's requirement vector;
// otherwise it is dropped (best effort — correctness never depends on
// a prefetch landing).
func (e *hlrcEngine) Prefetch(page int) {
	p := e.pt.Page(page)
	m := e.pages.at(page)
	if p.State != mem.Invalid || e.home(page) == e.self || m.prefetching {
		return
	}
	m.prefetching = true
	e.st().Counts.Prefetches++
	e.node.Send(e.home(page), paragon.Msg{
		Kind:   kPrefetch,
		Size:   8 + e.clock.WireSize(),
		Class:  stats.ClassProtocol,
		Target: e.dataTarget(),
		Body:   &prefetchReq{Page: page, From: e.self, Need: m.seen.Copy()},
	})
}

func (e *hlrcEngine) WriteFault(page int) {
	p := e.pt.Page(page)
	if p.State == mem.Invalid {
		e.ReadFault(page)
	}
	m := e.pages.at(page)
	for m.inflight {
		// Overlapped: the twin is still feeding the co-processor's diff.
		m.twinWaiter = append(m.twinWaiter, e.app())
		e.app().ParkArg("hlrc twin busy page", int64(page))
	}
	e.use(e.costs().PageFault, stats.CatProtocol)
	e.st().Counts.WriteFaults++
	e.emit(trace.WriteFault, page, -1, 0)
	if e.home(page) != e.self {
		if e.aurc {
			// Automatic update: the fault only establishes the AU
			// mapping. The twin exists solely so the simulation knows
			// which words the hardware shipped; it costs nothing.
			e.use(e.costs().PageProtect, stats.CatProtocol)
			p.MakeTwin(e.pool())
		} else {
			e.use(e.costs().TwinCost(e.sys.Space.PageBytes()), stats.CatProtocol)
			p.MakeTwin(e.pool())
			e.st().MemAlloc(int64(e.sys.Space.PageBytes()))
		}
	} else if e.recovering() && !e.aurc {
		// With replication on, the home twins its own pages too: its
		// writes exist nowhere else, so they must be diffed at interval
		// end and mirrored to the replicas.
		e.use(e.costs().TwinCost(e.sys.Space.PageBytes()), stats.CatProtocol)
		p.MakeTwin(e.pool())
		e.st().MemAlloc(int64(e.sys.Space.PageBytes()))
	}
	p.Stores = 0
	p.State = mem.ReadWrite
	e.markDirty(page)
}

// ---------------------------------------------------------------------------
// Interval closing

func (e *hlrcEngine) closeCost() sim.Time {
	var cost sim.Time
	for _, pg := range e.dirty {
		cost += e.costs().PageProtect
		if e.home(int(pg)) == e.self || e.aurc {
			if e.home(int(pg)) == e.self && e.recovering() && !e.aurc {
				// Replication: the home diffs its own writes for mirroring.
				if e.overlapped {
					cost += e.costs().CoprocPost
				} else {
					cost += e.costs().DiffCreateCost(e.sys.Space.PageWords)
				}
			}
			continue // otherwise home pages and automatic update: no diffing work
		}
		if e.overlapped {
			cost += e.costs().CoprocPost
		} else {
			cost += e.costs().DiffCreateCost(e.sys.Space.PageWords)
		}
	}
	cost += sim.Time(len(e.lateInval)) * e.costs().PageInval
	return cost
}

func (e *hlrcEngine) closeCommit() {
	if len(e.dirty) == 0 {
		return
	}
	rec := e.newIntervalRec()
	for _, pg32 := range rec.Pages {
		pg := int(pg32)
		p := e.pt.Page(pg)
		p.State = mem.ReadOnly
		m := e.pages.at(pg)
		dep := e.pages.at(pg).seen.Copy() // nil-safe: Copy of nil is nil (all-zero)
		if dep == nil {
			dep = vc.NewSparse(e.sys.Opts.NumProcs)
		}
		seen := e.seenOf(pg)
		if e.home(pg) == e.self {
			seen.Set(e.self, rec.Interval)
			if e.recovering() && !e.aurc && p.Twin != nil {
				// The home's own writes must reach the replicas: diff
				// against the twin and run the self-flush path, which
				// mirrors eagerly in both recovery modes.
				if e.overlapped {
					m.inflight = true
					e.node.InjectCoproc(paragon.Msg{
						Kind: kMakeDiff,
						Body: &makeDiffReq{Page: pg, Interval: rec.Interval, Dep: dep},
					})
					continue
				}
				diff := mem.ComputeDiffPooled(e.pool(), pg, p.Twin, p.Data)
				p.DropTwin(e.pool())
				e.st().MemFree(int64(e.sys.Space.PageBytes()))
				e.st().Counts.DiffsCreated++
				e.emit(trace.DiffCreate, pg, -1, int64(diff.WireSize()))
				e.homeSelfFlush(&diffFlush{
					Page: pg, Writer: e.self, Interval: rec.Interval, Dep: dep, Diff: diff,
				})
				continue
			}
			f := e.flushOf(pg)
			f.Set(e.self, rec.Interval)
			e.homeDrain(pg)
			continue
		}
		seen.Set(e.self, rec.Interval)
		if e.aurc {
			// The hardware already streamed the writes home; the message
			// models their aggregate write-through traffic.
			diff := mem.ComputeDiffPooled(e.pool(), pg, p.Twin, p.Data)
			stores := p.Stores
			p.Stores = 0
			p.DropTwin(e.pool())
			e.sendAUUpdate(&diffFlush{
				Page: pg, Writer: e.self, Interval: rec.Interval, Dep: dep, Diff: diff,
			}, stores)
			continue
		}
		if e.overlapped {
			m.inflight = true
			e.node.InjectCoproc(paragon.Msg{
				Kind: kMakeDiff,
				Body: &makeDiffReq{Page: pg, Interval: rec.Interval, Dep: dep},
			})
			continue
		}
		diff := mem.ComputeDiffPooled(e.pool(), pg, p.Twin, p.Data)
		p.DropTwin(e.pool())
		e.st().MemFree(int64(e.sys.Space.PageBytes()))
		e.st().Counts.DiffsCreated++
		e.emit(trace.DiffCreate, pg, -1, int64(diff.WireSize()))
		df := &diffFlush{
			Page: pg, Writer: e.self, Interval: rec.Interval, Dep: dep, Diff: diff,
		}
		e.logDiff(df)
		e.sendDiff(df)
	}
	// Deferred mid-interval invalidations (noticePage): now that the
	// interval is closed and the pages reprotected, drop the copies.
	for _, pg32 := range e.lateInval {
		p := e.pt.Page(int(pg32))
		if p.State == mem.ReadOnly {
			p.State = mem.Invalid
			e.emit(trace.Invalidate, int(pg32), -1, 0)
		}
	}
	e.lateInval = nil
}

// sendAUUpdate ships an automatic-update flush: sized by store count
// (write-through, no combining), delivered straight into home memory via
// the network interface (no interrupt, no software apply).
func (e *hlrcEngine) sendAUUpdate(df *diffFlush, stores int) {
	e.node.Send(e.home(df.Page), paragon.Msg{
		Kind:   kDiffFlush,
		Size:   8*stores + df.Dep.WireSize(),
		Class:  stats.ClassData,
		Target: paragon.ToCoproc,
		Body:   df,
	})
}

// sendDiff transmits a diff to its home (from compute or coproc context;
// traffic is charged to this node either way).
func (e *hlrcEngine) sendDiff(df *diffFlush) {
	e.emit(trace.DiffFlush, df.Page, e.home(df.Page), int64(df.Diff.WireSize()))
	e.node.Send(e.home(df.Page), paragon.Msg{
		Kind:   kDiffFlush,
		Size:   df.Diff.WireSize() + df.Dep.WireSize(),
		Class:  stats.ClassData,
		Target: e.dataTarget(),
		Body:   df,
	})
}

// ---------------------------------------------------------------------------
// Write notices

func (e *hlrcEngine) noticePage(rec *IntervalRec, page int) sim.Time {
	seen := e.seenOf(page)
	seen.RaiseTo(rec.Proc, rec.Interval)
	p := e.pt.Page(page)
	if e.home(page) == e.self {
		// The home never discards its copy; accesses wait for coverage.
		if !covers(e.pages.at(page).flushVC, seen) && p.State != mem.ReadWrite {
			p.State = mem.Invalid
			return e.costs().PageInval
		}
		return 0
	}
	if p.State == mem.Invalid {
		return 0
	}
	if p.State == mem.ReadWrite {
		// Mid-interval notice: only reclamation's absorbFrom can apply
		// one (a grant's notices always follow closeIntervalOnApp).
		// Invalidating now would sever the open interval's twin/dirty
		// bookkeeping — a re-write would fault, refetch over the local
		// writes, and re-enter the dirty list. Defer until the close
		// reprotects the page; seen is already raised, so the eventual
		// refetch waits out the noticed writer's flush.
		e.lateInval = append(e.lateInval, int32(page))
		return 0
	}
	p.State = mem.Invalid
	e.emit(trace.Invalidate, page, rec.Proc, 0)
	return e.costs().PageInval
}

func (e *hlrcEngine) onBarrierRelease(g *grantInfo) {
	// After a barrier every node knows every interval up to the merged
	// clock; write-notice records older than that can never be requested
	// again. This is why the home-based protocols need no garbage
	// collection.
	e.pruneLogThrough(g.VC)
}

func (e *hlrcEngine) protoMem() int64 { return e.st().ProtoMem }

// ---------------------------------------------------------------------------
// Message handlers

func (e *hlrcEngine) handleCompute(m paragon.Msg) (sim.Time, func()) {
	switch m.Kind {
	case kLockAcq:
		return e.handleLockAcq(m)
	case kLockFwd:
		return e.handleLockFwd(m)
	case kBarrier:
		return e.handleBarrier(m)
	case kBarrierUp:
		return e.handleBarrierUp(m)
	case kBarrierDown:
		return e.handleBarrierDown(m)
	case kFetchPage:
		return e.handleFetchPage(m)
	case kDiffFlush:
		return e.handleDiffFlush(m)
	case kPrefetch:
		return e.handlePrefetch(m)
	case kPrefetchResp:
		return e.handlePrefetchResp(m)
	case kMirror:
		return e.handleMirror(m)
	case kMgrMirror:
		return e.handleMgrMirror(m)
	case kCkptNote:
		return e.handleCkptNote(m)
	case kRecoverPull:
		return e.handleRecoverPull(m)
	}
	return badKind(m.Kind)
}

func (e *hlrcEngine) handleCoproc(m paragon.Msg) (sim.Time, func()) {
	switch m.Kind {
	case kMakeDiff:
		return e.handleMakeDiff(m)
	case kFetchPage:
		return e.handleFetchPage(m)
	case kDiffFlush:
		return e.handleDiffFlush(m)
	case kPrefetch:
		return e.handlePrefetch(m)
	case kPrefetchResp:
		return e.handlePrefetchResp(m)
	case kMirror:
		return e.handleMirror(m)
	case kMgrMirror:
		return e.handleMgrMirror(m)
	case kCkptNote:
		return e.handleCkptNote(m)
	case kRecoverPull:
		return e.handleRecoverPull(m)
	// Synchronization service lands here under the OverlapLocks
	// extension (§4.3's "moved to the co-processor").
	case kLockAcq:
		return e.handleLockAcq(m)
	case kLockFwd:
		return e.handleLockFwd(m)
	case kBarrier:
		return e.handleBarrier(m)
	case kBarrierUp:
		return e.handleBarrierUp(m)
	case kBarrierDown:
		return e.handleBarrierDown(m)
	}
	return badKind(m.Kind)
}

// handleMakeDiff runs on the writer's co-processor (OHLRC).
func (e *hlrcEngine) handleMakeDiff(m paragon.Msg) (sim.Time, func()) {
	return e.costs().DiffCreateCost(e.sys.Space.PageWords), func() {
		req := m.Body.(*makeDiffReq)
		p := e.pt.Page(req.Page)
		diff := mem.ComputeDiffPooled(e.pool(), req.Page, p.Twin, p.Data)
		p.DropTwin(e.pool())
		e.st().MemFree(int64(e.sys.Space.PageBytes()))
		e.st().Counts.DiffsCreated++
		e.emit(trace.DiffCreate, req.Page, -1, int64(diff.WireSize()))
		pm := e.pages.at(req.Page)
		pm.inflight = false
		for _, w := range pm.twinWaiter {
			w.Unpark()
		}
		pm.twinWaiter = nil
		df := &diffFlush{
			Page: req.Page, Writer: e.self, Interval: req.Interval,
			Dep: req.Dep, Diff: diff,
		}
		if e.home(req.Page) == e.self {
			// The page is (or became, via a promotion) self-homed: the
			// flush is local and the diff mirrors to the replicas.
			e.homeSelfFlush(df)
			return
		}
		e.logDiff(df)
		e.sendDiff(df)
	}
}

// handleDiffFlush runs at the home (compute under HLRC, coproc under
// OHLRC): apply the incoming diff once its causal predecessors are in.
func (e *hlrcEngine) handleDiffFlush(m paragon.Msg) (sim.Time, func()) {
	df := m.Body.(*diffFlush)
	work := e.costs().DiffApplyCost(df.Diff.Words())
	if e.aurc {
		work = 0 // the network interface writes home memory directly
	}
	return work, func() {
		e.homeReceiveDiff(df)
	}
}

func (e *hlrcEngine) homeReceiveDiff(df *diffFlush) {
	if e.home(df.Page) != e.self {
		// Stale delivery: the page was re-homed (or this node restarted
		// and lost its home role) while the flush was in flight. Forward
		// to the current home; application is idempotent, so a duplicate
		// arrival there is harmless.
		e.sendDiff(df)
		return
	}
	e.ckptDirty[df.Page] = true
	if e.sys.rec != nil && e.sys.rec.k > 0 && e.sys.rec.every == 0 {
		// Eager mirroring happens at receipt, not at apply: a diff parked
		// on causal predecessors has already been acknowledged to its
		// writer, so it must be recoverable from the replicas now.
		e.mirrorDiff(df)
	}
	f := e.flushOf(df.Page)
	if !covers(f, df.Dep) {
		m := e.pages.at(df.Page)
		m.pendingDiff = append(m.pendingDiff, df)
		return
	}
	e.homeApply(df)
	e.homeDrain(df.Page)
}

func (e *hlrcEngine) homeApply(df *diffFlush) {
	p := e.pt.Page(df.Page)
	df.Diff.Apply(p.Data)
	f := e.flushOf(df.Page)
	f.RaiseTo(df.Writer, df.Interval)
	e.st().Counts.DiffsApplied++
	e.emit(trace.DiffApply, df.Page, df.Writer, int64(df.Diff.Words()))
	if e.sys.rec == nil {
		// Home-based diffs are single-use: once applied at the home the
		// flush is dead, so its pooled backing can be recycled. With
		// recovery on, the same diff may still sit in writer-side logs or
		// be mirrored to replicas — leave those to the garbage collector.
		df.Diff.Release(e.pool())
	}
}

// homeDrain retries pending diffs, fetches, and local waiters for a page
// after the flush vector advanced.
func (e *hlrcEngine) homeDrain(page int) {
	m := e.pages.at(page)
	f := e.flushOf(page)
	for progress := true; progress; {
		progress = false
		for i, df := range m.pendingDiff {
			if df != nil && covers(f, df.Dep) {
				m.pendingDiff[i] = nil
				e.homeApply(df)
				progress = true
			}
		}
	}
	live := m.pendingDiff[:0]
	for _, df := range m.pendingDiff {
		if df != nil {
			live = append(live, df)
		}
	}
	m.pendingDiff = live

	keep := m.pendingFetch[:0]
	for _, req := range m.pendingFetch {
		fr := req.Body.(*fetchPageReq)
		if covers(f, fr.Need) {
			e.respondFetch(req, fr)
		} else {
			keep = append(keep, req)
		}
	}
	m.pendingFetch = keep

	if len(m.waiters) > 0 && covers(f, m.seen) {
		for _, w := range m.waiters {
			w.Unpark()
		}
		m.waiters = nil
	}
}

// handleFetchPage runs at the home.
func (e *hlrcEngine) handleFetchPage(m paragon.Msg) (sim.Time, func()) {
	return 0, func() {
		fr := m.Body.(*fetchPageReq)
		if e.home(fr.Page) != e.self {
			// Stale delivery after a re-homing: forward the request. The
			// reply port records the original requester, so the current
			// home answers it directly.
			e.node.Send(e.home(fr.Page), m)
			return
		}
		if covers(e.pages.at(fr.Page).flushVC, fr.Need) {
			e.respondFetch(m, fr)
			return
		}
		pm := e.pages.at(fr.Page)
		pm.pendingFetch = append(pm.pendingFetch, m)
	}
}

func (e *hlrcEngine) respondFetch(req paragon.Msg, fr *fetchPageReq) {
	p := e.pt.Page(fr.Page)
	data := make([]float64, len(p.Data))
	copy(data, p.Data)
	f := e.flushOf(fr.Page)
	e.node.Respond(req, paragon.Msg{
		Kind:  kFetchPage,
		Size:  e.sys.Space.PageBytes() + f.WireSize(),
		Class: stats.ClassData,
		Body:  &fetchPageResp{Data: data, FlushVC: f.Copy()},
	})
}

// handlePrefetch runs at the home: answer immediately with the current
// copy and flush vector. No parking — if the snapshot is older than the
// requester needs, the requester drops it and its eventual blocking
// fetch waits at the home as usual.
func (e *hlrcEngine) handlePrefetch(m paragon.Msg) (sim.Time, func()) {
	return 0, func() {
		pr := m.Body.(*prefetchReq)
		if e.home(pr.Page) != e.self {
			// Re-homed while in flight: forward to the current home.
			e.node.Send(e.home(pr.Page), m)
			return
		}
		p := e.pt.Page(pr.Page)
		data := make([]float64, len(p.Data))
		copy(data, p.Data)
		f := e.flushOf(pr.Page)
		e.node.Send(pr.From, paragon.Msg{
			Kind:   kPrefetchResp,
			Size:   e.sys.Space.PageBytes() + f.WireSize(),
			Class:  stats.ClassData,
			Target: e.dataTarget(),
			Body:   &prefetchResp{Page: pr.Page, Data: data, FlushVC: f.Copy()},
		})
	}
}

// handlePrefetchResp runs at the requester: install the snapshot if the
// page is still invalid and the snapshot covers everything this node is
// required to see; otherwise drop it.
func (e *hlrcEngine) handlePrefetchResp(m paragon.Msg) (sim.Time, func()) {
	return 0, func() {
		resp := m.Body.(*prefetchResp)
		pm := e.pages.at(resp.Page)
		pm.prefetching = false
		p := e.pt.Page(resp.Page)
		if p.State != mem.Invalid || !covers(resp.FlushVC, pm.seen) {
			return
		}
		pp := e.pt.Materialize(resp.Page)
		copy(pp.Data, resp.Data)
		pp.State = mem.ReadOnly
		seen := e.seenOf(resp.Page)
		seen.MaxWith(resp.FlushVC)
		e.st().Counts.PagesFetched++
		e.emit(trace.PageFetch, resp.Page, m.From, 0)
	}
}

// Finish waits out any co-processor diffs still in flight and asserts the
// engine wound down cleanly.
func (e *hlrcEngine) Finish() {
	if len(e.dirty) > 0 {
		panic(fmt.Sprintf("core: node %d finished with %d dirty pages (missing final barrier?)", e.self, len(e.dirty)))
	}
	e.pages.each(func(pg int, m *hlrcPage) {
		for m.inflight {
			m.twinWaiter = append(m.twinWaiter, e.app())
			e.app().ParkArg("finish: diff in flight page", int64(pg))
		}
	})
	for l, ls := range e.locks {
		if ls.held {
			panic(fmt.Sprintf("core: node %d finished holding lock %d", e.self, l))
		}
	}
}
