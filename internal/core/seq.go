package core

import "fmt"

// seqEngine is the sequential baseline: a single processor with every page
// resident and writable, no coherence actions, and free synchronization.
// Runs under ProtoSeq measure pure computation time, the denominator of
// the paper's speedups.
type seqEngine struct {
	sys  *System
	self int
}

func newSeqEngine(sys *System, self int) *seqEngine {
	return &seqEngine{sys: sys, self: self}
}

func (e *seqEngine) ReadFault(page int) {
	panic(fmt.Sprintf("core: sequential run faulted reading page %d", page))
}

func (e *seqEngine) WriteFault(page int) {
	panic(fmt.Sprintf("core: sequential run faulted writing page %d", page))
}

func (e *seqEngine) Acquire(lock int) {}
func (e *seqEngine) Release(lock int) {}
func (e *seqEngine) Barrier(id int)   {}
func (e *seqEngine) Finish()          {}
