package core

import (
	"fmt"
	"sync/atomic"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/trace"
)

// App is a Splash-2-style application: sequential setup and
// initialization by processor 0, a parallel worker body, and a gather
// phase that collects results (used for validation).
type App interface {
	Name() string
	// Setup allocates shared memory. It must not write data.
	Setup(s *Setup)
	// Init fills initial data and may direct home placement. It models
	// the paper's "one process allocates and initializes global data";
	// it runs before the timed parallel phase.
	Init(w *Init)
	// Worker is the parallel body, run on every processor. Workers must
	// finish with a barrier so all updates are flushed.
	Worker(c *Ctx, id int)
	// Gather reads back the results through the SVM (on processor 0,
	// after all workers complete).
	Gather(c *Ctx) []float64
}

// Setup is the allocation-phase view of the system.
type Setup struct {
	Space *mem.Space
	P     int // number of processors for this run
}

// Alloc reserves n words of shared memory (page-aligned).
func (s *Setup) Alloc(n int) mem.Addr { return s.Space.Alloc(n) }

// AllocUnaligned reserves n words without page alignment.
func (s *Setup) AllocUnaligned(n int) mem.Addr { return s.Space.AllocUnaligned(n) }

// Init is the initialization-phase view: direct writes into the staging
// image plus home placement directives.
type Init struct {
	sys *System
	P   int
}

// Store writes one word of initial data.
func (w *Init) Store(a mem.Addr, v float64) { w.sys.staging[a] = v }

// StoreI writes an integer (must be exactly representable in float64).
func (w *Init) StoreI(a mem.Addr, v int64) { w.sys.staging[a] = float64(v) }

// Load reads back initial data (for init-time computation).
func (w *Init) Load(a mem.Addr) float64 { return w.sys.staging[a] }

// SetHome assigns the pages covering [a, a+words) to the given node: the
// paper's "homes chosen intelligently" (application-directed placement).
// Under the homeless protocols the same placement seeds the initial page
// copies. Ignored when Options.HomeRoundRobin is set.
func (w *Init) SetHome(a mem.Addr, words int, node int) {
	if w.sys.Opts.HomeRoundRobin {
		return
	}
	first := w.sys.Space.PageOf(a)
	last := w.sys.Space.PageOf(a + mem.Addr(words) - 1)
	for pg := first; pg <= last; pg++ {
		w.sys.homes[pg] = node % w.P
	}
}

// System is one configured simulation: machine, address space, page
// tables, and per-node protocol engines.
type System struct {
	K     *sim.Kernel
	M     *paragon.Machine
	Space *mem.Space
	Opts  Options

	Tables  []*mem.Table
	Engines []Engine

	homes     []int // per page
	staging   []float64
	appProcs  []*sim.Proc
	homeBased bool

	// Crash-recovery state (recover.go). rec is nil unless the run has
	// crashes or replication; fatal is set (with the kernel stopped) when
	// a crash is unrecoverable; liveWorkers gates the checkpoint timers.
	// Workers finish on different lanes in a parallel run, so the counter
	// is atomic (recovery itself always runs sequentially).
	rec         *recovery
	fatal       error
	liveWorkers atomic.Int32

	// Synchronization-manager failover state (mgr.go). syncMgr maps each
	// natural lock-manager slot (node id) to the node currently holding
	// that role; nil means the identity mapping and is only materialized
	// when a crash promotes a backup, so fault-free parallel runs read
	// immutable state. bmNode is the current barrier-manager node.
	syncMgr []int
	bmNode  int

	// traceLog, when non-nil, captures protocol events.
	traceLog *trace.Log

	// gcDecider, when non-nil, inspects barrier reports and decides
	// whether this barrier triggers garbage collection.
	gcDecider func(reports []*barrierReport) bool
	// onBarrier is invoked (scheduler context) after each completed
	// barrier episode, for phase capture.
	onBarrier func(episode int)
}

// Result is the outcome of a run.
type Result struct {
	Stats *stats.Run
	// Data is the result image collected by App.Gather on processor 0.
	Data []float64
	// Phases are per-barrier-episode stat deltas when phase capture is on.
	Phases []stats.Phase
	// Trace is the protocol event log when Options.TraceLimit is set.
	Trace *trace.Log
}

// lpParallel decides whether this run can use the partitioned parallel
// kernel. The gated-out configurations all thread some globally ordered
// state through the event loop — mesh link occupancy, the fault
// injector's sequential RNG stream, recovery's global watchdog and
// checkpoint machinery, the shared trace log, and phase capture's
// cross-node stat snapshots — so they keep the sequential kernel, where
// byte-identity at any -run-workers value holds trivially.
func lpParallel(opts *Options, capturePhases bool) bool {
	return opts.RunWorkers >= 2 &&
		opts.NumProcs > 1 &&
		opts.Protocol != ProtoSeq &&
		!opts.Mesh &&
		!opts.Fault.Active() &&
		!opts.Recovery.Enabled() &&
		opts.TraceLimit == 0 &&
		!capturePhases &&
		opts.Costs.Lookahead() > 0
}

// Run executes app under opts and returns the gathered results and
// statistics.
func Run(opts Options, app App, capturePhases bool) (*Result, error) {
	opts.Defaults()
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	if opts.Protocol == ProtoSeq && opts.NumProcs != 1 {
		return nil, fmt.Errorf("core: sequential runs require NumProcs=1, got %d", opts.NumProcs)
	}

	k := sim.NewKernel()
	if lpParallel(&opts, capturePhases) {
		// One lane per node: each node's dispatchers and worker advance
		// inside a conservative window bounded by the minimum cross-node
		// message latency. Must happen before paragon.New spawns the
		// dispatcher procs onto their lanes.
		k.Partition(opts.NumProcs, opts.Costs.Lookahead(), opts.RunWorkers)
	}
	machine := paragon.New(k, opts.NumProcs, opts.Costs)
	if opts.Mesh || opts.Fault.LinkLevel() {
		// Link-level faults are defined on mesh links, so they imply the
		// link-granularity network model.
		if opts.Machine.MeshRows > 0 {
			machine.EnableMeshDims(0, opts.Machine.MeshRows, opts.Machine.MeshCols)
		} else {
			machine.EnableMesh(0)
		}
	}
	var inj *fault.Injector
	if opts.Fault.Active() {
		inj = fault.NewInjector(opts.Fault)
		inj.KindName = msgKindName
		machine.EnableFaults(inj)
	}
	space := mem.NewSpace(opts.PageBytes)
	sys := &System{
		K:     k,
		M:     machine,
		Space: space,
		Opts:  opts,
		homeBased: opts.Protocol == ProtoHLRC || opts.Protocol == ProtoOHLRC ||
			opts.Protocol == ProtoAURC || opts.Protocol == ProtoSeq,
	}
	if opts.TraceLimit != 0 {
		limit := opts.TraceLimit
		if limit < 0 {
			limit = 0
		}
		sys.traceLog = trace.NewLog(limit)
	}
	if len(opts.Fault.Crashes) > 0 || opts.Recovery.Enabled() {
		if err := sys.initRecovery(); err != nil {
			return nil, err
		}
	}

	// Phase 1: allocation.
	app.Setup(&Setup{Space: space, P: opts.NumProcs})
	npages := space.NumPages()
	if npages == 0 {
		return nil, fmt.Errorf("core: app %q allocated no shared memory", app.Name())
	}

	// Phase 2: initialization into the staging image, with default
	// round-robin home placement that the app may override.
	sys.staging = make([]float64, npages*space.PageWords)
	sys.homes = make([]int, npages)
	for pg := range sys.homes {
		sys.homes[pg] = pg % opts.NumProcs
	}
	app.Init(&Init{sys: sys, P: opts.NumProcs})

	// Phase 3: page tables and engines.
	// Page tables and protocol state materialize lazily on first touch
	// (chunked storage, stable entry pointers): at 1024 nodes each node
	// references only its sliver of the address space, and allocating
	// n_nodes * n_pages entries eagerly would dominate host memory.
	sys.Tables = make([]*mem.Table, opts.NumProcs)
	for i := range sys.Tables {
		sys.Tables[i] = mem.NewTable(space)
	}
	sys.Engines = make([]Engine, opts.NumProcs)
	for i := range sys.Engines {
		switch opts.Protocol {
		case ProtoSeq:
			sys.Engines[i] = newSeqEngine(sys, i)
		case ProtoLRC, ProtoOLRC:
			sys.Engines[i] = newLRCEngine(sys, i, opts.Protocol == ProtoOLRC)
		case ProtoHLRC, ProtoOHLRC:
			sys.Engines[i] = newHLRCEngine(sys, i, opts.Protocol == ProtoOHLRC)
		case ProtoAURC:
			sys.Engines[i] = newAURCEngine(sys, i)
		default:
			return nil, fmt.Errorf("core: unknown protocol %q", opts.Protocol)
		}
	}

	// Phase 4: seed initial copies at the homes from the staging image.
	for pg := 0; pg < npages; pg++ {
		owner := sys.homes[pg]
		t := sys.Tables[owner]
		p := t.Materialize(pg)
		copy(p.Data, sys.staging[pg*space.PageWords:(pg+1)*space.PageWords])
		p.State = mem.ReadOnly
		if opts.Protocol == ProtoSeq {
			p.State = mem.ReadWrite
		}
		machine.Nodes[owner].Stats.AppMem += int64(space.PageBytes())
	}
	if sys.rec != nil {
		sys.seedReplicas(sys.staging)
		sys.startCkptTimers()
	}
	sys.staging = nil

	// Phase capture.
	var phases []stats.Phase
	var lastSnap []stats.Node
	if capturePhases {
		lastSnap = make([]stats.Node, opts.NumProcs)
		sys.onBarrier = func(episode int) {
			ph := stats.Phase{Barrier: episode, PerNode: make([]stats.Node, opts.NumProcs)}
			for i, nd := range machine.Nodes {
				snap := nd.Stats.Snapshot()
				ph.PerNode[i] = snap.Sub(lastSnap[i])
				lastSnap[i] = snap
			}
			phases = append(phases, ph)
		}
	}

	// Phase 5: run workers.
	sys.appProcs = make([]*sim.Proc, opts.NumProcs)
	sys.liveWorkers.Store(int32(opts.NumProcs))
	perProcEnd := make([]sim.Time, opts.NumProcs)
	endStats := make([]stats.Node, opts.NumProcs)
	var gathered []float64
	for i := 0; i < opts.NumProcs; i++ {
		i := i
		sys.appProcs[i] = k.SpawnOn(i, fmt.Sprintf("app%d", i), 0, func(p *sim.Proc) {
			machine.Nodes[i].CPU.Bind(p)
			c := newCtx(sys, i, p)
			app.Worker(c, i)
			perProcEnd[i] = p.Now()
			sys.liveWorkers.Add(-1)
			// Snapshot before the (untimed) gather phase so reported
			// statistics cover exactly the parallel execution.
			endStats[i] = machine.Nodes[i].Stats.Snapshot()
			if i == 0 {
				gathered = app.Gather(c)
			}
			sys.Engines[i].Finish()
		})
	}
	err := k.Run()
	if sys.fatal != nil {
		// An unrecoverable crash stopped the kernel deliberately; report
		// that rather than the secondary deadlock it would decay into.
		err = sys.fatal
	}
	if err != nil {
		k.Shutdown()
		if inj != nil && sys.fatal == nil {
			// Attribute the hang to any permanently lost messages before
			// surfacing it.
			err = inj.Diagnose(err)
		}
		return nil, fmt.Errorf("core: %s/%s: %w", app.Name(), opts.Protocol, err)
	}
	k.Shutdown()

	var elapsed sim.Time
	for _, t := range perProcEnd {
		if t > elapsed {
			elapsed = t
		}
	}
	run := &stats.Run{
		Protocol: string(opts.Protocol),
		App:      app.Name(),
		Elapsed:  elapsed,
	}
	for i := range endStats {
		nd := endStats[i]
		run.Nodes = append(run.Nodes, &nd)
	}
	run.PhaseCaps = phases
	return &Result{Stats: run, Data: gathered, Phases: phases, Trace: sys.traceLog}, nil
}
