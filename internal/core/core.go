// Package core implements the paper's four shared-virtual-memory
// protocols on the simulated Paragon:
//
//   - LRC: the standard homeless lazy release consistency protocol
//     (TreadMarks-style), with lazy diffs, distributed diff fetch, and
//     garbage collection at barriers.
//   - OLRC: LRC with diff creation and remote fetch service overlapped on
//     the communication co-processor.
//   - HLRC: the paper's contribution — home-based LRC. Diffs are computed
//     at the end of each interval, sent to the page's home, applied there
//     eagerly, and discarded; faults fetch whole pages from the home.
//   - OHLRC: HLRC with diff creation, diff application, and page service
//     overlapped on the communication co-processors.
//
// All four share the synchronization machinery in this package:
// round-robin distributed lock managers with request forwarding and a
// centralized barrier manager, both carrying coherence information
// (write notices) exactly as the paper describes.
package core

import (
	"fmt"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/vc"
)

// Protocol identifies one of the simulated coherence protocols. The
// zero value is invalid; use ParseProtocol to validate external input.
type Protocol string

// Protocols accepted by Options.Protocol.
const (
	ProtoSeq   Protocol = "seq" // sequential baseline: direct memory, no coherence
	ProtoLRC   Protocol = "lrc"
	ProtoOLRC  Protocol = "olrc"
	ProtoHLRC  Protocol = "hlrc"
	ProtoOHLRC Protocol = "ohlrc"
	// ProtoAURC emulates Automatic Update Release Consistency (Iftode et
	// al.), the hardware-assisted protocol HLRC was derived from: write
	// propagation is free but write-through traffic is proportional to
	// store count. Not part of the paper's four measured prototypes.
	ProtoAURC Protocol = "aurc"
)

// String returns the protocol's canonical name.
func (p Protocol) String() string { return string(p) }

// HomeBased reports whether the protocol keeps per-page state at a home
// node (and therefore supports home-state replication and re-homing).
func (p Protocol) HomeBased() bool { return p == ProtoHLRC || p == ProtoOHLRC }

// ParseProtocol validates a protocol name.
func ParseProtocol(s string) (Protocol, error) {
	switch p := Protocol(s); p {
	case ProtoSeq, ProtoLRC, ProtoOLRC, ProtoHLRC, ProtoOHLRC, ProtoAURC:
		return p, nil
	}
	return "", fmt.Errorf("core: unknown protocol %q (have seq, lrc, olrc, hlrc, ohlrc, aurc)", s)
}

// Protocols lists the four SVM protocols in the paper's presentation
// order.
var Protocols = []Protocol{ProtoLRC, ProtoOLRC, ProtoHLRC, ProtoOHLRC}

// Recovery configures crash tolerance for the home-based protocols:
// how home-page state is kept recoverable, so a crashed home's pages
// can be re-homed onto a survivor.
type Recovery struct {
	// Replicas is the number of mirror nodes (the K next nodes in home
	// order) holding a recoverable copy of each home's page state. Zero
	// disables replication: a crash of a node that homes pages is then
	// unrecoverable and the run fails with a NodeDeadError.
	Replicas int

	// CheckpointEvery switches from eager mirroring (every applied diff
	// is forwarded to the replicas immediately) to periodic
	// checkpointing: homes ship modified pages to their replicas every
	// CheckpointEvery of simulated time, and writers retain flushed
	// diffs in a local log until a checkpoint covers them, replaying
	// them to the new home on recovery. Zero selects eager mirroring.
	CheckpointEvery sim.Time
}

// Enabled reports whether home-state replication is requested (possibly
// inconsistently; Run validates the combination).
func (r *Recovery) Enabled() bool { return r.Replicas > 0 || r.CheckpointEvery > 0 }

// Options configures a run.
type Options struct {
	Protocol  Protocol
	NumProcs  int
	PageBytes int
	Costs     paragon.Costs

	// Machine describes the simulated multicomputer: size, topology,
	// cost profile, and barrier algorithm. It is the preferred way to
	// configure the machine; the flat NumProcs/Mesh/Costs fields above
	// remain as a legacy view. Defaults reconciles the two: explicitly
	// set Machine fields win, unset ones inherit the flat fields, and
	// the result is mirrored back so both views agree.
	Machine Machine

	// GCThreshold is the per-node protocol memory (bytes) above which the
	// homeless protocols garbage-collect at the next barrier. Zero means
	// the TreadMarks-like default.
	GCThreshold int64

	// EagerDiff makes (non-overlapped) LRC create diffs at interval end
	// rather than on demand. Overlapped LRC always creates eagerly on the
	// co-processor, as in the paper.
	EagerDiff bool

	// HomeRoundRobin ignores the application's home placement and assigns
	// homes round-robin (ablation).
	HomeRoundRobin bool

	// OverlapLocks moves lock and barrier service onto the communication
	// co-processor in the overlapped protocols — the extension the paper
	// suggests in §4.3 ("this could be reduced to only 150us if this
	// service were moved to the co-processor") but did not implement.
	// Ignored for the non-overlapped protocols.
	OverlapLocks bool

	// Mesh models the Paragon's 2-D wormhole mesh at link granularity
	// (XY routing, per-link occupancy) instead of the default crossbar.
	Mesh bool

	// TraceLimit enables protocol event tracing, retaining up to this
	// many events (negative = unlimited). Zero disables tracing.
	TraceLimit int

	// Fault configures deterministic fault injection (message drops,
	// duplicates, delays, reordering, node slowdowns) plus the transport
	// reliability layer that recovers from it. The zero Plan is inert:
	// no injector is built and the message path — and therefore every
	// statistic — is exactly the fault-free one.
	Fault fault.Plan

	// Recovery configures home-state replication and re-homing for the
	// home-based protocols (required to survive Fault.Crashes of nodes
	// that home pages). The zero value disables it.
	Recovery Recovery

	// RunWorkers is the number of host threads driving one simulation:
	// at >= 2 the kernel is partitioned into per-node logical processes
	// advanced in parallel under a conservative lookahead window (see
	// sim.Kernel.Partition). Results are byte-identical at any value.
	// Configurations whose machinery is inherently cross-node-ordered
	// (mesh link contention, fault injection, crash recovery, tracing,
	// phase capture) fall back to the sequential kernel. 0 or 1 means
	// the classic sequential event loop.
	RunWorkers int
}

// Defaults fills unset fields and reconciles the Machine block with the
// legacy flat machine fields (NumProcs, Mesh, Costs).
func (o *Options) Defaults() {
	if o.Protocol == "" {
		o.Protocol = ProtoHLRC
	}
	if o.Machine.Nodes == 0 {
		o.Machine.Nodes = o.NumProcs
	}
	if o.Machine.Topology == "" && o.Mesh {
		o.Machine.Topology = TopoMesh
	}
	if o.Machine.Costs == (paragon.Costs{}) {
		o.Machine.Costs = o.Costs
	}
	o.Machine.Defaults()
	o.NumProcs = o.Machine.Nodes
	o.Mesh = o.Machine.Topology == TopoMesh
	o.Costs = o.Machine.Costs
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
	if o.GCThreshold == 0 {
		o.GCThreshold = 4 << 20
	}
}

// Overlapped reports whether the protocol uses the co-processor.
func (o *Options) Overlapped() bool {
	return o.Protocol == ProtoOLRC || o.Protocol == ProtoOHLRC
}

// Message kinds.
const (
	kLockAcq      = iota + 1 // requester -> lock manager
	kLockFwd                 // manager -> current owner
	kBarrier                 // node -> barrier manager
	kGCDone                  // node -> barrier manager (homeless GC rendezvous)
	kFetchDiffs              // faulting node -> writer (LRC/OLRC)
	kFetchPage               // faulting node -> copy holder / home
	kDiffFlush               // writer -> home (HLRC), or coproc-to-home (OHLRC)
	kMakeDiff                // compute -> own coproc (overlapped protocols)
	kMirror                  // home -> replica: mirrored diff or checkpoint page
	kCkptNote                // home -> writers: checkpoint coverage (prune diff logs)
	kRecoverPull             // new home -> writers: replay logged diffs
	kNodeDead                // recovery -> all: node declared dead, homes moved
	kBarrierUp               // tree barrier: child -> parent subtree report
	kBarrierDown             // tree barrier: parent -> child subtree release
	kPrefetch                // reader -> home: asynchronous page prefetch request
	kPrefetchResp            // home -> reader: best-effort page snapshot
	kMgrMirror               // manager -> backup: mirrored lock/barrier manager state
)

// IntervalRec is the write-notice record for one interval: the pages the
// processor modified. In the homeless protocols the record carries the
// full vector timestamp (needed to order diffs), which is the paper's
// explanation for their metadata growth; the home-based protocols omit it.
// The timestamp is stored sparsely: at large machine sizes only the
// active writers have non-zero components, so both the wire and memory
// cost are O(writers), not O(nodes).
type IntervalRec struct {
	Proc     int
	Interval int32
	VC       *vc.Sparse // nil on the wire under HLRC/OHLRC
	Pages    []int32
}

// Stamp returns the interval's identity for happens-before ordering.
func (r *IntervalRec) Stamp() vc.Stamp {
	return vc.Stamp{Proc: r.Proc, Interval: r.Interval, VC: r.VC}
}

// wireSize returns the encoded size of the record in bytes.
func (r *IntervalRec) wireSize() int {
	sz := 8 + 4*len(r.Pages)
	if r.VC != nil {
		sz += r.VC.WireSize()
	}
	return sz
}

// memSize returns the in-memory footprint for protocol memory accounting.
func (r *IntervalRec) memSize() int64 {
	sz := int64(48) + 4*int64(len(r.Pages))
	if r.VC != nil {
		sz += int64(r.VC.WireSize())
	}
	return sz
}

func recsWireSize(recs []IntervalRec) int {
	sz := 4
	for i := range recs {
		sz += recs[i].wireSize()
	}
	return sz
}

// grantInfo is the coherence payload piggybacked on lock grants and
// barrier releases.
type grantInfo struct {
	VC        vc.VC // the releaser's / manager's merged vector clock
	Intervals []IntervalRec
	GC        bool // homeless protocols: run garbage collection (barrier only)
}

func (g *grantInfo) wireSize() int {
	return g.VC.WireSize() + recsWireSize(g.Intervals)
}

// Engine is one node's protocol instance. Fault and synchronization entry
// points run on the application proc and may block; message handlers are
// installed on the node's dispatchers at construction.
type Engine interface {
	// ReadFault and WriteFault bring the page to a readable / writable
	// state. They run on the application proc.
	ReadFault(page int)
	WriteFault(page int)
	// Acquire, Release and Barrier implement the Splash-2 synchronization
	// primitives.
	Acquire(lock int)
	Release(lock int)
	Barrier(id int)
	// Finish is called once after the worker (and any gather phase)
	// completes, letting engines verify internal invariants.
	Finish()
}

func badKind(kind int) (sim.Time, func()) {
	panic(fmt.Sprintf("core: unexpected message kind %d", kind))
}

// msgKindName renders protocol message kinds for fault watchdog reports.
func msgKindName(kind int) string {
	switch kind {
	case kLockAcq:
		return "lock-acquire"
	case kLockFwd:
		return "lock-forward"
	case kBarrier:
		return "barrier"
	case kGCDone:
		return "gc-done"
	case kFetchDiffs:
		return "fetch-diffs"
	case kFetchPage:
		return "fetch-page"
	case kDiffFlush:
		return "diff-flush"
	case kMakeDiff:
		return "make-diff"
	case kMirror:
		return "mirror"
	case kCkptNote:
		return "ckpt-note"
	case kRecoverPull:
		return "recover-pull"
	case kNodeDead:
		return "node-dead"
	case kBarrierUp:
		return "barrier-up"
	case kBarrierDown:
		return "barrier-down"
	case kPrefetch:
		return "prefetch"
	case kPrefetchResp:
		return "prefetch-resp"
	case kMgrMirror:
		return "mgr-mirror"
	}
	return fmt.Sprintf("kind-%d", kind)
}

// pageWN is one write notice attached to a page on a node that has not
// yet brought the page up to date.
type pageWN struct {
	rec  *IntervalRec // the interval this notice came from
	diff *mem.Diff    // LRC: fetched diff, nil until fetched
}
