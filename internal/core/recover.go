package core

import (
	"fmt"
	"sort"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/vc"
)

// This file implements crash recovery for the home-based protocols:
// replication of home-page state onto the K next nodes in home order
// (eagerly mirrored diffs, or periodic checkpoints plus writer-side
// diff logs), failure detection through the transport watchdog, and a
// re-homing protocol that promotes a surviving replica to be the new
// home and redirects in-flight fetches and diff flushes to it.
//
// Crash semantics: a crashed node loses its volatile protocol state —
// home-page copies, flush vectors, pending lists, and cached read-only
// pages. Its private working state (dirty pages with their twins, the
// vector clock, lock tokens) is assumed to survive, modeling an
// application-transparent local checkpoint of the worker itself. This
// file recovers the *home* role; mgr.go fails over the lock- and
// barrier-manager roles the same way, mirrored onto the same backups.

// recovery is the per-run recovery configuration and state.
type recovery struct {
	k        int      // replicas per home
	every    sim.Time // checkpoint period; 0 = eager mirroring
	crashes  []fault.Crash
	declared map[int]bool
}

// mirrorPage is a replica's recoverable copy of one page's home state.
type mirrorPage struct {
	// seeded is false until an initial image or checkpoint arrives;
	// diffs arriving earlier are parked rather than applied to nothing.
	seeded  bool
	data    []float64
	vc      *vc.Sparse
	pending []*diffFlush
}

// mirrorMsg is the kMirror payload: either one mirrored diff or a full
// checkpoint page image.
type mirrorMsg struct {
	Diff *diffFlush // non-nil: mirrored diff
	Page int        // checkpoint form:
	Data []float64
	VC   *vc.Sparse
}

// ckptEntry tells writers which of their diffs a checkpoint covers.
type ckptEntry struct {
	Page int
	VC   *vc.Sparse
}

type ckptNote struct {
	Entries []ckptEntry
}

type recoverPull struct {
	Entries []ckptEntry // per re-homed page: the flush vector the new home holds
}

// initRecovery validates and installs the recovery subsystem. Called
// whenever the plan crashes nodes or replication is requested.
func (s *System) initRecovery() error {
	opts := &s.Opts
	r := &opts.Recovery
	if !opts.Protocol.HomeBased() {
		return fmt.Errorf("core: crash recovery requires a home-based protocol (hlrc, ohlrc), got %q", opts.Protocol)
	}
	if r.CheckpointEvery > 0 && r.Replicas == 0 {
		return fmt.Errorf("core: Recovery.CheckpointEvery requires Replicas >= 1")
	}
	if r.Replicas >= opts.NumProcs {
		return fmt.Errorf("core: Recovery.Replicas=%d needs at least %d nodes, have %d",
			r.Replicas, r.Replicas+1, opts.NumProcs)
	}
	for _, c := range opts.Fault.Crashes {
		if c.Node < 0 || c.Node >= opts.NumProcs {
			return fmt.Errorf("core: crash of node %d outside machine of %d nodes", c.Node, opts.NumProcs)
		}
		if c.At <= 0 || (!c.Permanent() && c.RestartAt <= c.At) {
			return fmt.Errorf("core: crash of node %d has invalid schedule [%v, %v)", c.Node, c.At, c.RestartAt)
		}
	}
	s.rec = &recovery{
		k:        r.Replicas,
		every:    r.CheckpointEvery,
		crashes:  opts.Fault.Crashes,
		declared: make(map[int]bool),
	}
	s.M.OnSuspect = func(dead, reporter int) { s.declareDead(dead, reporter) }
	s.M.OnRejoin = func(node int) { s.rejoin(node) }
	return nil
}

// replicasOf returns the nodes mirroring home h: the next k nodes in
// home-assignment order.
func (s *System) replicasOf(h int) []int {
	n := s.Opts.NumProcs
	out := make([]int, 0, s.rec.k)
	for i := 1; i <= s.rec.k; i++ {
		out = append(out, (h+i)%n)
	}
	return out
}

// aliveSuccessor deterministically elects the new home for dead's
// pages: the first replica not currently down.
func (s *System) aliveSuccessor(dead int) int {
	for _, cand := range s.replicasOf(dead) {
		if !s.M.Down(cand) {
			return cand
		}
	}
	return -1
}

// crashOf finds the schedule entry for the node's current (or most
// recent) outage.
func (r *recovery) crashOf(node int, now sim.Time) (fault.Crash, bool) {
	var last fault.Crash
	found := false
	for _, c := range r.crashes {
		if c.Node == node && c.At <= now {
			last = c
			found = true
		}
	}
	return last, found
}

// seedReplicas installs the initial page images on every home's
// replicas. Runs at startup (staging still populated); the copies are
// charged to protocol memory, not network traffic — they model the
// replicas participating in initialization.
func (s *System) seedReplicas(staging []float64) {
	if s.rec.k == 0 {
		return
	}
	words := s.Space.PageWords
	for pg := 0; pg < s.Space.NumPages(); pg++ {
		for _, rep := range s.replicasOf(s.homes[pg]) {
			e := s.Engines[rep].(*hlrcEngine)
			mp := e.mirrorOf(pg)
			mp.seeded = true
			mp.data = make([]float64, words)
			copy(mp.data, staging[pg*words:(pg+1)*words])
			e.st().MemAlloc(int64(s.Space.PageBytes()))
		}
	}
}

// startCkptTimers arms the periodic checkpoint on every node. The timer
// stops re-arming once all workers finish so the event queue drains.
func (s *System) startCkptTimers() {
	if s.rec.every == 0 {
		return
	}
	for i := range s.Engines {
		e := s.Engines[i].(*hlrcEngine)
		var tick func()
		tick = func() {
			if s.liveWorkers.Load() == 0 {
				return
			}
			if !s.M.Down(e.self) {
				e.shipCheckpoint()
			}
			s.K.After(s.rec.every, tick)
		}
		s.K.After(s.rec.every, tick)
	}
}

// declareDead runs the failure-declaration protocol: re-home the dead
// node's pages, fail over any synchronization-manager roles it held,
// reclaim stranded lock tokens, and redirect in-flight traffic.
// Idempotent; runs in event context at the instant of declaration (the
// simulation shortcut for a distributed agreement round).
func (s *System) declareDead(dead, reporter int) {
	r := s.rec
	if r == nil || r.declared[dead] {
		return
	}
	r.declared[dead] = true
	now := s.K.Now()
	if reporter >= 0 {
		if c, ok := r.crashOf(dead, now); ok {
			s.M.Nodes[reporter].Stats.Detect = now - c.At
		}
	}
	s.rehomePages(dead, now)
	if s.fatal == nil {
		s.failoverManagers(dead, now)
	}
}

// rehomePages elects a survivor for every page homed at dead, promotes
// its mirror state to authoritative home state, and redirects in-flight
// fetches and flushes.
func (s *System) rehomePages(dead int, now sim.Time) {
	r := s.rec
	var pages []int
	for pg, h := range s.homes {
		if h == dead {
			pages = append(pages, pg)
		}
	}
	if len(pages) == 0 {
		return // no page depended on the dead node's volatile state
	}

	succ := -1
	if r.k > 0 {
		succ = s.aliveSuccessor(dead)
	}
	if succ < 0 {
		c, _ := r.crashOf(dead, now)
		reason := "no replica holds its home pages (Recovery.Replicas=0)"
		if r.k > 0 {
			reason = "all replicas are down"
		}
		s.fatal = &fault.NodeDeadError{
			Node:     dead,
			At:       c.At,
			Restarts: !c.Permanent(),
			Role:     "home",
			Reason:   reason,
		}
		s.K.Stop()
		return
	}

	ne := s.Engines[succ].(*hlrcEngine)
	de := s.Engines[dead].(*hlrcEngine)
	var promoteCost sim.Time
	for _, pg := range pages {
		s.homes[pg] = succ
		ne.adoptPage(pg, de)
		ne.st().Counts.PagesRehomed++
		promoteCost += s.Opts.Costs.TwinCost(s.Space.PageBytes())
	}
	// Promotion work competes with whatever the new home was computing.
	s.M.Nodes[succ].CPU.Steal(promoteCost)

	// Withdraw unacknowledged data-plane requests addressed to the dead
	// node and re-send them to each page's new home (the requesters'
	// timeout-resend). Synchronization traffic is redirected separately
	// once the manager roles have moved (failoverManagers, mgr.go).
	recalled := s.M.RecallPending(dead, func(m paragon.Msg) bool {
		return m.Kind == kFetchPage || m.Kind == kDiffFlush
	})
	for _, msg := range recalled {
		var pg int
		switch b := msg.Body.(type) {
		case *fetchPageReq:
			pg = b.Page
		case *diffFlush:
			pg = b.Page
		default:
			continue
		}
		s.M.Nodes[msg.From].Send(s.homes[pg], msg)
	}

	// Checkpoint mode: ask the surviving writers to replay logged diffs
	// the promoted checkpoint does not cover.
	if r.every > 0 {
		ne.broadcastPull(pages)
	}
	// The promoted pages now replicate to the new home's successors.
	ne.reseedReplicas(pages)
	for _, pg := range pages {
		ne.homeDrain(pg)
	}
}

// rejoin runs when a crashed node restarts: its volatile protocol state
// is gone. If its pages were never re-homed (the crash produced no
// traffic towards it), it self-reports so the normal recovery path
// runs; then stale cached state is dropped and its replica mirrors are
// resynchronized from the surviving homes.
func (s *System) rejoin(node int) {
	r := s.rec
	if r == nil {
		return
	}
	if !r.declared[node] {
		homesAny := false
		for _, h := range s.homes {
			if h == node {
				homesAny = true
				break
			}
		}
		if homesAny {
			s.declareDead(node, node)
			if s.fatal != nil {
				return
			}
		}
	}
	e := s.Engines[node].(*hlrcEngine)
	e.wipeVolatile()
	// Lock reclamation may have closed this node's open interval on
	// paper (synthCloseOpen) to hand out its write notices with the
	// revoked token. Make the close real now: flush the surviving dirty
	// pages to their current homes so fetches parked on those notices
	// drain, instead of waiting for this node's next natural close.
	if b := &e.base; b.synthClosed {
		b.synthClosed = false
		if len(b.dirty) > 0 {
			e.node.CPU.Steal(b.co.closeCost())
			b.co.closeCommit()
		}
	}
	// A barrier release that completed on the promoted manager while
	// this ex-manager was down is parked in its local-release slot;
	// deliver it now that the app proc may run again.
	if b := &e.base; b.bmgr != nil && b.bmgr.localRelease != nil && b.bmgr.localWait != nil {
		w := b.bmgr.localWait
		b.bmgr.localWait = nil
		w.Unpark()
	}
	// Resync this node's replica mirrors from the current homes.
	if r.k > 0 {
		for h := range s.Engines {
			if h == node || s.M.Down(h) {
				continue
			}
			for _, rep := range s.replicasOf(h) {
				if rep != node {
					continue
				}
				s.Engines[h].(*hlrcEngine).shipFullPagesTo(node)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Engine-side recovery state

func (e *hlrcEngine) recovering() bool { return e.sys.rec != nil && e.sys.rec.k > 0 }

func (e *hlrcEngine) mirrorOf(pg int) *mirrorPage {
	mp, ok := e.mirrors[pg]
	if !ok {
		mp = &mirrorPage{}
		e.mirrors[pg] = mp
	}
	return mp
}

// mirrorDiff forwards a diff just incorporated into home state to every
// replica of this home. Eager mode mirrors every diff; checkpoint mode
// only mirrors the home's own writes (remote writers keep their diffs
// in a local log until a checkpoint covers them).
func (e *hlrcEngine) mirrorDiff(df *diffFlush) {
	if !e.recovering() {
		return
	}
	size := df.Diff.WireSize() + df.Dep.WireSize()
	for _, rep := range e.sys.replicasOf(e.self) {
		e.st().ReplicaBytes += int64(size)
		e.node.Send(rep, paragon.Msg{
			Kind:   kMirror,
			Size:   size,
			Class:  stats.ClassProtocol,
			Target: e.dataTarget(),
			Body:   &mirrorMsg{Diff: df},
		})
	}
}

// handleMirror runs on a replica (or on a just-promoted home receiving
// stragglers from before the crash).
func (e *hlrcEngine) handleMirror(m paragon.Msg) (sim.Time, func()) {
	mm := m.Body.(*mirrorMsg)
	var work sim.Time
	if mm.Diff != nil {
		work = e.costs().DiffApplyCost(mm.Diff.Diff.Words())
	} else {
		work = e.costs().TwinCost(e.sys.Space.PageBytes())
	}
	return work, func() {
		if mm.Diff != nil {
			df := mm.Diff
			if e.home(df.Page) == e.self {
				// We were promoted meanwhile: the mirror stream merges
				// into live home state (diff application is idempotent).
				e.homeReceiveDiff(df)
				return
			}
			e.mirrorApply(df)
			return
		}
		if e.home(mm.Page) == e.self {
			e.installCkptAsHome(mm)
			return
		}
		mp := e.mirrorOf(mm.Page)
		if mp.seeded && !covers(mm.VC, e.mirrorVC(mp)) {
			return // stale checkpoint from before a re-homing
		}
		if mp.data == nil {
			mp.data = make([]float64, e.sys.Space.PageWords)
			e.st().MemAlloc(int64(e.sys.Space.PageBytes()))
		}
		copy(mp.data, mm.Data)
		mp.vc = mm.VC.Copy()
		mp.seeded = true
		e.drainMirror(mp)
	}
}

func (e *hlrcEngine) mirrorVC(mp *mirrorPage) *vc.Sparse {
	if mp.vc == nil {
		mp.vc = vc.NewSparse(e.sys.Opts.NumProcs)
	}
	return mp.vc
}

func (e *hlrcEngine) mirrorApply(df *diffFlush) {
	mp := e.mirrorOf(df.Page)
	if !mp.seeded || !covers(e.mirrorVC(mp), df.Dep) {
		mp.pending = append(mp.pending, df)
		return
	}
	df.Diff.Apply(mp.data)
	mp.vc.RaiseTo(df.Writer, df.Interval)
	e.drainMirror(mp)
}

func (e *hlrcEngine) drainMirror(mp *mirrorPage) {
	if !mp.seeded {
		return
	}
	f := e.mirrorVC(mp)
	for progress := true; progress; {
		progress = false
		for i, df := range mp.pending {
			if df != nil && covers(f, df.Dep) {
				mp.pending[i] = nil
				df.Diff.Apply(mp.data)
				f.RaiseTo(df.Writer, df.Interval)
				progress = true
			}
		}
	}
	live := mp.pending[:0]
	for _, df := range mp.pending {
		if df != nil {
			live = append(live, df)
		}
	}
	mp.pending = live
}

// installCkptAsHome merges a straggler full-page checkpoint into live
// home state (we were promoted and the old home's last checkpoint was
// still in flight). Only applied if it is ahead of what we hold.
func (e *hlrcEngine) installCkptAsHome(mm *mirrorMsg) {
	f := e.flushOf(mm.Page)
	if !covers(mm.VC, f) {
		return
	}
	p := e.pt.Materialize(mm.Page)
	if p.Twin != nil {
		local := mem.ComputeDiff(mm.Page, p.Twin, p.Data)
		copy(p.Data, mm.Data)
		local.Apply(p.Data)
		copy(p.Twin, mm.Data)
	} else {
		copy(p.Data, mm.Data)
	}
	f.MaxWith(mm.VC)
	e.homeDrain(mm.Page)
}

// adoptPage promotes this node's mirror of pg to authoritative home
// state, merging any local dirty copy: the local working copy becomes
// mirror data plus this node's own uncommitted writes, and the twin is
// reset to the mirror image so the eventual diff captures exactly those
// writes. Parked requests at the old home migrate here.
func (e *hlrcEngine) adoptPage(pg int, old *hlrcEngine) {
	m := e.pages.at(pg)
	mp := e.mirrorOf(pg)
	p := e.pt.Materialize(pg)
	if !mp.seeded {
		// Should not happen (replicas are seeded at startup), but an
		// unseeded mirror means we only have our own copy; keep it.
		mp.data = nil
	}
	if mp.data != nil {
		if p.Twin != nil {
			// Local writes not yet diffed (dirty page, or an OHLRC diff
			// still queued on the coproc): layer them over the mirror
			// image and reset the twin so the eventual diff captures
			// exactly those writes.
			local := mem.ComputeDiff(pg, p.Twin, p.Data)
			copy(p.Data, mp.data)
			local.Apply(p.Data)
			copy(p.Twin, mp.data)
		} else {
			copy(p.Data, mp.data)
		}
		e.st().MemFree(int64(e.sys.Space.PageBytes()))
	}
	f := e.flushOf(pg)
	f.MaxWith(e.mirrorVC(mp))
	m.pendingDiff = append(m.pendingDiff, mp.pending...)
	delete(e.mirrors, pg)
	if p.State != mem.ReadWrite {
		if covers(f, m.seen) {
			p.State = mem.ReadOnly
		} else {
			p.State = mem.Invalid
		}
	}
	// Fetches parked at the dead home move here: the requesters' reply
	// ports are still live, so answers flow straight back to them.
	om := old.pages.at(pg)
	m.pendingFetch = append(m.pendingFetch, om.pendingFetch...)
	om.pendingFetch = nil
	om.pendingDiff = nil
	e.ckptDirty[pg] = true
}

// reseedReplicas ships full images of newly adopted pages to this
// node's own replicas, so the pages stay crash-tolerant after the
// promotion.
func (e *hlrcEngine) reseedReplicas(pages []int) {
	if !e.recovering() {
		return
	}
	for _, pg := range pages {
		e.shipFullPage(pg, e.sys.replicasOf(e.self))
	}
}

// shipFullPage sends one checkpoint-style page image to the targets.
func (e *hlrcEngine) shipFullPage(pg int, targets []int) {
	p := e.pt.Page(pg)
	if p.Data == nil {
		return
	}
	data := make([]float64, len(p.Data))
	copy(data, p.Data)
	f := e.flushOf(pg).Copy()
	size := e.sys.Space.PageBytes() + f.WireSize()
	for _, rep := range targets {
		if rep == e.self {
			continue
		}
		e.st().ReplicaBytes += int64(size)
		e.node.Send(rep, paragon.Msg{
			Kind:   kMirror,
			Size:   size,
			Class:  stats.ClassProtocol,
			Target: e.dataTarget(),
			Body:   &mirrorMsg{Page: pg, Data: data, VC: f},
		})
	}
}

// shipFullPagesTo resynchronizes one rejoined replica with every page
// this node homes.
func (e *hlrcEngine) shipFullPagesTo(node int) {
	for pg, h := range e.sys.homes {
		if h == e.self {
			e.shipFullPage(pg, []int{node})
		}
	}
}

// shipCheckpoint ships every page modified since the last checkpoint to
// this home's replicas and tells the writers what is now covered.
func (e *hlrcEngine) shipCheckpoint() {
	if len(e.ckptDirty) == 0 {
		return
	}
	pages := make([]int, 0, len(e.ckptDirty))
	for pg := range e.ckptDirty {
		if e.home(pg) == e.self {
			pages = append(pages, pg)
		}
	}
	e.ckptDirty = make(map[int]bool)
	if len(pages) == 0 {
		return
	}
	sort.Ints(pages)
	reps := e.sys.replicasOf(e.self)
	note := &ckptNote{}
	var copyCost sim.Time
	for _, pg := range pages {
		e.shipFullPage(pg, reps)
		note.Entries = append(note.Entries, ckptEntry{Page: pg, VC: e.flushOf(pg).Copy()})
		copyCost += e.costs().TwinCost(e.sys.Space.PageBytes())
	}
	e.node.CPU.Steal(copyCost)
	size := 4
	for i := range note.Entries {
		size += 4 + note.Entries[i].VC.WireSize()
	}
	for n := 0; n < e.sys.Opts.NumProcs; n++ {
		if n == e.self {
			continue
		}
		e.node.Send(n, paragon.Msg{
			Kind:   kCkptNote,
			Size:   size,
			Class:  stats.ClassProtocol,
			Target: e.dataTarget(),
			Body:   note,
		})
	}
}

// logDiff retains a flushed diff in the writer's local log (checkpoint
// mode): until a checkpoint note covers it, this node may be asked to
// replay it for a promoted home.
func (e *hlrcEngine) logDiff(df *diffFlush) {
	if e.sys.rec == nil || e.sys.rec.every == 0 || e.aurc {
		return
	}
	e.dlog[df.Page] = append(e.dlog[df.Page], df)
	e.st().MemAlloc(df.Diff.MemSize())
}

// handleCkptNote prunes the diff log: everything a checkpoint covers is
// recoverable from the replicas and need not be replayed by us.
func (e *hlrcEngine) handleCkptNote(m paragon.Msg) (sim.Time, func()) {
	return e.costs().LockHandling, func() {
		note := m.Body.(*ckptNote)
		for _, ent := range note.Entries {
			dl := e.dlog[ent.Page]
			if len(dl) == 0 {
				continue
			}
			keep := dl[:0]
			for _, df := range dl {
				if df.Interval > ent.VC.Get(e.self) {
					keep = append(keep, df)
				} else {
					e.st().MemFree(df.Diff.MemSize())
				}
			}
			if len(keep) == 0 {
				delete(e.dlog, ent.Page)
			} else {
				e.dlog[ent.Page] = keep
			}
		}
	}
}

// broadcastPull (checkpoint mode) asks every surviving writer to replay
// logged diffs beyond what the promoted checkpoint covers.
func (e *hlrcEngine) broadcastPull(pages []int) {
	pull := &recoverPull{}
	size := 4
	for _, pg := range pages {
		f := e.flushOf(pg).Copy()
		pull.Entries = append(pull.Entries, ckptEntry{Page: pg, VC: f})
		size += 4 + f.WireSize()
	}
	for n := 0; n < e.sys.Opts.NumProcs; n++ {
		if n == e.self {
			continue
		}
		e.node.Send(n, paragon.Msg{
			Kind:   kRecoverPull,
			Size:   size,
			Class:  stats.ClassProtocol,
			Target: e.dataTarget(),
			Body:   pull,
		})
	}
}

// handleRecoverPull replays logged diffs the new home is missing. The
// replayed flushes travel the normal kDiffFlush path, so causal
// ordering (Dep gating) and idempotent application make the replay
// order-independent.
func (e *hlrcEngine) handleRecoverPull(m paragon.Msg) (sim.Time, func()) {
	return e.costs().LockHandling, func() {
		pull := m.Body.(*recoverPull)
		for _, ent := range pull.Entries {
			for _, df := range e.dlog[ent.Page] {
				if df.Interval > ent.VC.Get(e.self) {
					e.sendDiff(df)
				}
			}
		}
	}
}

// wipeVolatile models the restart of a crashed node: cached read-only
// copies and any stale home-side state are gone. Dirty pages (with
// their twins) survive as private worker state and flush to the pages'
// current homes at the next interval close.
func (e *hlrcEngine) wipeVolatile() {
	e.pages.each(func(pg int, m *hlrcPage) {
		// No page is homed here anymore (re-homing ran first).
		if m.flushVC != nil {
			e.st().MemFree(e.vecBytes())
			m.flushVC = nil
		}
		m.pendingDiff = nil
		m.pendingFetch = nil
		// Home-wait parkers must re-evaluate: the page's home moved.
		for _, w := range m.waiters {
			w.Unpark()
		}
		m.waiters = nil
	})
	// Cached read-only copies are gone too. This follows the page table,
	// not the protocol state: seeded initial copies exist on nodes whose
	// protocol state was never touched.
	e.pt.Each(func(pg int, p *mem.Page) {
		if p.State == mem.ReadOnly {
			p.State = mem.Invalid
		}
	})
	for pg, mp := range e.mirrors {
		if mp.data != nil {
			e.st().MemFree(int64(e.sys.Space.PageBytes()))
		}
		delete(e.mirrors, pg)
	}
	e.ckptDirty = make(map[int]bool)
}

// homeSelfFlush incorporates the home's own writes to a page it homes:
// the flush vector advances locally and the diff is mirrored eagerly in
// both recovery modes (the home's writes exist nowhere else).
func (e *hlrcEngine) homeSelfFlush(df *diffFlush) {
	f := e.flushOf(df.Page)
	f.RaiseTo(df.Writer, df.Interval)
	e.ckptDirty[df.Page] = true
	e.mirrorDiff(df)
	e.homeDrain(df.Page)
}
