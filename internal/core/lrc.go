package core

import (
	"fmt"
	"sort"

	"gosvm/internal/mem"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/trace"
	"gosvm/internal/vc"
)

// lrcEngine implements the standard homeless Lazy Release Consistency
// protocol (TreadMarks-style) and its overlapped variant OLRC. Updates
// live as distributed diffs at their writers; faulting nodes collect the
// diffs named by their write notices and apply them in happens-before
// order. Diffs and write notices accumulate until a garbage collection,
// triggered at a barrier when protocol memory exceeds a threshold.
type lrcEngine struct {
	base
	overlapped bool
	eager      bool
	pages      chunked[lrcPage]
	// diffs holds the diffs this node created or fetched (TreadMarks
	// caches fetched diffs so that, for migratory data, a single request
	// to the last writer returns the whole chain), keyed by
	// (writer, page, interval) and retained until garbage collection.
	diffs map[diffKey]*mem.Diff
}

type diffKey struct {
	proc     int32
	page     int32
	interval int32
}

// lrcPage is per-page protocol state on one node.
type lrcPage struct {
	wns []pageWN // write notices not yet reflected in the local copy
	// appliedVC[j] is the highest interval of writer j incorporated into
	// the local Data copy. Nil until a copy exists. Homeless protocols
	// carry these per-page vectors — part of their memory story.
	appliedVC *vc.Sparse
	// pending is the own closed interval whose diff has not been created
	// yet (lazy diffing); the twin is still alive.
	pending *IntervalRec
	// holder is the last known node holding a full copy, stored as
	// node+1. Zero means "never updated", which resolves to the page's
	// home (where the initial copy is seeded) without having to
	// materialize per-page state for the whole address space.
	holder int32
	// inflight marks an OLRC diff computation in progress on the coproc.
	inflight   bool
	twinWaiter []*sim.Proc
	// pendingReqs are fetch-diff requests waiting for the inflight diff.
	pendingReqs []paragon.Msg
}

type fetchDiffsReq struct {
	Page      int
	Procs     []int32 // writer of each requested diff
	Intervals []int32
}

type fetchDiffsResp struct {
	Found []bool     // whether the holder had each requested diff
	Diffs []mem.Diff // aligned with the request; zero value when !Found
}

type lrcFetchPageReq struct {
	Page int
}

type lrcFetchPageResp struct {
	Data      []float64 // nil if the holder has no copy
	AppliedVC *vc.Sparse
	Hint      int // where to retry when Data is nil
}

const wnEntryBytes = 24 // per-page write-notice list entry

func newLRCEngine(sys *System, self int, overlapped bool) *lrcEngine {
	e := &lrcEngine{
		overlapped: overlapped,
		eager:      sys.Opts.EagerDiff && !overlapped,
		diffs:      make(map[diffKey]*mem.Diff),
	}
	e.base.init(sys, self, e)
	e.pages = newChunked[lrcPage](sys.Space.NumPages())
	e.node.InstallCompute(e.handleCompute)
	e.node.InstallCoproc(e.handleCoproc)
	if self == barrierManager {
		thr := sys.Opts.GCThreshold
		sys.gcDecider = func(reports []*barrierReport) bool {
			for _, rep := range reports {
				if rep.ProtoMem > thr {
					return true
				}
			}
			return false
		}
	}
	return e
}

func (e *lrcEngine) dataTarget() paragon.Target {
	if e.overlapped {
		return paragon.ToCoproc
	}
	return paragon.ToCompute
}

// holderOf resolves the copy-holder hint for page: the recorded holder,
// or the page's home while no hint has been recorded.
func (e *lrcEngine) holderOf(page int) int {
	if h := e.pages.at(page).holder; h != 0 {
		return int(h) - 1
	}
	return e.sys.homes[page]
}

// ---------------------------------------------------------------------------
// Faults

func (e *lrcEngine) ReadFault(page int) {
	e.use(e.costs().PageFault, stats.CatData)
	e.st().Counts.ReadMisses++
	e.emit(trace.ReadMiss, page, -1, 0)
	e.bringUpToDate(page, stats.CatData)
	e.pt.Page(page).State = mem.ReadOnly
}

func (e *lrcEngine) WriteFault(page int) {
	p := e.pt.Page(page)
	if p.State == mem.Invalid {
		e.use(e.costs().PageFault, stats.CatData)
		e.st().Counts.ReadMisses++
		e.bringUpToDate(page, stats.CatData)
	} else {
		e.use(e.costs().PageFault, stats.CatProtocol)
	}
	e.st().Counts.WriteFaults++
	e.emit(trace.WriteFault, page, -1, 0)
	// A previous interval's lazy diff still owns the twin: materialize it
	// before re-twinning.
	e.commitOwnDiff(page, true)
	e.use(e.costs().TwinCost(e.sys.Space.PageBytes()), stats.CatProtocol)
	p.MakeTwin(e.pool())
	e.st().MemAlloc(int64(e.sys.Space.PageBytes()))
	p.State = mem.ReadWrite
	e.markDirty(page)
}

// bringUpToDate makes the local copy reflect every write notice: fetch a
// base copy if needed, collect missing diffs from their writers, and apply
// them in causal order. waitCat classifies the stall time (data transfer
// during normal faults, GC during garbage-collection validation).
func (e *lrcEngine) bringUpToDate(page int, waitCat stats.Category) {
	m := e.pages.at(page)
	e.commitOwnDiff(page, true)
	p := e.pt.Page(page)

	if p.Data == nil {
		e.fetchBaseCopy(page, waitCat)
		p = e.pt.Page(page)
	}
	e.ensureAppliedVC(page)

	// Discard notices already reflected in the base copy.
	live := m.wns[:0]
	for _, wn := range m.wns {
		if wn.rec.Interval <= m.appliedVC.Get(wn.rec.Proc) {
			e.st().MemFree(wnEntryBytes)
			continue
		}
		live = append(live, wn)
	}
	m.wns = live
	if len(m.wns) == 0 {
		return
	}

	// Collect missing diffs. Following TreadMarks, ask the most recent
	// writer first for the entire missing set: for migratory data it has
	// fetched and cached every earlier diff, so one round trip suffices.
	// Anything it lacks is requested from the next most recent writer,
	// and so on — each round is guaranteed to obtain at least the
	// target's own diffs.
	for {
		var missing []int // indexes into m.wns
		for i := range m.wns {
			if m.wns[i].diff == nil {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			break
		}
		sort.Slice(missing, func(a, b int) bool {
			ra, rb := m.wns[missing[a]].rec, m.wns[missing[b]].rec
			if ra.Interval != rb.Interval {
				return ra.Interval > rb.Interval
			}
			return ra.Proc > rb.Proc
		})
		target := m.wns[missing[0]].rec.Proc
		req := &fetchDiffsReq{Page: page}
		for _, i := range missing {
			req.Procs = append(req.Procs, int32(m.wns[i].rec.Proc))
			req.Intervals = append(req.Intervals, m.wns[i].rec.Interval)
		}
		t0 := e.app().Now()
		resp := e.node.Call(e.app(), target, paragon.Msg{
			Kind:   kFetchDiffs,
			Size:   12 + 8*len(req.Intervals),
			Class:  stats.ClassProtocol,
			Target: e.dataTarget(),
			Body:   req,
		})
		e.st().Add(waitCat, e.app().Now()-t0)
		dr := resp.Body.(*fetchDiffsResp)
		got := 0
		for j, i := range missing {
			if !dr.Found[j] {
				continue
			}
			d := dr.Diffs[j]
			m.wns[i].diff = &d
			e.cacheDiff(m.wns[i].rec.Proc, page, m.wns[i].rec.Interval, &d)
			got++
		}
		if got == 0 {
			panic(fmt.Sprintf("core: node %d got no diffs for page %d from writer %d",
				e.self, page, target))
		}
	}

	// Apply in happens-before order.
	order := make([]vc.Stamp, len(m.wns))
	for i, wn := range m.wns {
		order[i] = wn.rec.Stamp()
	}
	vc.TopoSort(order)
	opCat := stats.CatProtocol
	if waitCat == stats.CatGC {
		opCat = stats.CatGC
	}
	var cost sim.Time
	for _, s := range order {
		var wn *pageWN
		for i := range m.wns {
			if m.wns[i].rec.Proc == s.Proc && m.wns[i].rec.Interval == s.Interval {
				wn = &m.wns[i]
				break
			}
		}
		cost += e.costs().DiffApplyCost(wn.diff.Words())
		e.emit(trace.DiffApply, page, s.Proc, int64(wn.diff.Words()))
		wn.diff.Apply(p.Data)
		m.appliedVC.RaiseTo(s.Proc, s.Interval)
		e.st().Counts.DiffsApplied++
		e.st().MemFree(wnEntryBytes)
	}
	e.use(cost, opCat)
	m.wns = nil
}

// fetchBaseCopy obtains a full page copy, chasing holder hints.
func (e *lrcEngine) fetchBaseCopy(page int, waitCat stats.Category) {
	m := e.pages.at(page)
	holder := e.holderOf(page)
	for tries := 0; ; tries++ {
		if tries > 2*e.sys.Opts.NumProcs {
			panic(fmt.Sprintf("core: node %d cannot locate a copy of page %d", e.self, page))
		}
		t0 := e.app().Now()
		resp := e.node.Call(e.app(), holder, paragon.Msg{
			Kind:   kFetchPage,
			Size:   8,
			Class:  stats.ClassProtocol,
			Target: e.dataTarget(),
			Body:   &lrcFetchPageReq{Page: page},
		})
		e.st().Add(waitCat, e.app().Now()-t0)
		pr := resp.Body.(*lrcFetchPageResp)
		if pr.Data == nil {
			holder = pr.Hint
			continue
		}
		p := e.pt.Materialize(page)
		copy(p.Data, pr.Data)
		// appliedVC is nil whenever Data is nil (GC frees them together),
		// so merging into the fresh zero vector equals replacement.
		e.ensureAppliedVC(page)
		m.appliedVC.MaxWith(pr.AppliedVC)
		m.holder = int32(holder) + 1
		e.st().Counts.PagesFetched++
		e.emit(trace.PageFetch, page, holder, 0)
		return
	}
}

// ensureAppliedVC lazily allocates the page's applied-interval vector
// (all zeros: the seed image reflects no intervals).
func (e *lrcEngine) ensureAppliedVC(page int) {
	m := e.pages.at(page)
	if m.appliedVC == nil {
		m.appliedVC = vc.NewSparse(e.sys.Opts.NumProcs)
		e.st().MemAlloc(e.vecBytes())
	}
}

// commitOwnDiff materializes the lazy diff of a previously closed interval
// (and, under OLRC, waits out an in-flight co-processor diff).
func (e *lrcEngine) commitOwnDiff(page int, charge bool) {
	m := e.pages.at(page)
	for m.inflight {
		m.twinWaiter = append(m.twinWaiter, e.app())
		e.app().ParkArg("lrc twin busy page", int64(page))
	}
	if m.pending == nil {
		return
	}
	if charge {
		e.use(e.costs().DiffCreateCost(e.sys.Space.PageWords), stats.CatProtocol)
		if m.pending == nil {
			// A remote fetch materialized the diff while we were charging.
			return
		}
	}
	e.materializeDiff(page, m.pending.Interval)
	m.pending = nil
}

// materializeDiff computes and stores the diff for (page, interval) from
// the live twin.
func (e *lrcEngine) materializeDiff(page int, interval int32) {
	p := e.pt.Page(page)
	d := mem.ComputeDiffPooled(e.pool(), page, p.Twin, p.Data)
	p.DropTwin(e.pool())
	e.st().MemFree(int64(e.sys.Space.PageBytes()))
	e.storeDiff(page, interval, &d)
}

func (e *lrcEngine) storeDiff(page int, interval int32, d *mem.Diff) {
	e.diffs[diffKey{int32(e.self), int32(page), interval}] = d
	e.st().MemAlloc(d.MemSize())
	e.st().Counts.DiffsCreated++
	e.emit(trace.DiffCreate, page, -1, int64(d.WireSize()))
}

// cacheDiff retains a fetched diff so later faulting nodes can obtain the
// whole chain from this node.
func (e *lrcEngine) cacheDiff(proc, page int, interval int32, d *mem.Diff) {
	key := diffKey{int32(proc), int32(page), interval}
	if _, ok := e.diffs[key]; ok {
		return
	}
	e.diffs[key] = d
	e.st().MemAlloc(d.MemSize())
}

// ---------------------------------------------------------------------------
// Interval closing

func (e *lrcEngine) closeCost() sim.Time {
	var cost sim.Time
	for range e.dirty {
		cost += e.costs().PageProtect
		if e.overlapped {
			cost += e.costs().CoprocPost
		} else if e.eager {
			cost += e.costs().DiffCreateCost(e.sys.Space.PageWords)
		}
	}
	return cost
}

func (e *lrcEngine) closeCommit() {
	if len(e.dirty) == 0 {
		return
	}
	rec := e.newIntervalRec()
	for _, pg32 := range rec.Pages {
		pg := int(pg32)
		p := e.pt.Page(pg)
		p.State = mem.ReadOnly
		m := e.pages.at(pg)
		switch {
		case e.overlapped:
			m.inflight = true
			e.node.InjectCoproc(paragon.Msg{
				Kind: kMakeDiff,
				Body: &makeDiffReq{Page: pg, Interval: rec.Interval},
			})
		case e.eager:
			e.materializeDiff(pg, rec.Interval)
		default:
			m.pending = rec
		}
		// Our copy now reflects our own new interval.
		e.ensureAppliedVC(pg)
		m.appliedVC.Set(e.self, rec.Interval)
	}
}

// ---------------------------------------------------------------------------
// Write notices

func (e *lrcEngine) noticePage(rec *IntervalRec, page int) sim.Time {
	m := e.pages.at(page)
	m.wns = append(m.wns, pageWN{rec: rec})
	e.st().MemAlloc(wnEntryBytes)
	m.holder = int32(rec.Proc) + 1 // last-writer hint
	p := e.pt.Page(page)
	if p.State == mem.Invalid {
		return 0
	}
	p.State = mem.Invalid
	e.emit(trace.Invalidate, page, rec.Proc, 0)
	return e.costs().PageInval
}

func (e *lrcEngine) onBarrierRelease(g *grantInfo) {
	if g.GC {
		e.runGC()
	}
}

func (e *lrcEngine) protoMem() int64 { return e.st().ProtoMem }

// ---------------------------------------------------------------------------
// Garbage collection

// runGC implements the homeless protocols' barrier-time garbage
// collection: the last writer of each page validates it by collecting all
// outstanding diffs; everyone else invalidates their copy; then all
// protocol data — diffs, write notices, interval records — is discarded.
func (e *lrcEngine) runGC() {
	e.st().Counts.GCs++
	e.emit(trace.GCStart, -1, -1, 0)

	// All nodes share an identical interval log after the barrier, so
	// they agree on each page's last writer without communication.
	type lw struct {
		proc     int
		interval int32
	}
	last := map[int]lw{}
	for proc := range e.log {
		for _, rec := range e.log[proc] {
			for _, pg := range rec.Pages {
				cur, ok := last[int(pg)]
				if !ok || rec.Interval > cur.interval ||
					(rec.Interval == cur.interval && rec.Proc > cur.proc) {
					last[int(pg)] = lw{proc: rec.Proc, interval: rec.Interval}
				}
			}
		}
	}

	for pg := 0; pg < e.pages.len(); pg++ {
		w, ok := last[pg]
		if !ok {
			continue // untouched since the previous collection
		}
		m := e.pages.at(pg)
		if w.proc == e.self {
			// Validate: bring our copy fully up to date.
			e.bringUpToDate(pg, stats.CatGC)
			if e.pt.Page(pg).State == mem.Invalid {
				e.pt.Page(pg).State = mem.ReadOnly
			}
		}
		m.holder = int32(w.proc) + 1
	}

	// Wait until every node finished validating before discarding diffs.
	t0 := e.app().Now()
	e.gcRendezvous()
	e.st().Add(stats.CatGC, e.app().Now()-t0)

	// Discard protocol data.
	for pg := 0; pg < e.pages.len(); pg++ {
		w, ok := last[pg]
		if !ok {
			continue
		}
		m := e.pages.at(pg)
		for m.inflight {
			m.twinWaiter = append(m.twinWaiter, e.app())
			e.app().ParkArg("gc twin busy page", int64(pg))
		}
		if m.pending != nil {
			// Nobody fetched this diff during validation; it is dead.
			p := e.pt.Page(pg)
			p.DropTwin(e.pool())
			e.st().MemFree(int64(e.sys.Space.PageBytes()))
			m.pending = nil
		}
		for range m.wns {
			e.st().MemFree(wnEntryBytes)
		}
		m.wns = nil
		if w.proc != e.self {
			p := e.pt.Page(pg)
			if p.Data != nil {
				p.State = mem.Invalid
				p.Data = nil
				if m.appliedVC != nil {
					e.st().MemFree(e.vecBytes())
					m.appliedVC = nil
				}
			}
		}
	}
	for k, d := range e.diffs {
		e.st().MemFree(d.MemSize())
		delete(e.diffs, k)
	}
	e.pruneLogThrough(e.clock)
	e.emit(trace.GCEnd, -1, -1, 0)
}

// ---------------------------------------------------------------------------
// Message handlers

func (e *lrcEngine) handleCompute(m paragon.Msg) (sim.Time, func()) {
	switch m.Kind {
	case kLockAcq:
		return e.handleLockAcq(m)
	case kLockFwd:
		return e.handleLockFwd(m)
	case kBarrier:
		return e.handleBarrier(m)
	case kBarrierUp:
		return e.handleBarrierUp(m)
	case kBarrierDown:
		return e.handleBarrierDown(m)
	case kGCDone:
		return e.handleGCDone(m)
	case kFetchDiffs:
		return e.handleFetchDiffs(m)
	case kFetchPage:
		return e.handleFetchPage(m)
	}
	return badKind(m.Kind)
}

func (e *lrcEngine) handleCoproc(m paragon.Msg) (sim.Time, func()) {
	switch m.Kind {
	case kMakeDiff:
		return e.handleMakeDiff(m)
	case kFetchDiffs:
		return e.handleFetchDiffs(m)
	case kFetchPage:
		return e.handleFetchPage(m)
	// Synchronization service lands here under the OverlapLocks
	// extension (§4.3's "moved to the co-processor").
	case kLockAcq:
		return e.handleLockAcq(m)
	case kLockFwd:
		return e.handleLockFwd(m)
	case kBarrier:
		return e.handleBarrier(m)
	case kBarrierUp:
		return e.handleBarrierUp(m)
	case kBarrierDown:
		return e.handleBarrierDown(m)
	case kGCDone:
		return e.handleGCDone(m)
	}
	return badKind(m.Kind)
}

// handleMakeDiff runs on the writer's co-processor (OLRC): create the
// diff, then serve any queued requests for it.
func (e *lrcEngine) handleMakeDiff(m paragon.Msg) (sim.Time, func()) {
	return e.costs().DiffCreateCost(e.sys.Space.PageWords), func() {
		req := m.Body.(*makeDiffReq)
		e.materializeDiff(req.Page, req.Interval)
		pm := e.pages.at(req.Page)
		pm.inflight = false
		for _, w := range pm.twinWaiter {
			w.Unpark()
		}
		pm.twinWaiter = nil
		reqs := pm.pendingReqs
		pm.pendingReqs = nil
		for _, r := range reqs {
			e.serveDiffs(r)
		}
	}
}

// handleFetchDiffs serves a diff request at the writer. Lazy diffs are
// created on demand; OLRC requests for an in-flight diff are queued.
func (e *lrcEngine) handleFetchDiffs(m paragon.Msg) (sim.Time, func()) {
	req := m.Body.(*fetchDiffsReq)
	pm := e.pages.at(req.Page)
	if pm.inflight {
		return 0, func() {
			e.pages.at(req.Page).pendingReqs = append(e.pages.at(req.Page).pendingReqs, m)
		}
	}
	var work sim.Time
	if pm.pending != nil {
		for j, iv := range req.Intervals {
			if int(req.Procs[j]) == e.self && iv == pm.pending.Interval {
				work += e.costs().DiffCreateCost(e.sys.Space.PageWords)
			}
		}
	}
	return work, func() {
		pm := e.pages.at(req.Page)
		if pm.pending != nil {
			e.materializeDiff(req.Page, pm.pending.Interval)
			pm.pending = nil
		}
		e.serveDiffs(m)
	}
}

// serveDiffs answers with every requested diff this node created or has
// cached; the requester chases the rest elsewhere.
func (e *lrcEngine) serveDiffs(m paragon.Msg) {
	req := m.Body.(*fetchDiffsReq)
	resp := &fetchDiffsResp{
		Found: make([]bool, len(req.Intervals)),
		Diffs: make([]mem.Diff, len(req.Intervals)),
	}
	size := 0
	served := 0
	for j, iv := range req.Intervals {
		d, ok := e.diffs[diffKey{req.Procs[j], int32(req.Page), iv}]
		if !ok {
			continue
		}
		resp.Found[j] = true
		resp.Diffs[j] = *d
		size += d.WireSize()
		served++
	}
	// A writer always holds its own diffs until GC; a request routed here
	// by a write notice must be at least partially servable.
	for j := range req.Procs {
		if int(req.Procs[j]) == e.self && !resp.Found[j] {
			panic(fmt.Sprintf("core: node %d lost its own diff for page %d interval %d",
				e.self, req.Page, req.Intervals[j]))
		}
	}
	e.node.Respond(m, paragon.Msg{
		Kind:  kFetchDiffs,
		Size:  size,
		Class: stats.ClassData,
		Body:  resp,
	})
}

// handleFetchPage serves a full-copy request, or redirects to a better
// holder when this node dropped its copy at GC.
func (e *lrcEngine) handleFetchPage(m paragon.Msg) (sim.Time, func()) {
	return 0, func() {
		req := m.Body.(*lrcFetchPageReq)
		p := e.pt.Page(req.Page)
		pm := e.pages.at(req.Page)
		if p.Data == nil {
			e.node.Respond(m, paragon.Msg{
				Kind:  kFetchPage,
				Size:  12,
				Class: stats.ClassProtocol,
				Body:  &lrcFetchPageResp{Hint: e.holderOf(req.Page)},
			})
			return
		}
		data := make([]float64, len(p.Data))
		copy(data, p.Data)
		avc := pm.appliedVC.Copy()
		e.node.Respond(m, paragon.Msg{
			Kind:  kFetchPage,
			Size:  e.sys.Space.PageBytes() + avc.WireSize(),
			Class: stats.ClassData,
			Body:  &lrcFetchPageResp{Data: data, AppliedVC: avc},
		})
	}
}

// Finish waits out any co-processor diffs still in flight and asserts the
// engine wound down cleanly.
func (e *lrcEngine) Finish() {
	if len(e.dirty) > 0 {
		panic(fmt.Sprintf("core: node %d finished with %d dirty pages (missing final barrier?)", e.self, len(e.dirty)))
	}
	e.pages.each(func(pg int, m *lrcPage) {
		for m.inflight {
			m.twinWaiter = append(m.twinWaiter, e.app())
			e.app().ParkArg("finish: diff in flight page", int64(pg))
		}
	})
	for l, ls := range e.locks {
		if ls.held {
			panic(fmt.Sprintf("core: node %d finished holding lock %d", e.self, l))
		}
		if len(ls.queue) > 0 {
			panic(fmt.Sprintf("core: node %d finished with %d queued requests on lock %d", e.self, len(ls.queue), l))
		}
	}
}
