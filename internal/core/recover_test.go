package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// rehomeApp stresses the crashed node's home role: every node writes one
// word in every page each round (pages homed round-robin, so node 1
// homes page 1, ...), then reads a neighbour's word back after the
// barrier. Diff flushes and page fetches hit every home every round, so
// an outage of any node is observed quickly and recovery must both
// preserve the flushed updates and serve fetches from the new home.
func rehomeApp(p, rounds int) *testApp {
	var base mem.Addr
	const words = 64 // one 512-byte page per region
	return &testApp{
		name:  "rehome",
		setup: func(s *Setup) { base = s.Alloc(p * words) },
		init: func(w *Init) {
			for i := 0; i < p*words; i++ {
				w.Store(base+mem.Addr(i), 0)
			}
		},
		worker: func(c *Ctx, id int) {
			for r := 1; r <= rounds; r++ {
				c.Compute(200 * sim.Microsecond)
				for pg := 0; pg < p; pg++ {
					c.Store(base+mem.Addr(pg*words+id), float64(r*(pg+1)))
				}
				c.Barrier(2 * r)
				// Check a neighbour's write; the second barrier keeps the
				// next round's writes from racing with this read.
				peer := (id + 1) % p
				if got := c.Load(base + mem.Addr(peer*words+peer)); got != float64(r*(peer+1)) {
					panic(fmt.Sprintf("node %d round %d: page %d word %d = %v, want %v",
						id, r, peer, peer, got, float64(r*(peer+1))))
				}
				c.Barrier(2*r + 1)
			}
		},
		gather: func(c *Ctx) []float64 {
			out := make([]float64, p*words)
			c.ReadRange(base, out)
			return out
		},
	}
}

func checkRehome(t *testing.T, p, rounds int, data []float64) {
	t.Helper()
	const words = 64
	for pg := 0; pg < p; pg++ {
		for j := 0; j < words; j++ {
			want := 0.0
			if j < p {
				want = float64(rounds * (pg + 1))
			}
			if got := data[pg*words+j]; got != want {
				t.Fatalf("word %d of page %d = %v, want %v", j, pg, got, want)
			}
		}
	}
}

// crashPlan schedules one outage of node 1 with a short RTO so the
// transport suspects the dead node quickly.
func crashPlan(at, restart sim.Time) fault.Plan {
	return fault.Plan{
		Seed:    1,
		RTO:     100 * sim.Microsecond,
		Crashes: []fault.Crash{{Node: 1, At: at, RestartAt: restart}},
	}
}

// A home crash in the middle of the run must be recovered by re-homing:
// the results stay identical to the fault-free (and sequential) ones,
// pages move, and the detection latency is recorded.
func TestCrashRehomingCorrectness(t *testing.T) {
	const p, rounds = 4, 10
	for _, proto := range []Protocol{ProtoHLRC, ProtoOHLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			opts := testOpts(proto, p)
			opts.Fault = crashPlan(800*sim.Microsecond, 5*sim.Millisecond)
			opts.Recovery = Recovery{Replicas: 1}
			res := runOrFail(t, opts, rehomeApp(p, rounds))
			checkRehome(t, p, rounds, res.Data)

			var rehomed int64
			var detect sim.Time
			for _, nd := range res.Stats.Nodes {
				rehomed += nd.Counts.PagesRehomed
				if nd.Detect > detect {
					detect = nd.Detect
				}
			}
			if rehomed == 0 {
				t.Fatal("crash recovered without re-homing any page")
			}
			if detect <= 0 {
				t.Fatal("re-homing happened but no detection latency was recorded")
			}
		})
	}
}

// The same run under periodic checkpointing instead of eager mirroring:
// writers must replay their logged diffs to the promoted home.
func TestCrashRecoveryCheckpointMode(t *testing.T) {
	const p, rounds = 4, 10
	for _, proto := range []Protocol{ProtoHLRC, ProtoOHLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			opts := testOpts(proto, p)
			opts.Fault = crashPlan(800*sim.Microsecond, 5*sim.Millisecond)
			opts.Recovery = Recovery{Replicas: 1, CheckpointEvery: 300 * sim.Microsecond}
			res := runOrFail(t, opts, rehomeApp(p, rounds))
			checkRehome(t, p, rounds, res.Data)

			var rehomed int64
			for _, nd := range res.Stats.Nodes {
				rehomed += nd.Counts.PagesRehomed
			}
			if rehomed == 0 {
				t.Fatal("crash recovered without re-homing any page")
			}
		})
	}
}

// More replicas than one: the successor election must still pick exactly
// one new home and the run must stay correct.
func TestCrashRecoveryTwoReplicas(t *testing.T) {
	const p, rounds = 5, 8
	opts := testOpts(ProtoHLRC, p)
	opts.Fault = crashPlan(800*sim.Microsecond, 5*sim.Millisecond)
	opts.Recovery = Recovery{Replicas: 2}
	res := runOrFail(t, opts, rehomeApp(p, rounds))
	checkRehome(t, p, rounds, res.Data)
}

// A crash run is deterministic: same plan, same seed, byte-identical
// statistics including the recovery counters and the JSON encoding.
func TestCrashRunDeterminism(t *testing.T) {
	run := func() *Result {
		opts := testOpts(ProtoOHLRC, 4)
		opts.Fault = crashPlan(800*sim.Microsecond, 5*sim.Millisecond)
		opts.Recovery = Recovery{Replicas: 1}
		return runOrFail(t, opts, rehomeApp(4, 8))
	}
	r1, r2 := run(), run()
	if r1.Stats.Elapsed != r2.Stats.Elapsed {
		t.Fatalf("elapsed differs: %v vs %v", r1.Stats.Elapsed, r2.Stats.Elapsed)
	}
	for i := range r1.Stats.Nodes {
		a, b := r1.Stats.Nodes[i], r2.Stats.Nodes[i]
		if *a != *b {
			t.Fatalf("node %d stats differ:\n%+v\n%+v", i, a, b)
		}
	}
	var j1, j2 bytes.Buffer
	if err := r1.Stats.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Stats.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON stats of identical crash runs differ")
	}
}

// Without replication, the crash of a node that homes pages is
// unrecoverable: the run must fail with a structured NodeDeadError, not
// an opaque deadlock.
func TestCrashWithoutReplicasIsNodeDead(t *testing.T) {
	var addr mem.Addr
	app := &testApp{
		name:  "deadhome",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 64, 1)
		},
		worker: func(c *Ctx, id int) {
			if id == 1 {
				c.Store(addr, 7)
			}
			c.Barrier(0)
			if id == 0 {
				c.Compute(2 * sim.Millisecond) // let the crash land first
				c.Load(addr)                   // fetch from the dead home
			}
			c.Barrier(1)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = fault.Plan{
		Seed:    1,
		RTO:     100 * sim.Microsecond,
		Crashes: []fault.Crash{{Node: 1, At: sim.Millisecond}}, // permanent
	}
	_, err := Run(opts, app, false)
	if err == nil {
		t.Fatal("run with an unrecoverable dead home succeeded")
	}
	var nde *fault.NodeDeadError
	if !errors.As(err, &nde) {
		t.Fatalf("error is not a NodeDeadError: %v", err)
	}
	if nde.Node != 1 {
		t.Fatalf("NodeDeadError blames node %d, want 1", nde.Node)
	}
}

// A crash of a node that homes no pages is survivable even with no
// replicas: nothing depended on its volatile state.
func TestCrashOfHomelessNodeSurvivable(t *testing.T) {
	var addr mem.Addr
	const words = 64
	app := &testApp{
		name:  "spareworker",
		setup: func(s *Setup) { addr = s.Alloc(2 * words) },
		init: func(w *Init) {
			for i := 0; i < 2*words; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 2*words, 0) // everything homed at node 0
		},
		worker: func(c *Ctx, id int) {
			for r := 1; r <= 6; r++ {
				c.Compute(300 * sim.Microsecond)
				c.Store(addr+mem.Addr(id*words), float64(r))
				c.Barrier(r)
			}
		},
		gather: func(c *Ctx) []float64 {
			return []float64{c.Load(addr), c.Load(addr + words)}
		},
	}
	opts := testOpts(ProtoHLRC, 2)
	opts.Fault = crashPlan(700*sim.Microsecond, 3*sim.Millisecond)
	res := runOrFail(t, opts, app)
	if res.Data[0] != 6 || res.Data[1] != 6 {
		t.Fatalf("results = %v, want [6 6]", res.Data)
	}
	for _, nd := range res.Stats.Nodes {
		if nd.Counts.PagesRehomed != 0 {
			t.Fatalf("re-homing happened for a node that homes nothing")
		}
	}
}

// Recovery option validation: crashes need a home-based protocol,
// checkpointing needs replicas, and replication needs spare nodes.
func TestRecoveryValidation(t *testing.T) {
	opts := testOpts(ProtoLRC, 2)
	opts.Fault = crashPlan(sim.Millisecond, 2*sim.Millisecond)
	if _, err := Run(opts, counterApp(2), false); err == nil {
		t.Fatal("crash plan accepted under a homeless protocol")
	}

	opts = testOpts(ProtoHLRC, 2)
	opts.Recovery = Recovery{CheckpointEvery: sim.Millisecond}
	if _, err := Run(opts, counterApp(2), false); err == nil {
		t.Fatal("checkpointing accepted without replicas")
	}

	opts = testOpts(ProtoHLRC, 2)
	opts.Recovery = Recovery{Replicas: 2}
	if _, err := Run(opts, counterApp(2), false); err == nil {
		t.Fatal("as many replicas as nodes accepted")
	}
}

// Replication without any crash must not change what the run computes —
// it only adds mirror traffic.
func TestReplicationWithoutCrashIsTransparent(t *testing.T) {
	const p, rounds = 3, 5
	base := runOrFail(t, testOpts(ProtoHLRC, p), rehomeApp(p, rounds))
	opts := testOpts(ProtoHLRC, p)
	opts.Recovery = Recovery{Replicas: 1}
	rep := runOrFail(t, opts, rehomeApp(p, rounds))
	checkRehome(t, p, rounds, rep.Data)
	var replicaBytes int64
	for _, nd := range rep.Stats.Nodes {
		replicaBytes += nd.ReplicaBytes
	}
	if replicaBytes == 0 {
		t.Fatal("replication enabled but no mirror traffic recorded")
	}
	if got, want := len(rep.Data), len(base.Data); got != want {
		t.Fatalf("result length changed under replication: %d vs %d", got, want)
	}
	for i := range base.Data {
		if base.Data[i] != rep.Data[i] {
			t.Fatalf("replication changed word %d: %v vs %v", i, rep.Data[i], base.Data[i])
		}
	}
}
