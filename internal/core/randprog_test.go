package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gosvm/internal/fault"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// Randomized protocol equivalence testing: generate random data-race-free
// programs and verify that every protocol produces exactly the result an
// analytical model predicts.
//
// Generated programs mix the two synchronization idioms of the Splash-2
// suite:
//
//   - barrier-domain words: word w is written only by its owner proc,
//     once per round, with a deterministic value f(round, w); everyone
//     may read it in later rounds.
//   - lock-domain words: word w belongs to a lock; any proc may
//     read-modify-write it while holding that lock.
//
// Both idioms are racy at page granularity (owners interleave on shared
// pages) but race-free at word granularity — exactly the multi-writer
// situation the protocols must merge correctly.

type randProgram struct {
	seed      int64
	procs     int
	rounds    int
	barWords  int // barrier-domain words
	lockSets  int // number of locks
	wordsPerL int // words per lock domain
	pageSize  int

	barBase  mem.Addr
	lockBase mem.Addr
}

func (rp *randProgram) Name() string { return fmt.Sprintf("randprog-%d", rp.seed) }

func (rp *randProgram) lockWper() int { return rp.wordsPerL }

func (rp *randProgram) Setup(s *Setup) {
	// Unaligned allocations force barrier and lock domains to share pages.
	rp.barBase = s.AllocUnaligned(rp.barWords)
	rp.lockBase = s.AllocUnaligned(rp.lockSets * rp.lockWper())
}

func (rp *randProgram) Init(w *Init) {
	for i := 0; i < rp.barWords; i++ {
		w.Store(rp.barBase+mem.Addr(i), 0)
	}
	for i := 0; i < rp.lockSets*rp.lockWper(); i++ {
		w.Store(rp.lockBase+mem.Addr(i), 0)
	}
}

// barValue is the deterministic value owner writes to word w in round r.
func barValue(w, r int) float64 { return float64((w+1)*1000 + r) }

// ownerOf assigns barrier-domain words to procs in an interleaved pattern
// (maximal false sharing).
func (rp *randProgram) ownerOf(w int) int { return w % rp.procs }

func (rp *randProgram) Worker(c *Ctx, id int) {
	rng := rand.New(rand.NewSource(rp.seed + int64(id)*7919))
	bar := 0
	for r := 1; r <= rp.rounds; r++ {
		// Barrier-domain writes: each proc updates a random subset of its
		// own words; the rest keep their previous-round value.
		for w := id; w < rp.barWords; w += rp.procs {
			if rng.Intn(2) == 0 {
				c.Store(rp.barBase+mem.Addr(w), barValue(w, r))
			}
		}
		// Random reads of words written in earlier rounds must observe
		// committed values.
		for k := 0; k < 4; k++ {
			w := rng.Intn(rp.barWords)
			v := c.Load(rp.barBase + mem.Addr(w))
			// The value must be 0 or barValue(w, r') for some r' <= r; a
			// full check happens at the end, here we check the invariant
			// cheaply.
			if v != 0 {
				base := float64((w + 1) * 1000)
				if v < base+0 || v > base+float64(r) {
					panic(fmt.Sprintf("proc %d round %d: word %d = %v out of range", id, r, w, v))
				}
			}
		}
		// Lock-domain RMWs.
		for k := 0; k < 1+rng.Intn(3); k++ {
			l := rng.Intn(rp.lockSets)
			c.Lock(500 + l)
			for j := 0; j < rp.lockWper(); j++ {
				a := rp.lockBase + mem.Addr(l*rp.lockWper()+j)
				c.Store(a, c.Load(a)+1)
			}
			c.Compute(sim.Time(rng.Intn(30)) * sim.Microsecond)
			c.Unlock(500 + l)
		}
		c.Compute(sim.Time(rng.Intn(100)) * sim.Microsecond)
		c.Barrier(bar)
		bar++
	}
	c.Barrier(bar)
}

func (rp *randProgram) Gather(c *Ctx) []float64 {
	out := make([]float64, rp.barWords+rp.lockSets*rp.lockWper())
	c.ReadRange(rp.barBase, out[:rp.barWords])
	c.ReadRange(rp.lockBase, out[rp.barWords:])
	return out
}

// model recomputes the expected final memory image.
func (rp *randProgram) model() (bar []float64, lockTotals []int) {
	bar = make([]float64, rp.barWords)
	lockTotals = make([]int, rp.lockSets)
	for id := 0; id < rp.procs; id++ {
		rng := rand.New(rand.NewSource(rp.seed + int64(id)*7919))
		for r := 1; r <= rp.rounds; r++ {
			for w := id; w < rp.barWords; w += rp.procs {
				if rng.Intn(2) == 0 {
					bar[w] = barValue(w, r)
				}
			}
			for k := 0; k < 4; k++ {
				rng.Intn(rp.barWords)
			}
			for k := 0; k < 1+rng.Intn(3); k++ {
				lockTotals[rng.Intn(rp.lockSets)]++
				rng.Intn(30)
			}
			rng.Intn(100)
		}
	}
	return bar, lockTotals
}

// checkRandProgram validates one run's gathered image against the model.
func checkRandProgram(t *testing.T, label string, rp *randProgram, data []float64, wantBar []float64, wantLocks []int) {
	t.Helper()
	for w := 0; w < rp.barWords; w++ {
		if data[w] != wantBar[w] {
			t.Fatalf("%s: barrier word %d = %v, want %v (procs=%d rounds=%d page=%d)",
				label, w, data[w], wantBar[w], rp.procs, rp.rounds, rp.pageSize)
		}
	}
	for l := 0; l < rp.lockSets; l++ {
		for j := 0; j < rp.lockWper(); j++ {
			got := data[rp.barWords+l*rp.lockWper()+j]
			if got != float64(wantLocks[l]) {
				t.Fatalf("%s: lock domain %d word %d = %v, want %d",
					label, l, j, got, wantLocks[l])
			}
		}
	}
}

func TestRandomProgramsAllProtocols(t *testing.T) {
	protocols := append([]Protocol{}, Protocols...)
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 31337))
			rp := &randProgram{
				seed:      seed,
				procs:     2 + rng.Intn(7),
				rounds:    2 + rng.Intn(4),
				barWords:  32 + rng.Intn(200),
				lockSets:  1 + rng.Intn(4),
				wordsPerL: 1 + rng.Intn(12),
				pageSize:  []int{256, 512, 1024}[rng.Intn(3)],
			}
			wantBar, wantLocks := rp.model()
			for _, proto := range protocols {
				opts := Options{
					Protocol:  proto,
					NumProcs:  rp.procs,
					PageBytes: rp.pageSize,
				}
				if rng.Intn(2) == 0 {
					opts.EagerDiff = true
				}
				res, err := Run(opts, rp, false)
				if err != nil {
					t.Fatalf("%s: %v", proto, err)
				}
				checkRandProgram(t, proto.String(), rp, res.Data, wantBar, wantLocks)
			}
		})
	}
}

// The same randomized programs must validate under the lossy and hostile
// fault profiles: the reliability layer may slow the protocols down but
// must never change what they compute.
func TestRandomProgramsUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, profile := range []string{fault.ProfileLossy, fault.ProfileHostile} {
			seed, profile := seed, profile
			t.Run(fmt.Sprintf("seed%d/%s", seed, profile), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 31337))
				rp := &randProgram{
					seed:      seed,
					procs:     2 + rng.Intn(7),
					rounds:    2 + rng.Intn(4),
					barWords:  32 + rng.Intn(200),
					lockSets:  1 + rng.Intn(4),
					wordsPerL: 1 + rng.Intn(12),
					pageSize:  []int{256, 512, 1024}[rng.Intn(3)],
				}
				wantBar, wantLocks := rp.model()
				plan, err := fault.Profile(profile, seed*977)
				if err != nil {
					t.Fatal(err)
				}
				for _, proto := range Protocols {
					opts := Options{
						Protocol:  proto,
						NumProcs:  rp.procs,
						PageBytes: rp.pageSize,
						Fault:     plan,
					}
					res, err := Run(opts, rp, false)
					if err != nil {
						t.Fatalf("%s/%s: %v", proto, profile, err)
					}
					checkRandProgram(t, proto.String()+"/"+profile, rp, res.Data, wantBar, wantLocks)
				}
			})
		}
	}
}
