package core

import (
	"fmt"
	"testing"

	"gosvm/internal/mem"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
	"gosvm/internal/trace"
)

// testApp adapts closures to the App interface.
type testApp struct {
	name   string
	setup  func(s *Setup)
	init   func(w *Init)
	worker func(c *Ctx, id int)
	gather func(c *Ctx) []float64
}

func (a *testApp) Name() string            { return a.name }
func (a *testApp) Setup(s *Setup)          { a.setup(s) }
func (a *testApp) Init(w *Init)            { a.init(w) }
func (a *testApp) Worker(c *Ctx, id int)   { a.worker(c, id) }
func (a *testApp) Gather(c *Ctx) []float64 { return a.gather(c) }

func testOpts(proto Protocol, p int) Options {
	return Options{Protocol: proto, NumProcs: p, PageBytes: 512}
}

func runOrFail(t *testing.T, opts Options, app App) *Result {
	t.Helper()
	res, err := Run(opts, app, false)
	if err != nil {
		t.Fatalf("%s/%s/p%d: %v", app.Name(), opts.Protocol, opts.NumProcs, err)
	}
	return res
}

func forEachProto(t *testing.T, procs []int, fn func(t *testing.T, proto Protocol, p int)) {
	for _, proto := range Protocols {
		for _, p := range procs {
			proto, p := proto, p
			t.Run(fmt.Sprintf("%s/p%d", proto, p), func(t *testing.T) {
				fn(t, proto, p)
			})
		}
	}
}

// --------------------------------------------------------------------------
// Litmus: lock-protected counter.

func counterApp(n int) *testApp {
	var addr mem.Addr
	return &testApp{
		name:  "counter",
		setup: func(s *Setup) { addr = s.Alloc(1) },
		init:  func(w *Init) { w.Store(addr, 0) },
		worker: func(c *Ctx, id int) {
			for i := 0; i < n; i++ {
				c.Lock(1)
				v := c.Load(addr)
				// Open a preemption window inside the critical section so
				// broken mutual exclusion would lose updates.
				c.Compute(10 * sim.Microsecond)
				c.Store(addr, v+1)
				c.Unlock(1)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
	}
}

func TestLockedCounter(t *testing.T) {
	const n = 8
	forEachProto(t, []int{2, 4, 7}, func(t *testing.T, proto Protocol, p int) {
		res := runOrFail(t, testOpts(proto, p), counterApp(n))
		want := float64(p * n)
		if res.Data[0] != want {
			t.Fatalf("counter = %v, want %v", res.Data[0], want)
		}
	})
}

// --------------------------------------------------------------------------
// Litmus: visibility across a barrier (producer/consumers).

func barrierVisApp(words int) *testApp {
	var addr mem.Addr
	var sum mem.Addr
	return &testApp{
		name: "barriervis",
		setup: func(s *Setup) {
			addr = s.Alloc(words)
			sum = s.Alloc(64) // one word per proc, padded pages apart
		},
		init: func(w *Init) {
			for i := 0; i < words; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
		},
		worker: func(c *Ctx, id int) {
			if id == 0 {
				for i := 0; i < words; i++ {
					c.Store(addr+mem.Addr(i), float64(i+1))
				}
			}
			c.Barrier(0)
			s := 0.0
			for i := 0; i < words; i++ {
				s += c.Load(addr + mem.Addr(i))
			}
			c.Store(sum+mem.Addr(id), s)
			c.Barrier(1)
		},
		gather: func(c *Ctx) []float64 {
			out := make([]float64, c.NumProcs())
			for i := range out {
				out[i] = c.Load(sum + mem.Addr(i))
			}
			return out
		},
	}
}

func TestBarrierVisibility(t *testing.T) {
	const words = 300 // spans several 512-byte pages
	want := float64(words * (words + 1) / 2)
	forEachProto(t, []int{2, 5}, func(t *testing.T, proto Protocol, p int) {
		res := runOrFail(t, testOpts(proto, p), barrierVisApp(words))
		for i, s := range res.Data {
			if s != want {
				t.Fatalf("proc %d read sum %v, want %v", i, s, want)
			}
		}
	})
}

// --------------------------------------------------------------------------
// Litmus: concurrent multiple writers on one page (false sharing) merge.

func multiWriterApp() *testApp {
	var addr mem.Addr
	return &testApp{
		name:  "multiwriter",
		setup: func(s *Setup) { addr = s.Alloc(64) },
		init: func(w *Init) {
			for i := 0; i < 64; i++ {
				w.Store(addr+mem.Addr(i), -1)
			}
		},
		worker: func(c *Ctx, id int) {
			c.Barrier(0)
			// All procs write disjoint words of the same page concurrently.
			for i := id; i < 64; i += c.NumProcs() {
				c.Store(addr+mem.Addr(i), float64(100*id+i))
			}
			c.Barrier(1)
			// Every proc must observe every other proc's words.
			for i := 0; i < 64; i++ {
				want := float64(100*(i%c.NumProcs()) + i)
				if got := c.Load(addr + mem.Addr(i)); got != want {
					panic(fmt.Sprintf("proc %d: word %d = %v, want %v", id, i, got, want))
				}
			}
			c.Barrier(2)
		},
		gather: func(c *Ctx) []float64 {
			out := make([]float64, 64)
			c.ReadRange(addr, out)
			return out
		},
	}
}

func TestMultiWriterMerge(t *testing.T) {
	forEachProto(t, []int{2, 4, 8}, func(t *testing.T, proto Protocol, p int) {
		res := runOrFail(t, testOpts(proto, p), multiWriterApp())
		for i, v := range res.Data {
			want := float64(100*(i%p) + i)
			if v != want {
				t.Fatalf("word %d = %v, want %v", i, v, want)
			}
		}
	})
}

// --------------------------------------------------------------------------
// Litmus: migratory data through a lock chain.

func migratoryApp(rounds int) *testApp {
	var addr mem.Addr
	return &testApp{
		name:  "migratory",
		setup: func(s *Setup) { addr = s.Alloc(32) },
		init: func(w *Init) {
			for i := 0; i < 32; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
		},
		worker: func(c *Ctx, id int) {
			for r := 0; r < rounds; r++ {
				c.Lock(3)
				for i := 0; i < 32; i++ {
					c.Store(addr+mem.Addr(i), c.Load(addr+mem.Addr(i))+1)
				}
				c.Unlock(3)
				c.Compute(50 * sim.Microsecond)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 {
			out := make([]float64, 32)
			c.ReadRange(addr, out)
			return out
		},
	}
}

func TestMigratoryData(t *testing.T) {
	const rounds = 5
	forEachProto(t, []int{3, 6}, func(t *testing.T, proto Protocol, p int) {
		res := runOrFail(t, testOpts(proto, p), migratoryApp(rounds))
		want := float64(rounds * p)
		for i, v := range res.Data {
			if v != want {
				t.Fatalf("word %d = %v, want %v", i, v, want)
			}
		}
	})
}

// --------------------------------------------------------------------------
// Litmus: causal chain through different locks (transitive ordering).

func causalChainApp() *testApp {
	var x, y, out mem.Addr
	return &testApp{
		name: "causal",
		setup: func(s *Setup) {
			x = s.Alloc(1)
			y = s.Alloc(1)
			out = s.Alloc(1)
		},
		init: func(w *Init) { w.Store(x, 0); w.Store(y, 0); w.Store(out, 0) },
		worker: func(c *Ctx, id int) {
			switch id {
			case 0:
				c.Lock(1)
				c.Store(x, 41)
				c.Unlock(1)
			case 1:
				// Wait until x is set (via lock 1), then publish via lock 2.
				for {
					c.Lock(1)
					v := c.Load(x)
					c.Unlock(1)
					if v != 0 {
						break
					}
					c.Compute(20 * sim.Microsecond)
				}
				c.Lock(2)
				c.Store(y, 1)
				c.Unlock(2)
			case 2:
				// Once y is visible via lock 2, x must be visible too
				// (causality through proc 1).
				for {
					c.Lock(2)
					v := c.Load(y)
					c.Unlock(2)
					if v != 0 {
						break
					}
					c.Compute(20 * sim.Microsecond)
				}
				c.Store(out, c.Load(x)+1)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(out)} },
	}
}

func TestCausalChain(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			res := runOrFail(t, testOpts(proto, 3), causalChainApp())
			if res.Data[0] != 42 {
				t.Fatalf("out = %v, want 42 (causal ordering violated)", res.Data[0])
			}
		})
	}
}

// --------------------------------------------------------------------------
// Garbage collection correctness (homeless protocols).

func TestGCPreservesData(t *testing.T) {
	for _, proto := range []Protocol{ProtoLRC, ProtoOLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			opts := testOpts(proto, 4)
			opts.GCThreshold = 1 // force GC at every barrier
			app := &testApp{name: "gc"}
			var addr mem.Addr
			const words = 256
			app.setup = func(s *Setup) { addr = s.Alloc(words) }
			app.init = func(w *Init) {
				for i := 0; i < words; i++ {
					w.Store(addr+mem.Addr(i), 0)
				}
			}
			app.worker = func(c *Ctx, id int) {
				for round := 0; round < 4; round++ {
					c.Barrier(2 * round)
					for i := id; i < words; i += c.NumProcs() {
						c.Store(addr+mem.Addr(i), c.Load(addr+mem.Addr(i))+float64(id+1))
					}
					c.Barrier(2*round + 1)
				}
				c.Barrier(100)
			}
			app.gather = func(c *Ctx) []float64 {
				out := make([]float64, words)
				c.ReadRange(addr, out)
				return out
			}
			res := runOrFail(t, opts, app)
			for i, v := range res.Data {
				want := 4 * float64(i%4+1)
				if v != want {
					t.Fatalf("word %d = %v, want %v", i, v, want)
				}
			}
			// GC must actually have run.
			gcs := int64(0)
			for _, nd := range res.Stats.Nodes {
				gcs += nd.Counts.GCs
			}
			if gcs == 0 {
				t.Fatal("GC never triggered despite threshold 1")
			}
		})
	}
}

// --------------------------------------------------------------------------
// Home effect: a single writer that is also the home creates no diffs.

func TestHomeEffectNoDiffs(t *testing.T) {
	for _, proto := range []Protocol{ProtoHLRC, ProtoOHLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			app := &testApp{name: "homeeffect"}
			var addr mem.Addr
			const words = 128
			app.setup = func(s *Setup) { addr = s.Alloc(words) }
			app.init = func(w *Init) {
				for i := 0; i < words; i++ {
					w.Store(addr+mem.Addr(i), 1)
				}
				w.SetHome(addr, words, 0) // writer 0 is the home
			}
			app.worker = func(c *Ctx, id int) {
				for round := 0; round < 3; round++ {
					if id == 0 {
						for i := 0; i < words; i++ {
							c.Store(addr+mem.Addr(i), float64(round+2))
						}
					}
					c.Barrier(round)
				}
				c.Barrier(99)
			}
			app.gather = func(c *Ctx) []float64 {
				out := make([]float64, words)
				c.ReadRange(addr, out)
				return out
			}
			res := runOrFail(t, testOpts(proto, 4), app)
			for i, v := range res.Data {
				if v != 4 {
					t.Fatalf("word %d = %v, want 4", i, v)
				}
			}
			var created int64
			for _, nd := range res.Stats.Nodes {
				created += nd.Counts.DiffsCreated
			}
			if created != 0 {
				t.Fatalf("home effect violated: %d diffs created", created)
			}
		})
	}
}

// --------------------------------------------------------------------------
// Determinism: identical runs produce identical timing and stats.

func TestRunDeterminism(t *testing.T) {
	for _, proto := range Protocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			r1 := runOrFail(t, testOpts(proto, 4), counterApp(6))
			r2 := runOrFail(t, testOpts(proto, 4), counterApp(6))
			if r1.Stats.Elapsed != r2.Stats.Elapsed {
				t.Fatalf("elapsed differs: %v vs %v", r1.Stats.Elapsed, r2.Stats.Elapsed)
			}
			for i := range r1.Stats.Nodes {
				a, b := r1.Stats.Nodes[i], r2.Stats.Nodes[i]
				if *a != *b {
					t.Fatalf("node %d stats differ:\n%+v\n%+v", i, a, b)
				}
			}
		})
	}
}

// --------------------------------------------------------------------------
// Accounting invariants.

func TestBreakdownWithinElapsed(t *testing.T) {
	forEachProto(t, []int{4}, func(t *testing.T, proto Protocol, p int) {
		res := runOrFail(t, testOpts(proto, p), migratoryApp(4))
		for i, nd := range res.Stats.Nodes {
			if nd.Total() > res.Stats.Elapsed {
				t.Fatalf("node %d breakdown %v exceeds elapsed %v", i, nd.Total(), res.Stats.Elapsed)
			}
		}
	})
}

func TestProtoMemReturnsToSmall(t *testing.T) {
	// After a run with forced GC, homeless protocol memory should have
	// been mostly released (twins, diffs); peak must exceed final.
	opts := testOpts(ProtoLRC, 4)
	opts.GCThreshold = 1
	res := runOrFail(t, opts, migratoryApp(6))
	for i, nd := range res.Stats.Nodes {
		if nd.ProtoMem < 0 {
			t.Fatalf("node %d negative protocol memory", i)
		}
		if nd.ProtoMemPeak < nd.ProtoMem {
			t.Fatalf("node %d peak below current", i)
		}
	}
}

func TestSequentialBaseline(t *testing.T) {
	res := runOrFail(t, testOpts(ProtoSeq, 1), counterApp(10))
	if res.Data[0] != 10 {
		t.Fatalf("seq counter = %v", res.Data[0])
	}
	nd := res.Stats.Nodes[0]
	if nd.Counts.ReadMisses != 0 || nd.Counts.DiffsCreated != 0 {
		t.Fatalf("sequential run performed protocol work: %+v", nd.Counts)
	}
	for _, c := range []stats.Category{stats.CatData, stats.CatLock, stats.CatBarrier, stats.CatProtocol, stats.CatGC} {
		if nd.Time[c] != 0 {
			t.Fatalf("sequential run charged %v to %v", nd.Time[c], c)
		}
	}
}

func TestSeqRequiresOneProc(t *testing.T) {
	_, err := Run(Options{Protocol: ProtoSeq, NumProcs: 2, PageBytes: 512}, counterApp(1), false)
	if err == nil {
		t.Fatal("seq with 2 procs did not error")
	}
}

// --------------------------------------------------------------------------
// Speedup sanity: a perfectly parallel compute-bound app speeds up.

func TestEmbarrassinglyParallelSpeedup(t *testing.T) {
	mk := func() *testApp {
		var addr mem.Addr
		return &testApp{
			name:  "parallel",
			setup: func(s *Setup) { addr = s.Alloc(64) },
			init:  func(w *Init) { w.Store(addr, 0) },
			worker: func(c *Ctx, id int) {
				n := 100 / c.NumProcs()
				for i := 0; i < n; i++ {
					c.Compute(sim.Millisecond)
				}
				c.Store(addr+mem.Addr(id), 1)
				c.Barrier(0)
			},
			gather: func(c *Ctx) []float64 { return []float64{c.Load(addr)} },
		}
	}
	seq := runOrFail(t, testOpts(ProtoSeq, 1), mk())
	for _, proto := range Protocols {
		par := runOrFail(t, testOpts(proto, 4), mk())
		speedup := float64(seq.Stats.Elapsed) / float64(par.Stats.Elapsed)
		if speedup < 3.0 {
			t.Fatalf("%s: speedup %0.2f < 3.0 for embarrassingly parallel work", proto, speedup)
		}
	}
}

// --------------------------------------------------------------------------
// Traffic accounting: messages balance and data flows are classified.

func TestTrafficClassification(t *testing.T) {
	res := runOrFail(t, testOpts(ProtoHLRC, 4), migratoryApp(4))
	if res.Stats.TotalBytes(stats.ClassData) == 0 {
		t.Fatal("no data traffic recorded for migratory workload")
	}
	if res.Stats.TotalBytes(stats.ClassProtocol) == 0 {
		t.Fatal("no protocol traffic recorded")
	}
	if res.Stats.TotalMsgs() == 0 {
		t.Fatal("no messages recorded")
	}
}

// --------------------------------------------------------------------------
// Phase capture (Figure 4 machinery).

func TestPhaseCapture(t *testing.T) {
	res, err := Run(testOpts(ProtoHLRC, 4), barrierVisApp(64), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 2 {
		t.Fatalf("captured %d phases, want >= 2", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if len(ph.PerNode) != 4 {
			t.Fatalf("phase has %d nodes", len(ph.PerNode))
		}
	}
}

// --------------------------------------------------------------------------
// Eager-diff ablation option still yields correct results.

func TestEagerDiffOption(t *testing.T) {
	opts := testOpts(ProtoLRC, 4)
	opts.EagerDiff = true
	res := runOrFail(t, opts, multiWriterApp())
	for i, v := range res.Data {
		want := float64(100*(i%4) + i)
		if v != want {
			t.Fatalf("word %d = %v, want %v", i, v, want)
		}
	}
}

// Round-robin home placement ablation.
func TestHomeRoundRobinOption(t *testing.T) {
	opts := testOpts(ProtoHLRC, 4)
	opts.HomeRoundRobin = true
	res := runOrFail(t, opts, migratoryApp(4))
	for _, v := range res.Data {
		if v != 16 {
			t.Fatalf("value %v, want 16", v)
		}
	}
}

// OverlapLocks (the §4.3 extension: synchronization serviced by the
// co-processor) must preserve correctness and cut lock-bound runtime.
func TestOverlapLocksCorrectAndFaster(t *testing.T) {
	for _, proto := range []Protocol{ProtoOLRC, ProtoOHLRC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			base := testOpts(proto, 6)
			withOL := base
			withOL.OverlapLocks = true

			r1 := runOrFail(t, base, migratoryApp(5))
			r2 := runOrFail(t, withOL, migratoryApp(5))
			want := float64(5 * 6)
			for i := range r2.Data {
				if r2.Data[i] != want {
					t.Fatalf("OverlapLocks broke coherence: word %d = %v, want %v", i, r2.Data[i], want)
				}
			}
			if r2.Stats.Elapsed >= r1.Stats.Elapsed {
				t.Errorf("OverlapLocks did not speed up a lock-bound run: %v vs %v",
					r2.Stats.Elapsed, r1.Stats.Elapsed)
			}
		})
	}
}

// OverlapLocks is ignored for non-overlapped protocols.
func TestOverlapLocksIgnoredWithoutCoproc(t *testing.T) {
	opts := testOpts(ProtoHLRC, 4)
	opts.OverlapLocks = true
	res := runOrFail(t, opts, counterApp(5))
	if res.Data[0] != 20 {
		t.Fatalf("counter = %v", res.Data[0])
	}
}

// --------------------------------------------------------------------------
// AURC emulation.

func TestAURCCorrectness(t *testing.T) {
	for _, mk := range []func() *testApp{
		func() *testApp { return counterApp(8) },
		multiWriterApp,
		func() *testApp { return migratoryApp(5) },
		causalChainApp,
	} {
		app := mk()
		t.Run(app.Name(), func(t *testing.T) {
			p := 4
			if app.name == "causal" {
				p = 3
			}
			ref := runOrFail(t, testOpts(ProtoHLRC, p), mk())
			got := runOrFail(t, testOpts(ProtoAURC, p), mk())
			if len(ref.Data) != len(got.Data) {
				t.Fatal("result size mismatch")
			}
			for i := range ref.Data {
				if ref.Data[i] != got.Data[i] {
					t.Fatalf("word %d: aurc %v, hlrc %v", i, got.Data[i], ref.Data[i])
				}
			}
		})
	}
}

// AURC must charge no diff-related software cost and create no diffs,
// while shipping write-through traffic proportional to stores.
func TestAURCZeroSoftwareOverhead(t *testing.T) {
	mk := func() *testApp { return migratoryApp(6) }
	hlrc := runOrFail(t, testOpts(ProtoHLRC, 4), mk())
	aurc := runOrFail(t, testOpts(ProtoAURC, 4), mk())
	var aDiffs, hDiffs int64
	for i := range aurc.Stats.Nodes {
		aDiffs += aurc.Stats.Nodes[i].Counts.DiffsCreated
		hDiffs += hlrc.Stats.Nodes[i].Counts.DiffsCreated
	}
	if aDiffs != 0 {
		t.Fatalf("AURC created %d diffs", aDiffs)
	}
	if hDiffs == 0 {
		t.Fatal("HLRC reference created no diffs; test is vacuous")
	}
	if aurc.Stats.Elapsed >= hlrc.Stats.Elapsed {
		t.Errorf("AURC (%v) not faster than HLRC (%v) despite free updates",
			aurc.Stats.Elapsed, hlrc.Stats.Elapsed)
	}
}

// Write-through traffic: a workload that overwrites the same words many
// times per interval must ship more update bytes under AURC than HLRC.
func TestAURCWriteThroughTraffic(t *testing.T) {
	mk := func() *testApp {
		var addr mem.Addr
		return &testApp{
			name:  "rewrites",
			setup: func(s *Setup) { addr = s.Alloc(16) },
			init: func(w *Init) {
				for i := 0; i < 16; i++ {
					w.Store(addr+mem.Addr(i), 0)
				}
				w.SetHome(addr, 16, 0)
			},
			worker: func(c *Ctx, id int) {
				if id == 1 { // non-home writer
					for rep := 0; rep < 50; rep++ {
						for i := 0; i < 16; i++ {
							c.Store(addr+mem.Addr(i), float64(rep+i))
						}
					}
				}
				c.Barrier(0)
			},
			gather: func(c *Ctx) []float64 {
				out := make([]float64, 16)
				c.ReadRange(addr, out)
				return out
			},
		}
	}
	hlrc := runOrFail(t, testOpts(ProtoHLRC, 2), mk())
	aurc := runOrFail(t, testOpts(ProtoAURC, 2), mk())
	hBytes := hlrc.Stats.TotalBytes(stats.ClassData)
	aBytes := aurc.Stats.TotalBytes(stats.ClassData)
	if aBytes <= hBytes {
		t.Fatalf("AURC write-through traffic (%d) not above HLRC diff traffic (%d)", aBytes, hBytes)
	}
}

// The mesh network model must preserve coherence while adding link-level
// contention.
func TestMeshOptionCorrectness(t *testing.T) {
	opts := testOpts(ProtoHLRC, 8)
	opts.Mesh = true
	res := runOrFail(t, opts, multiWriterApp())
	for i, v := range res.Data {
		want := float64(100*(i%8) + i)
		if v != want {
			t.Fatalf("word %d = %v, want %v", i, v, want)
		}
	}
	// With contention the run cannot be faster than the crossbar.
	ref := runOrFail(t, testOpts(ProtoHLRC, 8), multiWriterApp())
	if res.Stats.Elapsed < ref.Stats.Elapsed {
		t.Fatalf("mesh run (%v) faster than crossbar (%v)", res.Stats.Elapsed, ref.Stats.Elapsed)
	}
}

// Force the OHLRC pending-fetch path: with a huge page, the co-processor
// diff is still in flight to the home when the next lock holder fetches
// the page, so the home must park the fetch on the pending list until
// the diff lands (and must not serve a stale copy).
func TestOHLRCFetchWaitsForDiff(t *testing.T) {
	opts := Options{Protocol: ProtoOHLRC, NumProcs: 3, PageBytes: 65536}
	var addr mem.Addr
	app := &testApp{
		name: "pendingfetch",
		setup: func(s *Setup) {
			addr = s.Alloc(8192) // one full 64KB page
		},
		init: func(w *Init) {
			for i := 0; i < 8192; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
			w.SetHome(addr, 8192, 2) // home is neither writer nor reader
		},
		worker: func(c *Ctx, id int) {
			switch id {
			case 1: // writer: dirty the whole page, then release the lock
				c.Lock(1)
				for i := 0; i < 8192; i++ {
					c.Store(addr+mem.Addr(i), float64(i+1))
				}
				c.Unlock(1)
			case 0: // reader: acquire after the writer and read through
				c.Compute(2 * sim.Millisecond) // let the writer go first
				c.Lock(1)
				if got := c.Load(addr + 4000); got != 4001 {
					panic(fmt.Sprintf("stale read through home: %v", got))
				}
				c.Unlock(1)
			}
			c.Barrier(0)
		},
		gather: func(c *Ctx) []float64 { return []float64{c.Load(addr + 8191)} },
	}
	res := runOrFail(t, opts, app)
	if res.Data[0] != 8192 {
		t.Fatalf("final word = %v, want 8192", res.Data[0])
	}
}

// Homeless GC with synchronization serviced on the co-processor
// (OverlapLocks): the kGCDone rendezvous must route correctly.
func TestGCWithOverlapLocks(t *testing.T) {
	opts := testOpts(ProtoOLRC, 4)
	opts.GCThreshold = 1
	opts.OverlapLocks = true
	res := runOrFail(t, opts, migratoryApp(6))
	for i, v := range res.Data {
		if v != 24 {
			t.Fatalf("word %d = %v, want 24", i, v)
		}
	}
	var gcs int64
	for _, nd := range res.Stats.Nodes {
		gcs += nd.Counts.GCs
	}
	if gcs == 0 {
		t.Fatal("GC never ran")
	}
}

// A page whose entire diff chain lives at the last writer must be
// recoverable by a node that never saw the page (diff caching +
// full-copy fetch with applied-interval vector).
func TestLRCLateReaderSeesChain(t *testing.T) {
	var addr mem.Addr
	app := &testApp{
		name:  "latereader",
		setup: func(s *Setup) { addr = s.Alloc(16) },
		init: func(w *Init) {
			for i := 0; i < 16; i++ {
				w.Store(addr+mem.Addr(i), 0)
			}
		},
		worker: func(c *Ctx, id int) {
			// Nodes 0..2 take turns extending the chain; node 3 reads only
			// at the very end, needing the whole history.
			if id < 3 {
				for r := 0; r < 4; r++ {
					c.Lock(9)
					for i := 0; i < 16; i++ {
						c.Store(addr+mem.Addr(i), c.Load(addr+mem.Addr(i))+1)
					}
					c.Unlock(9)
				}
			}
			c.Barrier(0)
			if id == 3 {
				for i := 0; i < 16; i++ {
					if got := c.Load(addr + mem.Addr(i)); got != 12 {
						panic(fmt.Sprintf("late reader: word %d = %v, want 12", i, got))
					}
				}
			}
			c.Barrier(1)
		},
		gather: func(c *Ctx) []float64 {
			out := make([]float64, 16)
			c.ReadRange(addr, out)
			return out
		},
	}
	runOrFail(t, testOpts(ProtoLRC, 4), app)
}

// Lock re-entry and unlocked release must panic (API misuse detection).
func TestLockMisusePanics(t *testing.T) {
	mustPanic := func(name string, worker func(c *Ctx, id int)) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			app := &testApp{
				name:   name,
				setup:  func(s *Setup) { s.Alloc(1) },
				init:   func(w *Init) {},
				worker: worker,
				gather: func(c *Ctx) []float64 { return nil },
			}
			_, _ = Run(testOpts(ProtoHLRC, 2), app, false)
		})
	}
	mustPanic("reentry", func(c *Ctx, id int) {
		if id == 0 {
			c.Lock(1)
			c.Lock(1)
		}
		c.Barrier(0)
	})
	mustPanic("bare-unlock", func(c *Ctx, id int) {
		if id == 0 {
			c.Unlock(2)
		}
		c.Barrier(0)
	})
}

// Missing final barrier (dirty pages at exit) must be caught by Finish.
func TestMissingFinalBarrierPanics(t *testing.T) {
	var addr mem.Addr
	app := &testApp{
		name:  "nobarrier",
		setup: func(s *Setup) { addr = s.Alloc(4) },
		init:  func(w *Init) { w.Store(addr, 0) },
		worker: func(c *Ctx, id int) {
			c.Store(addr+mem.Addr(id), 1)
			// No barrier: updates never flushed.
		},
		gather: func(c *Ctx) []float64 { return nil },
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing final barrier not detected")
		}
	}()
	_, _ = Run(testOpts(ProtoHLRC, 2), app, false)
}

// --------------------------------------------------------------------------
// Protocol event tracing.

func TestTraceCapturesProtocolEvents(t *testing.T) {
	opts := testOpts(ProtoHLRC, 4)
	opts.TraceLimit = -1
	res := runOrFail(t, opts, migratoryApp(4))
	tr := res.Trace
	if tr.Len() == 0 {
		t.Fatal("no events captured")
	}
	counts := tr.Counts()
	for _, k := range []trace.Kind{trace.ReadMiss, trace.WriteFault, trace.PageFetch,
		trace.DiffCreate, trace.DiffFlush, trace.DiffApply, trace.Invalidate,
		trace.LockAcquire, trace.LockGrant, trace.BarrierEnter, trace.BarrierExit} {
		if counts[k] == 0 {
			t.Errorf("no %v events captured", k)
		}
	}
	// Events are time-ordered.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("events out of order at %d: %v then %v", i, evs[i-1], evs[i])
		}
	}
	// Every grant follows an acquire of the same lock on the same node.
	for _, g := range tr.ByKind(trace.LockGrant) {
		found := false
		for _, a := range tr.ByKind(trace.LockAcquire) {
			if a.Node == g.Node && a.Arg == g.Arg && a.T <= g.T {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("grant without acquire: %v", g)
		}
	}
}

func TestTraceGCEvents(t *testing.T) {
	opts := testOpts(ProtoLRC, 4)
	opts.TraceLimit = -1
	opts.GCThreshold = 1
	res := runOrFail(t, opts, migratoryApp(4))
	c := res.Trace.Counts()
	if c[trace.GCStart] == 0 || c[trace.GCStart] != c[trace.GCEnd] {
		t.Fatalf("gc events unbalanced: start=%d end=%d", c[trace.GCStart], c[trace.GCEnd])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	res := runOrFail(t, testOpts(ProtoHLRC, 2), counterApp(3))
	if res.Trace.Len() != 0 {
		t.Fatal("trace captured events without being enabled")
	}
}

func TestTraceLimitRespected(t *testing.T) {
	opts := testOpts(ProtoHLRC, 4)
	opts.TraceLimit = 10
	res := runOrFail(t, opts, migratoryApp(4))
	if res.Trace.Len() != 10 {
		t.Fatalf("trace len = %d, want 10", res.Trace.Len())
	}
}
