package core

import (
	"fmt"
	"testing"
)

// treeOpts returns options forcing the tree barrier with a given radix.
func treeOpts(proto Protocol, p, radix int) Options {
	o := testOpts(proto, p)
	o.Machine.Barrier = BarrierTree
	o.Machine.BarrierRadix = radix
	return o
}

// TestTreeBarrierMatchesCentral runs the same applications under the
// centralized and the tree barrier. The algorithms exchange the same
// coherence information over different message patterns, so the gathered
// application data must be bitwise identical; timing legitimately
// differs.
func TestTreeBarrierMatchesCentral(t *testing.T) {
	cases := []struct {
		procs, radix int
		mk           func() *testApp
	}{
		{4, 2, func() *testApp { return barrierVisApp(300) }}, // binary tree, internal nodes
		{8, 2, multiWriterApp},                                // depth-3 binary tree
		{8, 8, func() *testApp { return counterApp(4) }},      // flat tree: root + 7 leaves
		{13, 3, func() *testApp { return migratoryApp(3) }},   // uneven last level
		{16, 4, multiWriterApp},
		{64, 8, func() *testApp { return barrierVisApp(600) }},
	}
	for _, tc := range cases {
		for _, proto := range Protocols {
			tc, proto := tc, proto
			name := fmt.Sprintf("%s/%s/p%d/r%d", tc.mk().Name(), proto, tc.procs, tc.radix)
			t.Run(name, func(t *testing.T) {
				central := testOpts(proto, tc.procs)
				central.Machine.Barrier = BarrierCentral
				want := runOrFail(t, central, tc.mk())
				got := runOrFail(t, treeOpts(proto, tc.procs, tc.radix), tc.mk())
				if len(got.Data) != len(want.Data) {
					t.Fatalf("data length %d != %d", len(got.Data), len(want.Data))
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("data[%d] = %v under tree, %v under central", i, got.Data[i], want.Data[i])
					}
				}
			})
		}
	}
}

// TestTreeBarrierDeterminism re-runs a tree-barrier configuration and
// demands identical fingerprints: same data, same elapsed time, same
// per-node statistics.
func TestTreeBarrierDeterminism(t *testing.T) {
	for _, proto := range Protocols {
		for _, p := range []int{8, 21, 64} {
			proto, p := proto, p
			t.Run(fmt.Sprintf("%s/p%d", proto, p), func(t *testing.T) {
				opts := treeOpts(proto, p, 4)
				a := fingerprint(runOrFail(t, opts, multiWriterApp()))
				b := fingerprint(runOrFail(t, opts, multiWriterApp()))
				if a != b {
					t.Fatalf("tree barrier run not deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
				}
			})
		}
	}
}

// TestTreeBarrierGC forces garbage collection under the tree barrier: the
// GC decision is made at the root from aggregated subtree memory maxima,
// and the rendezvous stays centralized. The homeless protocols must still
// produce correct data.
func TestTreeBarrierGC(t *testing.T) {
	for _, proto := range []Protocol{ProtoLRC, ProtoOLRC} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			opts := treeOpts(proto, 12, 3)
			opts.GCThreshold = 1 // any protocol memory triggers GC
			res := runOrFail(t, opts, multiWriterApp())
			var gcs int64
			for _, nd := range res.Stats.Nodes {
				gcs += nd.Counts.GCs
			}
			if gcs == 0 {
				t.Fatal("expected at least one GC under the tree barrier")
			}
			central := testOpts(proto, 12)
			central.Machine.Barrier = BarrierCentral
			central.GCThreshold = 1
			want := runOrFail(t, central, multiWriterApp())
			for i := range want.Data {
				if res.Data[i] != want.Data[i] {
					t.Fatalf("data[%d] = %v under tree+GC, %v under central+GC", i, res.Data[i], want.Data[i])
				}
			}
		})
	}
}

// TestBarrierAutoCrossover checks mode resolution: auto is central at and
// below the crossover, tree above it.
func TestBarrierAutoCrossover(t *testing.T) {
	at := Machine{Nodes: BarrierCrossover}
	at.Defaults()
	if at.TreeBarrier() {
		t.Fatalf("auto at %d nodes picked the tree barrier", BarrierCrossover)
	}
	above := Machine{Nodes: BarrierCrossover + 1}
	above.Defaults()
	if !above.TreeBarrier() {
		t.Fatalf("auto at %d nodes did not pick the tree barrier", BarrierCrossover+1)
	}
	forced := Machine{Nodes: 4, Barrier: BarrierTree}
	forced.Defaults()
	if !forced.TreeBarrier() {
		t.Fatal("explicit tree mode ignored")
	}
}
