package core

import (
	"fmt"

	"gosvm/internal/mem"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// Ctx is the per-processor view of the shared virtual memory, passed to
// application workers. It provides the Splash-2 programming interface:
// shared loads and stores (with software page-fault handling), LOCK /
// UNLOCK / BARRIER, and explicit computation charging.
type Ctx struct {
	sys  *System
	eng  Engine
	pt   *mem.Table
	proc *sim.Proc
	id   int
	pw   int // words per page
}

func newCtx(sys *System, id int, p *sim.Proc) *Ctx {
	return &Ctx{
		sys:  sys,
		eng:  sys.Engines[id],
		pt:   sys.Tables[id],
		proc: p,
		id:   id,
		pw:   sys.Space.PageWords,
	}
}

// ID returns this processor's index.
func (c *Ctx) ID() int { return c.id }

// NumProcs returns the machine size.
func (c *Ctx) NumProcs() int { return c.sys.Opts.NumProcs }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.proc.Now() }

// Compute charges d of application computation.
func (c *Ctx) Compute(d sim.Time) {
	c.sys.M.Nodes[c.id].CPU.Use(c.proc, d, stats.CatCompute)
}

// Load reads one shared word.
func (c *Ctx) Load(a mem.Addr) float64 {
	pg := int(int64(a) / int64(c.pw))
	p := c.pt.Page(pg)
	if p.State == mem.Invalid {
		c.eng.ReadFault(pg)
	}
	return p.Data[int(int64(a)%int64(c.pw))]
}

// Store writes one shared word.
func (c *Ctx) Store(a mem.Addr, v float64) {
	pg := int(int64(a) / int64(c.pw))
	p := c.pt.Page(pg)
	if p.State != mem.ReadWrite {
		c.eng.WriteFault(pg)
	}
	p.Data[int(int64(a)%int64(c.pw))] = v
	p.Stores++
}

// LoadI reads an integer-valued shared word.
func (c *Ctx) LoadI(a mem.Addr) int64 { return int64(c.Load(a)) }

// StoreI writes an integer-valued shared word. Values must be exactly
// representable in a float64 (|v| < 2^53).
func (c *Ctx) StoreI(a mem.Addr, v int64) { c.Store(a, float64(v)) }

// ReadRange copies len(dst) shared words starting at a into dst, faulting
// pages in as needed. It is the bulk fast path for numeric kernels.
func (c *Ctx) ReadRange(a mem.Addr, dst []float64) {
	for len(dst) > 0 {
		pg := int(int64(a) / int64(c.pw))
		off := int(int64(a) % int64(c.pw))
		p := c.pt.Page(pg)
		if p.State == mem.Invalid {
			c.eng.ReadFault(pg)
		}
		n := copy(dst, p.Data[off:])
		dst = dst[n:]
		a += mem.Addr(n)
	}
}

// WriteRange copies src into shared memory starting at a.
func (c *Ctx) WriteRange(a mem.Addr, src []float64) {
	for len(src) > 0 {
		pg := int(int64(a) / int64(c.pw))
		off := int(int64(a) % int64(c.pw))
		p := c.pt.Page(pg)
		if p.State != mem.ReadWrite {
			c.eng.WriteFault(pg)
		}
		n := copy(p.Data[off:], src)
		p.Stores += n
		src = src[n:]
		a += mem.Addr(n)
	}
}

// Wait idles the processor for d of simulated time without charging any
// busy category: the open-loop serving workload's "no request pending"
// state. Zero or negative d returns immediately.
func (c *Ctx) Wait(d sim.Time) {
	if d > 0 {
		c.proc.Sleep(d)
	}
}

// WaitUntil idles until simulated time t (no-op if t has passed). Used
// by open-loop clients to hold requests until their arrival time.
func (c *Ctx) WaitUntil(t sim.Time) { c.Wait(t - c.proc.Now()) }

// fresher is implemented by engines whose protocol keeps an
// authoritative per-page copy a lock-free read can validate against
// (the home-based family).
type fresher interface {
	FreshRead(page int) bool
}

// prefetcher is implemented by engines that can pull a page
// asynchronously, without blocking the application processor.
type prefetcher interface {
	Prefetch(page int)
}

// FreshRead revalidates the page containing a against its authoritative
// copy before a lock-free read: under the home-based protocols any
// cached local copy is dropped and the home's current copy is fetched
// in one round trip, so subsequent Loads of the page observe a single
// atomic snapshot that is at least as new as everything this node is
// required to see. Pages this node homes, or has modified in the open
// interval, are read in place (they are already the freshest view this
// node can have). Returns false when the protocol has no authoritative
// copy to validate against — the homeless LRC family learns of remote
// writes only through synchronization — in which case the caller must
// take the lock instead.
func (c *Ctx) FreshRead(a mem.Addr) bool {
	f, ok := c.eng.(fresher)
	if !ok {
		return false
	}
	return f.FreshRead(int(int64(a) / int64(c.pw)))
}

// Prefetch hints that the page containing a will be read soon: engines
// that support it issue an asynchronous best-effort fetch from the
// page's home, so the transfer overlaps whatever the application does
// next (the serving fast path overlaps it with the previous batch's
// critical section). Never blocks; a no-op for protocols without a
// home, for locally valid or self-homed pages, and while a prefetch for
// the page is already in flight.
func (c *Ctx) Prefetch(a mem.Addr) {
	if p, ok := c.eng.(prefetcher); ok {
		p.Prefetch(int(int64(a) / int64(c.pw)))
	}
}

// Lock acquires the given lock (Splash-2 LOCK).
func (c *Ctx) Lock(l int) { c.eng.Acquire(l) }

// Unlock releases the given lock (Splash-2 UNLOCK).
func (c *Ctx) Unlock(l int) { c.eng.Release(l) }

// Barrier waits until all processors arrive (Splash-2 BARRIER).
func (c *Ctx) Barrier(id int) { c.eng.Barrier(id) }

// assertAddr panics on out-of-range addresses (used by tests).
func (c *Ctx) assertAddr(a mem.Addr) {
	if int64(a) < 0 || int64(a) >= c.sys.Space.Used() {
		panic(fmt.Sprintf("core: address %d out of allocated range", a))
	}
}
