package core

import (
	"fmt"

	"gosvm/internal/paragon"
)

// Topology selects the network model connecting the nodes.
type Topology string

const (
	// TopoCrossbar is the default latency/bandwidth crossbar: every pair
	// of nodes has an independent wire.
	TopoCrossbar Topology = "crossbar"
	// TopoMesh is the Paragon's 2-D wormhole mesh at link granularity
	// (XY routing, per-link occupancy).
	TopoMesh Topology = "mesh"
)

// ParseTopology validates a topology name.
func ParseTopology(s string) (Topology, error) {
	switch t := Topology(s); t {
	case TopoCrossbar, TopoMesh:
		return t, nil
	}
	return "", fmt.Errorf("core: unknown topology %q (have crossbar, mesh)", s)
}

// BarrierMode selects the barrier algorithm.
type BarrierMode string

const (
	// BarrierAuto picks the centralized manager up to BarrierCrossover
	// nodes and the k-ary combining tree above it.
	BarrierAuto BarrierMode = "auto"
	// BarrierCentral always uses the single-manager algorithm of the
	// paper's prototypes (every node reports to node 0).
	BarrierCentral BarrierMode = "central"
	// BarrierTree always uses the hierarchical k-ary tree barrier.
	BarrierTree BarrierMode = "tree"
)

// ParseBarrierMode validates a barrier mode name.
func ParseBarrierMode(s string) (BarrierMode, error) {
	switch b := BarrierMode(s); b {
	case BarrierAuto, BarrierCentral, BarrierTree:
		return b, nil
	}
	return "", fmt.Errorf("core: unknown barrier mode %q (have auto, central, tree)", s)
}

const (
	// BarrierCrossover is the machine size above which BarrierAuto
	// switches from the centralized manager to the tree. At 64 nodes the
	// centralized algorithm is what the paper measured; beyond it the
	// manager's serialized O(n) interrupt service dominates barrier time.
	BarrierCrossover = 64
	// DefaultBarrierRadix is the tree fan-in. Radix 8 keeps the tree at
	// most 4 levels deep up to 4096 nodes while bounding any one node's
	// service burst to 8 arrivals.
	DefaultBarrierRadix = 8
)

// Machine describes the simulated multicomputer independently of the
// protocol under test: how many nodes, how they are connected, what the
// basic operations cost, and which barrier algorithm coordinates them.
// The zero value means "the paper's machine": 8 crossbar nodes with
// Paragon costs and the centralized barrier.
type Machine struct {
	// Nodes is the machine size. Zero means 8 (the paper's prototype).
	Nodes int

	// Topology selects the network model. Empty means TopoCrossbar.
	Topology Topology

	// MeshRows/MeshCols fix the mesh grid shape. Both zero (the default)
	// selects the most-square factorization of Nodes. Ignored for the
	// crossbar.
	MeshRows, MeshCols int

	// Costs is the basic-operation cost model. The zero value means
	// paragon.DefaultCosts (the paper's Table 3).
	Costs paragon.Costs

	// Barrier selects the barrier algorithm. Empty means BarrierAuto.
	Barrier BarrierMode

	// BarrierRadix is the tree barrier fan-in. Zero means
	// DefaultBarrierRadix. Ignored by the centralized barrier.
	BarrierRadix int
}

// Defaults fills unset fields with the paper's machine.
func (m *Machine) Defaults() {
	if m.Nodes == 0 {
		m.Nodes = 8
	}
	if m.Topology == "" {
		m.Topology = TopoCrossbar
	}
	if m.Costs == (paragon.Costs{}) {
		m.Costs = paragon.DefaultCosts()
	}
	if m.Barrier == "" {
		m.Barrier = BarrierAuto
	}
	if m.BarrierRadix == 0 {
		m.BarrierRadix = DefaultBarrierRadix
	}
}

// Validate checks a defaulted Machine for consistency.
func (m *Machine) Validate() error {
	if m.Nodes < 1 {
		return fmt.Errorf("core: machine needs at least 1 node, got %d", m.Nodes)
	}
	switch m.Topology {
	case TopoCrossbar, TopoMesh:
	default:
		return fmt.Errorf("core: unknown topology %q", m.Topology)
	}
	if (m.MeshRows != 0 || m.MeshCols != 0) && m.Topology != TopoMesh {
		return fmt.Errorf("core: mesh dimensions given for topology %q", m.Topology)
	}
	if m.MeshRows != 0 || m.MeshCols != 0 {
		if m.MeshRows <= 0 || m.MeshCols <= 0 {
			return fmt.Errorf("core: partial mesh dimensions %dx%d", m.MeshRows, m.MeshCols)
		}
		if m.MeshRows*m.MeshCols != m.Nodes {
			return fmt.Errorf("core: mesh %dx%d does not hold %d nodes", m.MeshRows, m.MeshCols, m.Nodes)
		}
	}
	switch m.Barrier {
	case BarrierAuto, BarrierCentral, BarrierTree:
	default:
		return fmt.Errorf("core: unknown barrier mode %q", m.Barrier)
	}
	if m.BarrierRadix < 2 {
		return fmt.Errorf("core: barrier radix must be >= 2, got %d", m.BarrierRadix)
	}
	return nil
}

// TreeBarrier reports whether this machine uses the tree barrier.
func (m *Machine) TreeBarrier() bool {
	switch m.Barrier {
	case BarrierTree:
		return true
	case BarrierCentral:
		return false
	default:
		return m.Nodes > BarrierCrossover
	}
}
