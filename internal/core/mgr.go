package core

import (
	"fmt"
	"sort"

	"gosvm/internal/fault"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// This file fails over the synchronization-manager roles the way
// recover.go fails over the home role: each manager's state (the
// lock-owner table, barrier arrivals, GC-done counts) is mirrored to its
// K backups — the same replicasOf set that mirrors its home pages —
// before any grant or release that depends on the mutation is sent. On
// a watchdog-declared failure a deterministic promotion rule (the
// lowest-id live backup) takes over the dead node's manager roles,
// re-registers its accepted barrier arrivals in the original
// genealogical order, reclaims free lock tokens stranded on it, and
// redirects in-flight kLockAcq/kLockFwd/kBarrier traffic.
//
// Like adoptPage, promotion runs instantaneously in event context and
// reads the failed manager's tables directly: the simulation's stand-in
// for replaying the mirrored shadow on the backup. Mirror-before-grant
// ordering makes the two provably identical — no mutation becomes
// visible to any third node before its mirror is on the wire.

// lockMgrOf returns the node currently holding lock-manager duty for
// lock: the natural manager (lock % NumProcs) unless a crash promoted a
// backup.
func (s *System) lockMgrOf(lock int) int {
	nat := lock % s.Opts.NumProcs
	if s.syncMgr == nil {
		return nat
	}
	return s.syncMgr[nat]
}

// bmgrNode returns the node currently running the centralized barrier
// (and the homeless GC rendezvous).
func (s *System) bmgrNode() int { return s.bmNode }

// engineBase returns node n's shared protocol base. Crash recovery
// requires the home-based protocols, so the concrete engine here is
// always *hlrcEngine.
func (s *System) engineBase(n int) *base {
	return &s.Engines[n].(*hlrcEngine).base
}

// mgrShadow is a backup's replica of mirrored manager state. Promotion
// reads the failed manager's authoritative tables (see the file
// comment), so the shadow serves as the cost model and a cross-check.
type mgrShadow struct {
	lockOwner   map[int]int
	barArrived  int
	barEpisodes int
	gcDone      int
}

// mgrMirror is the kMgrMirror payload: one incremental manager-state
// update, sent to every backup before the dependent grant or release.
type mgrMirror struct {
	Lock   int            // >= 0: owner-table update for this lock
	Owner  int            // new owner (owner-table update)
	Rep    *barrierReport // non-nil: one barrier arrival
	Reset  bool           // barrier released: arrival state cleared
	GCDone bool           // homeless GC rendezvous arrival
}

// mirrorEnabled reports whether manager mutations are mirrored: the run
// has the recovery subsystem and at least one backup per role.
func (b *base) mirrorEnabled() bool {
	return b.sys.rec != nil && b.sys.rec.k > 0
}

func (b *base) sendMgrMirror(mm *mgrMirror, size int) {
	for _, rep := range b.sys.replicasOf(b.self) {
		b.st().MirrorBytes += int64(size)
		b.node.Send(rep, paragon.Msg{
			Kind:   kMgrMirror,
			Size:   size,
			Class:  stats.ClassProtocol,
			Target: b.syncTarget(),
			Body:   mm,
		})
	}
}

// mirrorLockOwner replicates one owner-table update to this manager's
// backups. Called from mgrSetOwner, which every owner-table mutation
// goes through — always before the forward or grant it enables.
func (b *base) mirrorLockOwner(lock, owner int) {
	if !b.mirrorEnabled() {
		return
	}
	b.sendMgrMirror(&mgrMirror{Lock: lock, Owner: owner}, 12)
}

// mirrorBarrierArrival replicates one registered arrival (report
// included) before the arrival can contribute to a release.
func (b *base) mirrorBarrierArrival(rep *barrierReport) {
	if !b.mirrorEnabled() {
		return
	}
	b.sendMgrMirror(&mgrMirror{Lock: -1, Rep: rep},
		8+rep.VC.WireSize()+recsWireSize(rep.Recs))
}

// mirrorBarrierReset tells the backups a barrier episode completed.
func (b *base) mirrorBarrierReset() {
	if !b.mirrorEnabled() {
		return
	}
	b.sendMgrMirror(&mgrMirror{Lock: -1, Reset: true}, 8)
}

// mirrorGCDone replicates one homeless GC rendezvous arrival.
func (b *base) mirrorGCDone() {
	if !b.mirrorEnabled() {
		return
	}
	b.sendMgrMirror(&mgrMirror{Lock: -1, GCDone: true}, 8)
}

// handleMgrMirror applies one mirrored update to this backup's shadow.
// A backup promoted in the meantime drops stragglers: its live tables
// are already authoritative.
func (b *base) handleMgrMirror(m paragon.Msg) (sim.Time, func()) {
	return b.costs().LockHandling, func() {
		mm := m.Body.(*mgrMirror)
		sh := &b.mshadow
		switch {
		case mm.Lock >= 0:
			if b.sys.lockMgrOf(mm.Lock) == b.self {
				return
			}
			if sh.lockOwner == nil {
				sh.lockOwner = make(map[int]int)
			}
			sh.lockOwner[mm.Lock] = mm.Owner
		case mm.Rep != nil:
			if b.sys.bmgrNode() == b.self {
				return
			}
			sh.barArrived++
		case mm.Reset:
			if b.sys.bmgrNode() == b.self {
				return
			}
			sh.barArrived = 0
			sh.barEpisodes++
		case mm.GCDone:
			sh.gcDone++
		}
	}
}

// deliverAdoptedRelease hands a barrier release to a node whose arrival
// was adopted from a crashed manager: that node's app proc is parked in
// its own (ex-manager) local-release slot. If the node is still down
// the release waits there and rejoin wakes the proc at restart.
func (b *base) deliverAdoptedRelease(node int, g *grantInfo) {
	ob := b.sys.engineBase(node)
	if ob.bmgr == nil {
		return
	}
	ob.bmgr.localRelease = g
	if ob.bmgr.localWait != nil && !b.sys.M.Down(node) {
		w := ob.bmgr.localWait
		ob.bmgr.localWait = nil
		w.Unpark()
	}
}

// lockSlotsOf returns the natural lock-manager slots currently served
// by node, in slot order.
func (s *System) lockSlotsOf(node int) []int {
	var slots []int
	for nat := 0; nat < s.Opts.NumProcs; nat++ {
		if s.lockMgrOf(nat) == node {
			slots = append(slots, nat)
		}
	}
	return slots
}

// lockRoleInUse reports whether any lock managed by dead has been
// touched by another node — materialized state or an owner-table entry
// — and returns one such lock for the error message. Locks only the
// dead node itself ever used are private surviving state, not a
// dependency of the rest of the machine.
func (s *System) lockRoleInUse(dead int) (int, bool) {
	var locks []int
	seen := make(map[int]bool)
	for n := range s.Engines {
		if n == dead {
			continue
		}
		nb := s.engineBase(n)
		for l := range nb.locks {
			if !seen[l] {
				seen[l] = true
				locks = append(locks, l)
			}
		}
		for l := range nb.lockOwner {
			if !seen[l] {
				seen[l] = true
				locks = append(locks, l)
			}
		}
	}
	sort.Ints(locks)
	for _, l := range locks {
		if s.lockMgrOf(l) == dead {
			return l, true
		}
	}
	return 0, false
}

// aliveMgrSuccessor elects the new holder of the dead node's manager
// roles: the lowest-id live backup. Deliberately distinct from
// aliveSuccessor's ring order — the promotion rule is protocol-visible
// and must stay deterministic under overlapping outages.
func (s *System) aliveMgrSuccessor(dead int) int {
	best := -1
	for _, cand := range s.replicasOf(dead) {
		if s.M.Down(cand) {
			continue
		}
		if best < 0 || cand < best {
			best = cand
		}
	}
	return best
}

// failoverManagers moves the dead node's synchronization-manager roles
// to the elected backup, reclaims stranded lock tokens, and redirects
// in-flight synchronization traffic. With no backups (K=0) an in-use
// role is unrecoverable and the run fails fast, at detection time, with
// an error naming the manager — not a generic watchdog timeout.
func (s *System) failoverManagers(dead int, now sim.Time) {
	r := s.rec
	slots := s.lockSlotsOf(dead)
	barRole := s.bmgrNode() == dead && s.Opts.NumProcs > 1

	fail := func(role, reason string) {
		c, _ := r.crashOf(dead, now)
		s.fatal = &fault.NodeDeadError{
			Node:     dead,
			At:       c.At,
			Restarts: !c.Permanent(),
			Role:     role,
			Reason:   reason,
		}
		s.K.Stop()
	}

	c, _ := r.crashOf(dead, now)

	if r.k == 0 {
		// Without backups a manager role cannot move. A transient
		// outage heals by retransmission — requests wait out the
		// restart, as they always did — but a permanent crash of an
		// in-use role is unrecoverable: fail fast, at detection time,
		// naming the manager.
		if c.Permanent() {
			if barRole {
				fail("barrier manager", "no backup holds the barrier arrival state (Recovery.Replicas=0)")
				return
			}
			if len(slots) > 0 {
				if l, used := s.lockRoleInUse(dead); used {
					fail("lock manager",
						fmt.Sprintf("no backup holds the owner table for lock %d (Recovery.Replicas=0)", l))
					return
				}
			}
		}
		// The dead node may still strand lock tokens it acquired as an
		// ordinary owner.
		if revoked, ok := s.reclaimLocks(dead, now); ok {
			s.redirectSyncTraffic(dead, revoked)
		}
		return
	}

	if barRole && s.Opts.Machine.TreeBarrier() {
		// The tree barrier's root is structural and not failed over; a
		// restarting root replays its frozen combine state instead.
		if c.Permanent() {
			fail("barrier manager", "the tree-barrier root is not failed over")
			return
		}
		barRole = false
	}
	if barRole || len(slots) > 0 {
		succ := s.aliveMgrSuccessor(dead)
		if succ < 0 {
			role := "lock manager"
			if barRole {
				role = "barrier manager"
			}
			fail(role, "all manager backups are down")
			return
		}
		if len(slots) > 0 {
			s.promoteLockMgr(dead, succ, slots)
		}
		if barRole {
			s.promoteBarrierMgr(dead, succ)
		}
	}
	if revoked, ok := s.reclaimLocks(dead, now); ok {
		s.redirectSyncTraffic(dead, revoked)
	}
}

// promoteLockMgr moves the dead node's lock-manager slots to succ and
// adopts its owner table for the moved locks. Re-mirroring the adopted
// entries keeps the role crash-tolerant after the promotion, exactly as
// reseedReplicas does for adopted pages.
func (s *System) promoteLockMgr(dead, succ int, slots []int) {
	if s.syncMgr == nil {
		s.syncMgr = make([]int, s.Opts.NumProcs)
		for i := range s.syncMgr {
			s.syncMgr[i] = i
		}
	}
	for _, nat := range slots {
		s.syncMgr[nat] = succ
	}
	db := s.engineBase(dead)
	sb := s.engineBase(succ)
	moved := make([]int, 0, len(db.lockOwner))
	for l := range db.lockOwner {
		if s.lockMgrOf(l) == succ {
			moved = append(moved, l)
		}
	}
	sort.Ints(moved)
	for _, l := range moved {
		sb.mgrSetOwner(l, db.lockOwner[l])
		delete(db.lockOwner, l)
		delete(sb.mshadow.lockOwner, l)
	}
	// The token of a moved lock nobody ever materialized — the dead
	// manager included — still rides with the manager role, and now
	// rests with succ. Locks succ touches for the first time after the
	// promotion get that for free from lockState's default, but a state
	// it materialized before (its own acquire caught mid-flight by the
	// crash) says owner=false and must be re-seated, or the redirected
	// request would queue on a token that no longer exists anywhere.
	var stale []int
	for l, ls := range sb.locks {
		if !ls.owner && s.lockMgrOf(l) == succ && db.locks[l] == nil {
			stale = append(stale, l)
		}
	}
	sort.Ints(stale)
	for _, l := range stale {
		owned := false
		for n := range s.Engines {
			if nls := s.engineBase(n).locks[l]; nls != nil && nls.owner {
				owned = true
				break
			}
		}
		if !owned {
			sb.locks[l].owner = true
		}
	}
	sb.st().Counts.MgrsRehomed += int64(len(slots))
	s.M.Nodes[succ].CPU.Steal(s.Opts.Costs.LockHandling * sim.Time(len(slots)))
}

// promoteBarrierMgr moves the centralized barrier to succ, re-registering
// the arrivals the dead manager had accepted in their original
// genealogical order. The remote waiters' reply ports live in the
// transport layer and survive the crash, so the promoted manager
// responds straight to them at completion; the dead manager's own local
// arrival (zero req) flows back through deliverAdoptedRelease.
func (s *System) promoteBarrierMgr(dead, succ int) {
	db := s.engineBase(dead)
	sb := s.engineBase(succ)
	s.bmNode = succ
	if sb.bmgr == nil {
		sb.bmgr = newBarrierMgr(s.Opts.NumProcs)
	}
	adopted := 0
	if db.bmgr != nil {
		sb.bmgr.arrivals = append(sb.bmgr.arrivals, db.bmgr.arrivals...)
		sb.bmgr.episodes = db.bmgr.episodes
		sb.bmgr.gcDone = db.bmgr.gcDone
		sb.bmgr.gcWaiters = append(sb.bmgr.gcWaiters, db.bmgr.gcWaiters...)
		db.bmgr.arrivals = nil
		db.bmgr.gcWaiters = nil
		adopted = len(sb.bmgr.arrivals)
		for _, a := range sb.bmgr.arrivals {
			sb.mirrorBarrierArrival(a.rep)
		}
	}
	sb.mshadow.barArrived = 0
	sb.st().Counts.MgrsRehomed++
	s.M.Nodes[succ].CPU.Steal(s.Opts.Costs.LockHandling * sim.Time(adopted+1))
}

// reclaimLocks revokes free lock tokens stranded on the dead node: for
// every lock whose token demonstrably sits free on it (cached, not held
// inside a critical section), the lock's manager takes the token back
// and absorbs the dead node's coherence knowledge, so the next grant
// carries its write notices and acquirers proceed at detection time
// instead of waiting out the outage. Held tokens stay pinned — mutual
// exclusion forbids revoking a critical section — which is fatal if the
// holder never restarts, as is dying permanently mid-acquire (the grant
// in flight would deliver the token to a corpse). Returns the set of
// revoked locks, and false when the run was declared dead.
func (s *System) reclaimLocks(dead int, now sim.Time) (map[int]bool, bool) {
	r := s.rec
	db := s.engineBase(dead)
	c, _ := r.crashOf(dead, now)

	fatalOwner := func(reason string) {
		s.fatal = &fault.NodeDeadError{
			Node: dead, At: c.At, Role: "lock owner", Reason: reason,
		}
		s.K.Stop()
	}

	if c.Permanent() {
		var want []int
		for l, ls := range db.locks {
			if ls.wanted {
				want = append(want, l)
			}
		}
		sort.Ints(want)
		if len(want) > 0 {
			fatalOwner(fmt.Sprintf(
				"died permanently while acquiring lock %d; the token grant bound for it is lost", want[0]))
			return nil, false
		}
	}

	// Candidate locks, deterministically ordered: manager tables that
	// record dead as owner, plus tokens materialized on dead itself
	// (a lock dead only ever used locally has no table entry anywhere).
	seen := make(map[int]bool)
	var locks []int
	for n := range s.Engines {
		nb := s.engineBase(n)
		for l, o := range nb.lockOwner {
			if o == dead && s.lockMgrOf(l) == n && !seen[l] {
				seen[l] = true
				locks = append(locks, l)
			}
		}
	}
	for l, ls := range db.locks {
		if ls.owner && !seen[l] {
			seen[l] = true
			locks = append(locks, l)
		}
	}
	sort.Ints(locks)

	revoked := make(map[int]bool)
	absorbed := make(map[int]bool) // managers that already merged dead's knowledge
	synthed := false               // dead's open interval closed on paper
	for _, l := range locks {
		mgr := s.lockMgrOf(l)
		if mgr == dead {
			continue // unpromoted dead manager's own locks (K=0, role unused)
		}
		mb := s.engineBase(mgr)
		dls := db.locks[l]
		if dls == nil || !dls.owner {
			// The token is in flight towards dead (its own acquire):
			// leave the chase alone, it lands after the restart.
			continue
		}
		if dls.held {
			if c.Permanent() {
				fatalOwner(fmt.Sprintf("died holding lock %d inside a critical section", l))
				return nil, false
			}
			// Transient: acquirers must wait for the restart anyway; pin
			// the owner so new acquires keep chasing the restarting node.
			if _, ok := mb.lockOwner[l]; !ok {
				mb.mgrSetOwner(l, dead)
			}
			continue
		}
		// Free token: revoke it. The dead node re-acquires remotely
		// after its restart, like any other node. The owner table's
		// tail is only rewritten when it still points at the dead node:
		// a younger live requester recorded there keeps the chain
		// intact, and its severed forward reconnects as a chase.
		dls.owner = false
		if cur, ok := mb.lockOwner[l]; !ok || cur == dead {
			mb.mgrSetOwner(l, mgr)
		}
		mls := mb.lockState(l)
		mls.owner = true
		mb.st().Counts.LocksReclaimed++
		revoked[l] = true
		if !synthed && !c.Permanent() {
			// Writes made under the revoked token may still sit in
			// dead's open interval: close it on paper so the notices
			// travel with the token. (A permanent corpse never
			// restarts to flush the data, so there is nothing to
			// promise dependents.)
			synthed = true
			db.synthCloseOpen()
		}
		if !absorbed[mgr] {
			absorbed[mgr] = true
			mb.absorbFrom(db)
		}
	}
	return revoked, true
}

// absorbFrom merges another engine's interval knowledge into this one,
// exactly as a lock grant from that node would: unknown records are
// logged, their write notices invalidate local copies, and the clock
// advances. Event context; invalidation work is stolen from compute.
func (b *base) absorbFrom(o *base) {
	var cost sim.Time
	for p := range o.log {
		for _, r := range o.log[p] {
			if r.Interval <= b.clock[r.Proc] || b.hasLogRec(r.Proc, r.Interval) {
				continue
			}
			rec := *r
			if b.sys.homeBased {
				rec.VC = nil
			}
			rc := &rec
			b.insertLog(rc)
			if rec.Interval > b.clock[rec.Proc] {
				b.clock[rec.Proc] = rec.Interval
			}
			for _, pg := range rec.Pages {
				cost += b.co.noticePage(rc, int(pg))
			}
		}
	}
	b.clock.MaxWith(o.clock)
	b.node.CPU.Steal(cost)
}

// redirectSyncTraffic withdraws unacknowledged synchronization requests
// addressed to the dead node and re-sends them to the role's current
// holder — the same timeout-resend shortcut rehomePages uses for
// fetches and flushes. RecallPending returns them oldest-first, so the
// genealogical order of the original sends is preserved.
//
// A forwarded acquire (kLockFwd) is the delicate case: it was addressed
// to the dead node as a link in the token chase, and the owner table
// records the chain's tail, not the token's location. If reclamation
// revoked this lock's token, the forward reconnects to the reclaimed
// token at the manager as a chase; otherwise the token is still bound
// for (or pinned on) the dead node, and the forward is re-sent there —
// retransmission delivers it after the restart, chain intact.
func (s *System) redirectSyncTraffic(dead int, revoked map[int]bool) {
	recalled := s.M.RecallPending(dead, func(m paragon.Msg) bool {
		return m.Kind == kLockAcq || m.Kind == kLockFwd || m.Kind == kBarrier || m.Kind == kGCDone
	})
	for _, msg := range recalled {
		var to int
		switch body := msg.Body.(type) {
		case *lockReq:
			switch {
			case msg.Kind == kLockFwd && revoked[body.Lock]:
				msg.Kind = kLockAcq
				body.Chase = true
				to = s.lockMgrOf(body.Lock)
			case msg.Kind == kLockFwd:
				to = dead
			default: // kLockAcq: the manager role moved
				to = s.lockMgrOf(body.Lock)
			}
		default: // kBarrier, kGCDone
			to = s.bmgrNode()
		}
		s.M.Nodes[msg.From].Send(to, msg)
	}
}
