package core

import (
	"testing"

	"gosvm/internal/fault"
)

// TestLPParallelGate pins the eligibility predicate: the partitioned
// kernel engages exactly for plain multi-node runs, and every
// configuration with globally ordered machinery falls back to the
// sequential kernel (where worker-count identity is trivial).
func TestLPParallelGate(t *testing.T) {
	base := func() Options {
		o := Options{Protocol: ProtoHLRC, NumProcs: 4, RunWorkers: 4}
		o.Defaults()
		return o
	}
	if o := base(); !lpParallel(&o, false) {
		t.Fatal("plain 4-node HLRC run at 4 workers should partition")
	}
	deny := map[string]func(*Options) bool{
		"workers=1":  func(o *Options) bool { o.RunWorkers = 1; return lpParallel(o, false) },
		"one node":   func(o *Options) bool { o.NumProcs = 1; o.Machine.Nodes = 1; return lpParallel(o, false) },
		"seq proto":  func(o *Options) bool { o.Protocol = ProtoSeq; return lpParallel(o, false) },
		"mesh":       func(o *Options) bool { o.Mesh = true; return lpParallel(o, false) },
		"faults":     func(o *Options) bool { p, _ := fault.Profile("lossy", 1); o.Fault = p; return lpParallel(o, false) },
		"recovery":   func(o *Options) bool { o.Recovery.Replicas = 1; return lpParallel(o, false) },
		"tracing":    func(o *Options) bool { o.TraceLimit = 100; return lpParallel(o, false) },
		"phase caps": func(o *Options) bool { return lpParallel(o, true) },
	}
	for name, mut := range deny {
		o := base()
		if mut(&o) {
			t.Errorf("%s should fall back to the sequential kernel", name)
		}
	}
}
