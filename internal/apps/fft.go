package apps

import (
	"math"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// FFT is the Splash-2 one-dimensional radix-sqrt(n) FFT, included as an
// extension beyond the paper's five programs: its all-to-all matrix
// transposes are the communication pattern the paper's suite lacks. The
// n complex points are arranged as an m x m matrix (m = sqrt(n)) of
// interleaved re/im words, rows distributed in contiguous bands; each of
// the three transpose phases moves every off-diagonal block between every
// pair of processors.
type FFT struct {
	LogN   int      // total points = 1 << LogN (LogN even)
	FlopNs sim.Time // per complex butterfly
	// Impulse initializes the input to a unit impulse at index 0, whose
	// transform is flat — an ordering-independent correctness check.
	Impulse bool

	n, m int
	p    int
	a, b mem.Addr // two m x m complex matrices (2 words per element)
}

// NewFFT returns the kernel; sizes chosen to exercise the all-to-all
// pattern at the same communication-to-computation regime as the paper's
// kernels.
func NewFFT(size Size) *FFT {
	switch size {
	case SizePaper:
		return &FFT{LogN: 20, FlopNs: 4500} // 1M points
	case SizeSmall:
		return &FFT{LogN: 16, FlopNs: 4500}
	default:
		return &FFT{LogN: 8, FlopNs: 4500}
	}
}

func (a *FFT) Name() string { return "fft" }

func (a *FFT) Setup(s *core.Setup) {
	a.n = 1 << a.LogN
	a.m = 1 << (a.LogN / 2)
	a.p = s.P
	a.a = s.Alloc(2 * a.n)
	a.b = s.Alloc(2 * a.n)
}

func (a *FFT) Init(w *core.Init) {
	rng := newLCG(20021)
	for i := 0; i < a.n; i++ {
		re, im := rng.float()-0.5, rng.float()-0.5
		if a.Impulse {
			re, im = 0, 0
			if i == 0 {
				re = 1
			}
		}
		w.Store(a.a+mem.Addr(2*i), re)
		w.Store(a.a+mem.Addr(2*i+1), im)
		w.Store(a.b+mem.Addr(2*i), 0)
		w.Store(a.b+mem.Addr(2*i+1), 0)
	}
	for id := 0; id < a.p; id++ {
		lo, hi := chunk(a.m, a.p, id)
		if hi > lo {
			w.SetHome(a.a+mem.Addr(2*lo*a.m), 2*(hi-lo)*a.m, id)
			w.SetHome(a.b+mem.Addr(2*lo*a.m), 2*(hi-lo)*a.m, id)
		}
	}
}

// fftRow performs an in-place iterative complex FFT on row (length m,
// interleaved re/im).
func fftRow(row []float64, m int) {
	// Bit reversal.
	for i, j := 0, 0; i < m; i++ {
		if i < j {
			row[2*i], row[2*j] = row[2*j], row[2*i]
			row[2*i+1], row[2*j+1] = row[2*j+1], row[2*i+1]
		}
		mask := m >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	for size := 2; size <= m; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < m; start += size {
			for k := 0; k < half; k++ {
				wr, wi := math.Cos(step*float64(k)), math.Sin(step*float64(k))
				i1, i2 := start+k, start+k+half
				xr, xi := row[2*i2]*wr-row[2*i2+1]*wi, row[2*i2]*wi+row[2*i2+1]*wr
				row[2*i2], row[2*i2+1] = row[2*i1]-xr, row[2*i1+1]-xi
				row[2*i1], row[2*i1+1] = row[2*i1]+xr, row[2*i1+1]+xi
			}
		}
	}
}

// rowAddr returns the address of row i of matrix base.
func (a *FFT) rowAddr(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(2*i*a.m)
}

// transpose writes the transpose of src into dst, each proc producing its
// own destination rows by reading a column strip of every source row —
// the all-to-all communication phase.
func (a *FFT) transpose(c *core.Ctx, dst, src mem.Addr, lo, hi int) {
	band := make([]float64, (hi-lo)*2*a.m)
	srcRow := make([]float64, 2*a.m)
	for j := 0; j < a.m; j++ {
		c.ReadRange(a.rowAddr(src, j), srcRow)
		for i := lo; i < hi; i++ {
			band[(i-lo)*2*a.m+2*j] = srcRow[2*i]
			band[(i-lo)*2*a.m+2*j+1] = srcRow[2*i+1]
		}
	}
	for i := lo; i < hi; i++ {
		c.WriteRange(a.rowAddr(dst, i), band[(i-lo)*2*a.m:(i-lo+1)*2*a.m])
	}
	c.Compute(sim.Time(hi-lo) * sim.Time(a.m) * 20)
}

// twiddle applies the inter-dimension twiddle factors to rows [lo,hi).
func (a *FFT) twiddle(c *core.Ctx, base mem.Addr, lo, hi int) {
	row := make([]float64, 2*a.m)
	for i := lo; i < hi; i++ {
		c.ReadRange(a.rowAddr(base, i), row)
		for j := 0; j < a.m; j++ {
			ang := -2 * math.Pi * float64(i) * float64(j) / float64(a.n)
			wr, wi := math.Cos(ang), math.Sin(ang)
			re, im := row[2*j], row[2*j+1]
			row[2*j] = re*wr - im*wi
			row[2*j+1] = re*wi + im*wr
		}
		c.WriteRange(a.rowAddr(base, i), row)
	}
	c.Compute(sim.Time(hi-lo) * sim.Time(a.m) * sim.Time(6*25))
}

func (a *FFT) Worker(c *core.Ctx, id int) {
	lo, hi := chunk(a.m, a.p, id)
	row := make([]float64, 2*a.m)
	logM := a.LogN / 2
	fftBand := func(base mem.Addr) {
		for i := lo; i < hi; i++ {
			c.ReadRange(a.rowAddr(base, i), row)
			fftRow(row, a.m)
			c.WriteRange(a.rowAddr(base, i), row)
		}
		c.Compute(sim.Time(hi-lo) * sim.Time(a.m*logM/2) * a.FlopNs)
	}

	// Six-step FFT: transpose, FFT rows, twiddle, transpose, FFT rows,
	// transpose back.
	a.transpose(c, a.b, a.a, lo, hi)
	c.Barrier(0)
	fftBand(a.b)
	a.twiddle(c, a.b, lo, hi)
	c.Barrier(1)
	a.transpose(c, a.a, a.b, lo, hi)
	c.Barrier(2)
	fftBand(a.a)
	c.Barrier(3)
	a.transpose(c, a.b, a.a, lo, hi)
	c.Barrier(4)
}

func (a *FFT) Gather(c *core.Ctx) []float64 {
	out := make([]float64, 2*a.n)
	c.ReadRange(a.b, out)
	return out
}
