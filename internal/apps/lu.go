package apps

import (
	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// LU performs blocked dense LU factorization without pivoting, following
// the Splash-2 contiguous-blocks kernel: the matrix is stored block-major
// (each BxB block contiguous in shared memory), blocks are assigned to
// processors in a 2-D scatter, and the computation proceeds in
// diagonal/perimeter/interior phases separated by barriers. Sharing is
// coarse-grained with low synchronization frequency, and the work is
// inherently unbalanced — the paper's characterization.
type LU struct {
	N, B   int      // matrix and block dimension
	FlopNs sim.Time // simulated cost per floating-point operation

	nb   int // blocks per dimension
	base mem.Addr
	p    int
	pr   int // processor grid rows
	pc   int
}

// NewLU returns the LU kernel at the given size. SizePaper is the paper's
// 2048x2048 with 32x32 blocks; the per-flop cost reproduces the ~1280s
// sequential time of Table 1.
func NewLU(size Size) *LU {
	switch size {
	case SizePaper:
		return &LU{N: 2048, B: 32, FlopNs: 450}
	case SizeSmall:
		return &LU{N: 512, B: 32, FlopNs: 450}
	default:
		return &LU{N: 48, B: 8, FlopNs: 450}
	}
}

func (a *LU) Name() string { return "lu" }

func (a *LU) blockAddr(bi, bj int) mem.Addr {
	return a.base + mem.Addr((bi*a.nb+bj)*a.B*a.B)
}

// owner implements the Splash-2 2-D scatter decomposition.
func (a *LU) owner(bi, bj int) int {
	return (bi%a.pr)*a.pc + (bj % a.pc)
}

func (a *LU) Setup(s *core.Setup) {
	a.nb = a.N / a.B
	a.p = s.P
	a.pr, a.pc = grid2(s.P)
	a.base = s.Alloc(a.N * a.N)
}

func (a *LU) Init(w *core.Init) {
	// Deterministic, diagonally dominant matrix (no pivoting).
	rng := newLCG(12345)
	for bi := 0; bi < a.nb; bi++ {
		for bj := 0; bj < a.nb; bj++ {
			addr := a.blockAddr(bi, bj)
			for ii := 0; ii < a.B; ii++ {
				for jj := 0; jj < a.B; jj++ {
					i := bi*a.B + ii
					j := bj*a.B + jj
					v := rng.float() - 0.5
					if i == j {
						v += float64(a.N)
					}
					w.Store(addr+mem.Addr(ii*a.B+jj), v)
				}
			}
			w.SetHome(addr, a.B*a.B, a.owner(bi, bj))
		}
	}
}

// readBlock copies block (bi,bj) into buf.
func (a *LU) readBlock(c *core.Ctx, bi, bj int, buf []float64) {
	c.ReadRange(a.blockAddr(bi, bj), buf)
}

func (a *LU) writeBlock(c *core.Ctx, bi, bj int, buf []float64) {
	c.WriteRange(a.blockAddr(bi, bj), buf)
}

func (a *LU) Worker(c *core.Ctx, id int) {
	B := a.B
	diag := make([]float64, B*B)
	left := make([]float64, B*B)
	up := make([]float64, B*B)
	work := make([]float64, B*B)
	bar := 0

	for k := 0; k < a.nb; k++ {
		if a.owner(k, k) == id {
			a.readBlock(c, k, k, diag)
			factorBlock(diag, B)
			a.writeBlock(c, k, k, diag)
			c.Compute(a.FlopNs * sim.Time(2*B*B*B/3))
		}
		c.Barrier(bar)
		bar++

		// Perimeter: row blocks get L^-1 applied, column blocks U^-1.
		// Only processors owning blocks in row k or column k need the
		// diagonal block.
		needsDiag := false
		for t := k + 1; t < a.nb; t++ {
			if a.owner(k, t) == id || a.owner(t, k) == id {
				needsDiag = true
				break
			}
		}
		if needsDiag {
			a.readBlock(c, k, k, diag)
		}
		for j := k + 1; j < a.nb; j++ {
			if a.owner(k, j) != id {
				continue
			}
			a.readBlock(c, k, j, work)
			lowerSolve(diag, work, B)
			a.writeBlock(c, k, j, work)
			c.Compute(a.FlopNs * sim.Time(B*B*B))
		}
		for i := k + 1; i < a.nb; i++ {
			if a.owner(i, k) != id {
				continue
			}
			a.readBlock(c, i, k, work)
			upperSolve(diag, work, B)
			a.writeBlock(c, i, k, work)
			c.Compute(a.FlopNs * sim.Time(B*B*B))
		}
		c.Barrier(bar)
		bar++

		// Interior: A[i][j] -= A[i][k] * A[k][j].
		for i := k + 1; i < a.nb; i++ {
			if a.owner(i, k) != id {
				// Fetch lazily only if we own interior blocks in row i.
				owns := false
				for j := k + 1; j < a.nb; j++ {
					if a.owner(i, j) == id {
						owns = true
						break
					}
				}
				if !owns {
					continue
				}
			}
			a.readBlock(c, i, k, left)
			for j := k + 1; j < a.nb; j++ {
				if a.owner(i, j) != id {
					continue
				}
				a.readBlock(c, k, j, up)
				a.readBlock(c, i, j, work)
				matmulSub(work, left, up, B)
				a.writeBlock(c, i, j, work)
				c.Compute(a.FlopNs * sim.Time(2*B*B*B))
			}
		}
		c.Barrier(bar)
		bar++
	}
	c.Barrier(bar)
}

func (a *LU) Gather(c *core.Ctx) []float64 {
	out := make([]float64, a.N*a.N)
	c.ReadRange(a.base, out)
	return out
}

// factorBlock computes the in-place LU factorization (unit lower
// triangular L) of a BxB block.
func factorBlock(a []float64, b int) {
	for k := 0; k < b; k++ {
		pivot := a[k*b+k]
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= pivot
			l := a[i*b+k]
			for j := k + 1; j < b; j++ {
				a[i*b+j] -= l * a[k*b+j]
			}
		}
	}
}

// lowerSolve applies L^-1 (unit lower triangle of diag) to work, i.e.
// solves L*X = work in place.
func lowerSolve(diag, work []float64, b int) {
	for k := 0; k < b; k++ {
		for i := k + 1; i < b; i++ {
			l := diag[i*b+k]
			for j := 0; j < b; j++ {
				work[i*b+j] -= l * work[k*b+j]
			}
		}
	}
}

// upperSolve solves X*U = work in place, with U the upper triangle of
// diag (non-unit diagonal).
func upperSolve(diag, work []float64, b int) {
	for k := 0; k < b; k++ {
		u := diag[k*b+k]
		for i := 0; i < b; i++ {
			work[i*b+k] /= u
		}
		for j := k + 1; j < b; j++ {
			ukj := diag[k*b+j]
			for i := 0; i < b; i++ {
				work[i*b+j] -= work[i*b+k] * ukj
			}
		}
	}
}

// matmulSub computes c -= a*b for BxB blocks.
func matmulSub(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			ci := c[i*n : (i+1)*n]
			bk := b[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				ci[j] -= aik * bk[j]
			}
		}
	}
}

// lcg is a tiny deterministic pseudo-random generator for initial data.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// float returns a value in [0,1).
func (r *lcg) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a value in [0,n).
func (r *lcg) intn(n int) int {
	return int(r.next() % uint64(n))
}
