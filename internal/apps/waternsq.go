package apps

import (
	"math"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// molWords is the shared record per molecule: position, velocity, force.
const molWords = 9

// WaterNsq simulates a system of water molecules in liquid state with the
// Splash-2 Water-Nsquared structure: an O(n^2) brute-force pair
// computation with a cutoff radius. Molecules live in one contiguous
// array partitioned into contiguous pieces of n/p molecules. In each
// step, processor p computes interactions between its molecules and the
// following n/2 molecules (cyclic), accumulating forces locally and
// flushing them into each touched partition under that partition's lock —
// the paper's "per-partition locks to protect these updates" pattern.
type WaterNsq struct {
	N      int // molecules
	Steps  int
	PairNs sim.Time // per pair evaluation
	UpdNs  sim.Time // per molecule kinetics update
	Cutoff float64
	Box    float64

	p    int
	base mem.Addr
}

// NewWaterNsq returns the application; SizePaper is the paper's 4096
// molecules, calibrated to the ~1130s sequential time of Table 1.
func NewWaterNsq(size Size) *WaterNsq {
	w := &WaterNsq{PairNs: 44800, UpdNs: 2000, Cutoff: 0.35, Box: 1.0}
	switch size {
	case SizePaper:
		w.N, w.Steps = 4096, 3
	case SizeSmall:
		w.N, w.Steps = 512, 3
	default:
		w.N, w.Steps = 48, 2
	}
	return w
}

func (a *WaterNsq) Name() string { return "water-nsq" }

func (a *WaterNsq) molAddr(i int) mem.Addr { return a.base + mem.Addr(i*molWords) }

// part returns the partition (owning processor) of molecule i, inverting
// the contiguous chunk() split.
func (a *WaterNsq) part(i int) int {
	per := a.N / a.p
	rem := a.N % a.p
	cut := rem * (per + 1)
	if i < cut {
		return i / (per + 1)
	}
	return rem + (i-cut)/per
}

func (a *WaterNsq) Setup(s *core.Setup) {
	a.p = s.P
	// Molecules are allocated contiguously (unaligned), so partitions
	// share pages at their boundaries — the false sharing the paper
	// attributes to this application.
	a.base = s.AllocUnaligned(a.N * molWords)
}

func (a *WaterNsq) Init(w *core.Init) {
	rng := newLCG(4242)
	for i := 0; i < a.N; i++ {
		base := a.molAddr(i)
		for d := 0; d < 3; d++ {
			w.Store(base+mem.Addr(d), rng.float()*a.Box) // position
			w.Store(base+mem.Addr(3+d), 0)               // velocity
			w.Store(base+mem.Addr(6+d), 0)               // force
		}
	}
	for id := 0; id < a.p; id++ {
		lo, hi := chunk(a.N, a.p, id)
		if hi > lo {
			w.SetHome(a.molAddr(lo), (hi-lo)*molWords, id)
		}
	}
}

func (a *WaterNsq) Worker(c *core.Ctx, id int) {
	lo, hi := chunk(a.N, a.p, id)
	half := a.N / 2
	bar := 0
	// Local force accumulation for the whole system (sparse use).
	acc := make([]float64, a.N*3)
	touched := make([]bool, a.p)
	pos := make([]float64, 3)
	other := make([]float64, 3)

	for step := 0; step < a.Steps; step++ {
		// Phase 1: zero own forces.
		for i := lo; i < hi; i++ {
			c.WriteRange(a.molAddr(i)+6, []float64{0, 0, 0})
		}
		c.Compute(a.UpdNs * sim.Time(hi-lo) / 4)
		c.Barrier(bar)
		bar++

		// Phase 2: pair forces — my molecules against the following n/2.
		for i := range acc {
			acc[i] = 0
		}
		for i := range touched {
			touched[i] = false
		}
		for i := lo; i < hi; i++ {
			c.ReadRange(a.molAddr(i), pos)
			pairs := 0
			for dj := 1; dj <= half; dj++ {
				j := (i + dj) % a.N
				if dj == half && a.N%2 == 0 && i > j {
					continue // the antipodal pair is computed once, by min(i,j)
				}
				c.ReadRange(a.molAddr(j), other)
				pairs++
				dx := pos[0] - other[0]
				dy := pos[1] - other[1]
				dz := pos[2] - other[2]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > a.Cutoff*a.Cutoff {
					continue
				}
				f := 1.0 / (r2 + 1e-3)
				inv := f / math.Sqrt(r2+1e-9)
				fx, fy, fz := dx*inv, dy*inv, dz*inv
				acc[i*3] += fx
				acc[i*3+1] += fy
				acc[i*3+2] += fz
				acc[j*3] -= fx
				acc[j*3+1] -= fy
				acc[j*3+2] -= fz
				touched[a.part(j)] = true
			}
			touched[a.part(i)] = true
			c.Compute(a.PairNs * sim.Time(pairs))
		}
		// Flush accumulated forces into each touched partition under its
		// per-partition lock.
		f3 := make([]float64, 3)
		for part := 0; part < a.p; part++ {
			if !touched[part] {
				continue
			}
			plo, phi := chunk(a.N, a.p, part)
			c.Lock(100 + part)
			for j := plo; j < phi; j++ {
				ax, ay, az := acc[j*3], acc[j*3+1], acc[j*3+2]
				if ax == 0 && ay == 0 && az == 0 {
					continue
				}
				c.ReadRange(a.molAddr(j)+6, f3)
				f3[0] += ax
				f3[1] += ay
				f3[2] += az
				c.WriteRange(a.molAddr(j)+6, f3)
			}
			c.Compute(a.UpdNs * sim.Time(phi-plo) / 2)
			c.Unlock(100 + part)
		}
		c.Barrier(bar)
		bar++

		// Phase 3: kinetics on own molecules.
		mol := make([]float64, molWords)
		const dt = 1e-4
		for i := lo; i < hi; i++ {
			c.ReadRange(a.molAddr(i), mol)
			for d := 0; d < 3; d++ {
				mol[3+d] += mol[6+d] * dt
				mol[d] += mol[3+d] * dt
			}
			c.WriteRange(a.molAddr(i), mol)
		}
		c.Compute(a.UpdNs * sim.Time(hi-lo))
		c.Barrier(bar)
		bar++
	}
	c.Barrier(bar)
}

func (a *WaterNsq) Gather(c *core.Ctx) []float64 {
	out := make([]float64, a.N*molWords)
	c.ReadRange(a.base, out)
	return out
}
