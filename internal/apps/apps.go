// Package apps implements the paper's five benchmark programs against the
// SVM programming interface: the Splash-2 kernels and applications LU,
// Water-Nsquared, Water-Spatial, and Raytrace, plus the TreadMarks SOR
// kernel. Each program preserves the original's data layout, partitioning,
// and synchronization pattern — the things the coherence protocols can
// observe — while the arithmetic itself is simplified where that does not
// change the memory-access pattern.
//
// Computation is charged in simulated time per element/pair/ray, with
// constants calibrated so the paper-size problems reproduce the sequential
// execution times of the paper's Table 1 (see EXPERIMENTS.md).
package apps

import (
	"fmt"

	"gosvm/internal/core"
)

// Size selects a problem scale.
type Size string

const (
	// SizeTest is for unit tests: seconds of simulated time, milliseconds
	// of real time.
	SizeTest Size = "test"
	// SizeSmall is for quick benchmark runs.
	SizeSmall Size = "small"
	// SizePaper matches the paper's Table 1 problem sizes.
	SizePaper Size = "paper"
)

// New returns the named application at the given size. Names follow the
// paper: lu, sor, water-nsq, water-sp, raytrace.
func New(name string, size Size) (core.App, error) {
	switch name {
	case "lu":
		return NewLU(size), nil
	case "sor":
		return NewSOR(size, false), nil
	case "sor-zero":
		return NewSOR(size, true), nil
	case "water-nsq":
		return NewWaterNsq(size), nil
	case "water-sp":
		return NewWaterSp(size), nil
	case "raytrace":
		return NewRaytrace(size), nil
	case "fft":
		return NewFFT(size), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names lists the five paper benchmarks in presentation order.
var Names = []string{"lu", "sor", "water-nsq", "water-sp", "raytrace"}

// grid2 factors p into rows x cols as squarely as possible (rows <= cols).
func grid2(p int) (rows, cols int) {
	rows = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			rows = d
		}
	}
	return rows, p / rows
}

// grid3 factors p into a 3-D grid as cubically as possible.
func grid3(p int) (x, y, z int) {
	best := [3]int{1, 1, p}
	bestScore := p * p
	for i := 1; i*i*i <= p; i++ {
		if p%i != 0 {
			continue
		}
		rem := p / i
		for j := i; j*j <= rem; j++ {
			if rem%j != 0 {
				continue
			}
			k := rem / j
			score := k - i // flatter is worse
			if score < bestScore {
				bestScore = score
				best = [3]int{i, j, k}
			}
		}
	}
	return best[0], best[1], best[2]
}

// chunk returns the [lo,hi) range of n items assigned to proc id of p.
func chunk(n, p, id int) (lo, hi int) {
	per := n / p
	rem := n % p
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
