package apps

import (
	"testing"

	"gosvm/internal/core"
)

// scaleSOR is a small fixed-size grid the large-machine tests share:
// big enough that every node of a 1024-node machine owns at least one
// row, small enough to keep host time in seconds.
func scaleSOR() *SOR {
	return &SOR{H: 1024, W: 128, Iters: 2, ElemNs: 9700}
}

func runScaleSOR(t *testing.T, proto core.Protocol, nodes int) *core.Result {
	t.Helper()
	opts := core.Options{
		Protocol:  proto,
		PageBytes: 4096,
		Machine:   core.Machine{Nodes: nodes},
	}
	res, err := core.Run(opts, scaleSOR(), false)
	if err != nil {
		t.Fatalf("sor/%s/p%d: %v", proto, nodes, err)
	}
	return res
}

// TestScaleSmoke256 is the CI scale-smoke entry point (run under
// -race): a 256-node machine — tree barrier, sparse clocks, lazy state
// — must produce results bitwise identical to the sequential baseline
// under every protocol.
func TestScaleSmoke256(t *testing.T) {
	seq := runScaleSOR(t, core.ProtoSeq, 1)
	for _, proto := range core.Protocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res := runScaleSOR(t, proto, 256)
			if len(res.Data) != len(seq.Data) {
				t.Fatalf("result length %d, want %d", len(res.Data), len(seq.Data))
			}
			for i := range res.Data {
				if res.Data[i] != seq.Data[i] {
					t.Fatalf("word %d = %v, want %v", i, res.Data[i], seq.Data[i])
				}
			}
		})
	}
}

// TestSOR1024Nodes is the headline scale acceptance check: a 1024-node
// SOR run completes and matches the sequential result exactly, for a
// homeless and a home-based protocol.
func TestSOR1024Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node run in -short mode")
	}
	seq := runScaleSOR(t, core.ProtoSeq, 1)
	for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res := runScaleSOR(t, proto, 1024)
			for i := range res.Data {
				if res.Data[i] != seq.Data[i] {
					t.Fatalf("word %d = %v, want %v", i, res.Data[i], seq.Data[i])
				}
			}
			if res.Stats.Elapsed <= 0 {
				t.Fatalf("no simulated time elapsed")
			}
		})
	}
}
