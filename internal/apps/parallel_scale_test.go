package apps

import (
	"bytes"
	"testing"

	"gosvm/internal/core"
)

// runScaleSORWorkers is runScaleSOR with an explicit -run-workers value,
// returning the full stats JSON alongside the result for byte-equality
// checks across worker counts.
func runScaleSORWorkers(t *testing.T, proto core.Protocol, nodes, workers int) (*core.Result, string) {
	t.Helper()
	opts := core.Options{
		Protocol:   proto,
		PageBytes:  4096,
		Machine:    core.Machine{Nodes: nodes},
		RunWorkers: workers,
	}
	res, err := core.Run(opts, scaleSOR(), false)
	if err != nil {
		t.Fatalf("sor/%s/p%d/w%d: %v", proto, nodes, workers, err)
	}
	var buf bytes.Buffer
	if err := res.Stats.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return res, buf.String()
}

// TestParallelKernelScale256 is the CI parallel-kernel smoke (run under
// -race): the 256-node scale run — tree barrier, sparse clocks, lazy
// state — executed on the partitioned kernel at -run-workers 4 must be
// byte-identical to the sequential kernel (workers=1), stats and data.
func TestParallelKernelScale256(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			ref, refJSON := runScaleSORWorkers(t, proto, 256, 1)
			par, parJSON := runScaleSORWorkers(t, proto, 256, 4)
			if parJSON != refJSON {
				t.Fatalf("workers=4 stats diverge from workers=1:\n--- w=1 ---\n%s\n--- w=4 ---\n%s",
					refJSON, parJSON)
			}
			if len(par.Data) != len(ref.Data) {
				t.Fatalf("data length %d != %d", len(par.Data), len(ref.Data))
			}
			for i := range par.Data {
				if par.Data[i] != ref.Data[i] {
					t.Fatalf("word %d = %v, want %v", i, par.Data[i], ref.Data[i])
				}
			}
		})
	}
}
