package apps

import (
	"fmt"
	"math"
	"testing"

	"gosvm/internal/core"
)

func seqRun(t *testing.T, app core.App) *core.Result {
	t.Helper()
	res, err := core.Run(core.Options{Protocol: core.ProtoSeq, NumProcs: 1, PageBytes: 1024}, app, false)
	if err != nil {
		t.Fatalf("seq %s: %v", app.Name(), err)
	}
	return res
}

func parRun(t *testing.T, app core.App, proto core.Protocol, p int) *core.Result {
	t.Helper()
	res, err := core.Run(core.Options{Protocol: proto, NumProcs: p, PageBytes: 1024}, app, false)
	if err != nil {
		t.Fatalf("%s/%s/p%d: %v", app.Name(), proto, p, err)
	}
	return res
}

// checkMatch compares parallel results against the sequential reference.
// tol 0 means bitwise equality.
func checkMatch(t *testing.T, name string, seq, par []float64, tol float64) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: result sizes differ: %d vs %d", name, len(seq), len(par))
	}
	bad := 0
	for i := range seq {
		if tol == 0 {
			if math.Float64bits(seq[i]) != math.Float64bits(par[i]) {
				bad++
				if bad < 4 {
					t.Errorf("%s: word %d: seq %v par %v", name, i, seq[i], par[i])
				}
			}
			continue
		}
		d := math.Abs(seq[i] - par[i])
		scale := math.Max(1, math.Abs(seq[i]))
		if d/scale > tol {
			bad++
			if bad < 4 {
				t.Errorf("%s: word %d: seq %v par %v (rel %g)", name, i, seq[i], par[i], d/scale)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d words mismatched", name, bad, len(seq))
	}
}

// validateApp runs the app under every protocol and processor count and
// checks the result against the sequential reference.
func validateApp(t *testing.T, mk func() core.App, tol float64, procs []int) {
	seq := seqRun(t, mk())
	for _, proto := range core.Protocols {
		for _, p := range procs {
			proto, p := proto, p
			t.Run(fmt.Sprintf("%s/p%d", proto, p), func(t *testing.T) {
				par := parRun(t, mk(), proto, p)
				checkMatch(t, fmt.Sprintf("%s/%s/p%d", mk().Name(), proto, p), seq.Data, par.Data, tol)
			})
		}
	}
}

func TestLUMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewLU(SizeTest) }, 0, []int{2, 4, 8})
}

func TestSORMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewSOR(SizeTest, false) }, 0, []int{2, 4, 8})
}

func TestSORZeroMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewSOR(SizeTest, true) }, 0, []int{4})
}

func TestWaterNsqMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewWaterNsq(SizeTest) }, 1e-9, []int{2, 4, 8})
}

func TestWaterSpMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewWaterSp(SizeTest) }, 1e-9, []int{2, 4, 8})
}

func TestRaytraceMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewRaytrace(SizeTest) }, 0, []int{2, 4, 8})
}

// LU must actually factorize: reconstruct L*U and compare with the
// original matrix.
func TestLUFactorizationCorrect(t *testing.T) {
	app := NewLU(SizeTest)
	res := seqRun(t, app)
	n := app.N
	// Rebuild the original matrix with the same generator as Init.
	orig := make([]float64, n*n)
	rng := newLCG(12345)
	nb := n / app.B
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for ii := 0; ii < app.B; ii++ {
				for jj := 0; jj < app.B; jj++ {
					i, j := bi*app.B+ii, bj*app.B+jj
					v := rng.float() - 0.5
					if i == j {
						v += float64(n)
					}
					orig[i*n+j] = v
				}
			}
		}
	}
	// The result is block-major; convert to row-major L and U.
	fac := make([]float64, n*n)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			blk := res.Data[(bi*nb+bj)*app.B*app.B:]
			for ii := 0; ii < app.B; ii++ {
				for jj := 0; jj < app.B; jj++ {
					fac[(bi*app.B+ii)*n+bj*app.B+jj] = blk[ii*app.B+jj]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				l := fac[i*n+k]
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				u := fac[k*n+j]
				if k > j {
					u = 0
				}
				sum += l * u
			}
			if math.Abs(sum-orig[i*n+j]) > 1e-8*float64(n) {
				t.Fatalf("LU reconstruction wrong at (%d,%d): %v vs %v", i, j, sum, orig[i*n+j])
			}
		}
	}
}

// SOR must relax towards smooth values: after iterations, interior values
// stay within the initial value range (maximum principle).
func TestSORMaximumPrinciple(t *testing.T) {
	app := NewSOR(SizeTest, false)
	res := seqRun(t, app)
	for i, v := range res.Data {
		if v < 0 || v > 1 {
			t.Fatalf("SOR value %d out of [0,1]: %v", i, v)
		}
	}
}

// The zero-initialized SOR variant must keep deep-interior elements at
// zero for the first iterations (the property the paper's §4.8 experiment
// relies on).
func TestSORZeroInterior(t *testing.T) {
	// Influence from the boundary moves inward about two points per
	// red-black iteration; pick a grid deep enough that the center stays
	// untouched.
	app := &SOR{H: 64, W: 64, Iters: 4, ElemNs: 100, ZeroInit: true}
	res := seqRun(t, app)
	mid := (app.H / 2 * app.hw) + app.hw/2
	if res.Data[mid] != 0 {
		t.Fatalf("deep interior changed after %d iterations: %v", app.Iters, res.Data[mid])
	}
}

// Water energy sanity: forces must be finite and symmetric enough that
// momentum stays bounded.
func TestWaterNsqFiniteAndMomentum(t *testing.T) {
	app := NewWaterNsq(SizeTest)
	res := seqRun(t, app)
	var px, py, pz float64
	for i := 0; i < app.N; i++ {
		for d := 0; d < molWords; d++ {
			v := res.Data[i*molWords+d]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("molecule %d word %d not finite: %v", i, d, v)
			}
		}
		px += res.Data[i*molWords+3]
		py += res.Data[i*molWords+4]
		pz += res.Data[i*molWords+5]
	}
	// Pairwise antisymmetric forces conserve momentum (starting at rest).
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-9 {
		t.Fatalf("momentum not conserved: (%g, %g, %g)", px, py, pz)
	}
}

// Water-Spatial: cell lists must remain a partition of the molecules.
func TestWaterSpListsArePartition(t *testing.T) {
	app := NewWaterSp(SizeTest)
	res := parRun(t, app, core.ProtoHLRC, 4)
	_ = res
	// The gather returns molecule data; membership is implied by
	// positions. Verify every position is inside the box.
	for i := 0; i < app.N; i++ {
		for d := 0; d < 3; d++ {
			v := res.Data[i*molWords+d]
			if v < 0 || v > app.Box {
				t.Fatalf("molecule %d escaped the box: %v", i, v)
			}
		}
	}
}

// Raytrace must produce a non-trivial image (spheres actually hit).
func TestRaytraceImageNontrivial(t *testing.T) {
	app := NewRaytrace(SizeTest)
	res := seqRun(t, app)
	distinct := map[float64]bool{}
	for _, v := range res.Data {
		distinct[v] = true
		if math.IsNaN(v) {
			t.Fatal("NaN pixel")
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("image has only %d distinct values", len(distinct))
	}
}

func TestGridHelpers(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		r, c := grid2(p)
		if r*c != p || r > c {
			t.Fatalf("grid2(%d) = %dx%d", p, r, c)
		}
		x, y, z := grid3(p)
		if x*y*z != p {
			t.Fatalf("grid3(%d) = %dx%dx%d", p, x, y, z)
		}
	}
	if x, y, z := grid3(64); x != 4 || y != 4 || z != 4 {
		t.Fatalf("grid3(64) = %dx%dx%d, want 4x4x4", x, y, z)
	}
}

func TestChunkCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100} {
		for _, p := range []int{1, 3, 8} {
			covered := 0
			prev := 0
			for id := 0; id < p; id++ {
				lo, hi := chunk(n, p, id)
				if lo != prev {
					t.Fatalf("chunk(%d,%d,%d) gap: lo=%d prev=%d", n, p, id, lo, prev)
				}
				covered += hi - lo
				prev = hi
			}
			if covered != n {
				t.Fatalf("chunk(%d,%d) covers %d", n, p, covered)
			}
		}
	}
}

func TestLCGDeterministic(t *testing.T) {
	a, b := newLCG(1), newLCG(1)
	for i := 0; i < 100; i++ {
		if a.float() != b.float() {
			t.Fatal("lcg not deterministic")
		}
	}
	r := newLCG(2)
	for i := 0; i < 1000; i++ {
		v := r.float()
		if v < 0 || v >= 1 {
			t.Fatalf("lcg out of range: %v", v)
		}
	}
}

func TestNewRegistry(t *testing.T) {
	for _, name := range append(append([]string{}, Names...), "sor-zero") {
		app, err := New(name, SizeTest)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if app.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, app.Name())
		}
	}
	if _, err := New("nope", SizeTest); err == nil {
		t.Fatal("unknown app did not error")
	}
}

func TestFFTMatchesSequential(t *testing.T) {
	validateApp(t, func() core.App { return NewFFT(SizeTest) }, 0, []int{2, 4, 8})
}

// An impulse transforms to a flat spectrum under any output ordering.
func TestFFTImpulseFlat(t *testing.T) {
	app := NewFFT(SizeTest)
	app.Impulse = true
	res := seqRun(t, app)
	for i := 0; i < app.n; i++ {
		re, im := res.Data[2*i], res.Data[2*i+1]
		if math.Abs(re-1) > 1e-9 || math.Abs(im) > 1e-9 {
			t.Fatalf("spectrum bin %d = (%v, %v), want (1, 0)", i, re, im)
		}
	}
}

// Parseval: the FFT preserves energy up to the scale factor n.
func TestFFTParseval(t *testing.T) {
	app := NewFFT(SizeTest)
	res := seqRun(t, app)
	// Recompute the input energy with the same generator as Init.
	rng := newLCG(20021)
	var ein float64
	for i := 0; i < app.n; i++ {
		re, im := rng.float()-0.5, rng.float()-0.5
		ein += re*re + im*im
	}
	var eout float64
	for i := 0; i < app.n; i++ {
		eout += res.Data[2*i]*res.Data[2*i] + res.Data[2*i+1]*res.Data[2*i+1]
	}
	if math.Abs(eout-float64(app.n)*ein)/(float64(app.n)*ein) > 1e-9 {
		t.Fatalf("Parseval violated: out %v, want %v", eout, float64(app.n)*ein)
	}
}
