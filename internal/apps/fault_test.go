package apps

import (
	"fmt"
	"testing"

	"gosvm/internal/core"
	"gosvm/internal/fault"
)

// SOR and LU must validate against the sequential reference under the
// lossy and hostile fault profiles for all four protocols — the
// acceptance bar for the reliability layer on real workloads.
func TestAppsUnderFaultProfiles(t *testing.T) {
	apps := []struct {
		name string
		mk   func() core.App
	}{
		{"sor", func() core.App { return NewSOR(SizeTest, false) }},
		{"lu", func() core.App { return NewLU(SizeTest) }},
	}
	for _, a := range apps {
		seq := seqRun(t, a.mk())
		for _, profile := range []string{fault.ProfileLossy, fault.ProfileHostile} {
			plan, err := fault.Profile(profile, 1234)
			if err != nil {
				t.Fatal(err)
			}
			for _, proto := range core.Protocols {
				a, proto, profile, plan := a, proto, profile, plan
				t.Run(fmt.Sprintf("%s/%s/%s", a.name, proto, profile), func(t *testing.T) {
					opts := core.Options{
						Protocol:  proto,
						NumProcs:  4,
						PageBytes: 1024,
						Fault:     plan,
					}
					res, err := core.Run(opts, a.mk(), false)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", a.name, proto, profile, err)
					}
					checkMatch(t, fmt.Sprintf("%s/%s/%s", a.name, proto, profile),
						seq.Data, res.Data, 0)
				})
			}
		}
	}
}
