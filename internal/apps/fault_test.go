package apps

import (
	"fmt"
	"testing"

	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/sim"
)

// SOR and LU must validate against the sequential reference under the
// lossy and hostile fault profiles for all four protocols — the
// acceptance bar for the reliability layer on real workloads.
// SOR and LU must also survive a mid-run home crash under the
// home-based protocols when replication is on: node 1's pages are
// re-homed and the results still match the sequential reference
// bitwise. The crash times are derived from the fault-free run so one
// lands mid-interval (during a compute phase) and one right around the
// barrier crunch, wherever the app's phase boundaries fall.
func TestAppsSurviveHomeCrash(t *testing.T) {
	apps := []struct {
		name string
		mk   func() core.App
	}{
		{"sor", func() core.App { return NewSOR(SizeTest, false) }},
		{"lu", func() core.App { return NewLU(SizeTest) }},
	}
	for _, a := range apps {
		seq := seqRun(t, a.mk())
		for _, proto := range []core.Protocol{core.ProtoHLRC, core.ProtoOHLRC} {
			free := parRun(t, a.mk(), proto, 4)
			elapsed := free.Stats.Elapsed
			for label, at := range map[string]sim.Time{
				"mid-interval": elapsed / 3,
				"at-barrier":   2 * elapsed / 3,
			} {
				a, proto, label, at := a, proto, label, at
				t.Run(fmt.Sprintf("%s/%s/%s", a.name, proto, label), func(t *testing.T) {
					opts := core.Options{
						Protocol:  proto,
						NumProcs:  4,
						PageBytes: 1024,
						Fault: fault.Plan{
							Seed: 1,
							// Short RTO: suspicion (3 attempts) fires well
							// inside the outage. The outage stays shorter
							// than the retry layer's give-up horizon so
							// traffic still chasing the restarting node
							// (e.g. a pinned held lock token) survives it.
							RTO: 100 * sim.Microsecond,
							Crashes: []fault.Crash{
								{Node: 1, At: at, RestartAt: at + 5*sim.Millisecond},
							},
						},
						Recovery: core.Recovery{Replicas: 1},
					}
					res, err := core.Run(opts, a.mk(), false)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", a.name, proto, label, err)
					}
					checkMatch(t, fmt.Sprintf("%s/%s/%s", a.name, proto, label),
						seq.Data, res.Data, 0)
					if res.Stats.Elapsed <= elapsed {
						t.Fatalf("crash run finished in %v, not slower than fault-free %v",
							res.Stats.Elapsed, elapsed)
					}
				})
			}
		}
	}
}

func TestAppsUnderFaultProfiles(t *testing.T) {
	apps := []struct {
		name string
		mk   func() core.App
	}{
		{"sor", func() core.App { return NewSOR(SizeTest, false) }},
		{"lu", func() core.App { return NewLU(SizeTest) }},
	}
	for _, a := range apps {
		seq := seqRun(t, a.mk())
		for _, profile := range []string{fault.ProfileLossy, fault.ProfileHostile} {
			plan, err := fault.Profile(profile, 1234)
			if err != nil {
				t.Fatal(err)
			}
			for _, proto := range core.Protocols {
				a, proto, profile, plan := a, proto, profile, plan
				t.Run(fmt.Sprintf("%s/%s/%s", a.name, proto, profile), func(t *testing.T) {
					opts := core.Options{
						Protocol:  proto,
						NumProcs:  4,
						PageBytes: 1024,
						Fault:     plan,
					}
					res, err := core.Run(opts, a.mk(), false)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", a.name, proto, profile, err)
					}
					checkMatch(t, fmt.Sprintf("%s/%s/%s", a.name, proto, profile),
						seq.Data, res.Data, 0)
				})
			}
		}
	}
}
