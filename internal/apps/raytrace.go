package apps

import (
	"math"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// Raytrace renders a sphere scene with the Splash-2 Raytrace structure:
// the scene data is read-only (causing fragmentation but little protocol
// action after the first fetch), work is distributed through per-processor
// task queues in shared memory with task stealing, and pixels are written
// into a shared image plane — fine-grained accesses that cause
// considerable false sharing at the page level, the paper's
// characterization.
type Raytrace struct {
	W, H    int // image size
	Tile    int // tile edge
	Spheres int
	TestNs  sim.Time // per ray-sphere intersection test

	p      int
	scene  mem.Addr // Spheres x 8 words: center(3), radius, color(3), refl
	image  mem.Addr // H x W words
	queues mem.Addr // per proc: [head, tail, items...]
	qcap   int
	ntiles int
	tilesX int
}

const sphWords = 8

// NewRaytrace returns the application; SizePaper renders 256x256 over a
// 64-sphere scene (standing in for balls4.env), calibrated to the ~956s
// sequential time of Table 1.
func NewRaytrace(size Size) *Raytrace {
	r := &Raytrace{Tile: 2, Spheres: 64, TestNs: 73000}
	switch size {
	case SizePaper:
		r.W, r.H = 256, 256
	case SizeSmall:
		r.W, r.H = 128, 128
	default:
		r.W, r.H, r.Spheres = 32, 32, 8
	}
	return r
}

func (a *Raytrace) Name() string { return "raytrace" }

func (a *Raytrace) qBase(q int) mem.Addr { return a.queues + mem.Addr(q*(a.qcap+2)) }

func (a *Raytrace) Setup(s *core.Setup) {
	a.p = s.P
	a.tilesX = a.W / a.Tile
	a.ntiles = a.tilesX * (a.H / a.Tile)
	a.scene = s.Alloc(a.Spheres * sphWords)
	a.image = s.Alloc(a.H * a.W)
	a.qcap = a.ntiles
	a.queues = s.Alloc(a.p * (a.qcap + 2))
}

func (a *Raytrace) Init(w *core.Init) {
	rng := newLCG(31337)
	for i := 0; i < a.Spheres; i++ {
		base := a.scene + mem.Addr(i*sphWords)
		w.Store(base+0, rng.float()*2-1)     // cx
		w.Store(base+1, rng.float()*2-1)     // cy
		w.Store(base+2, rng.float()*4+2)     // cz (in front of camera)
		w.Store(base+3, rng.float()*0.3+0.1) // radius
		w.Store(base+4, rng.float())         // r
		w.Store(base+5, rng.float())         // g
		w.Store(base+6, rng.float())         // b
		w.Store(base+7, rng.float()*0.5)     // reflectivity
	}
	for i := 0; i < a.H*a.W; i++ {
		w.Store(a.image+mem.Addr(i), 0)
	}
	// Tiles are dealt into the task queues in small round-robin blocks:
	// neighboring tiles (and hence words of the same image page) belong
	// to different processors, producing the fine-grained false sharing
	// and fragmentation the paper attributes to this application. Ray
	// costs vary with scene content, so queues drain unevenly and idle
	// processors steal.
	counts := make([]int, a.p)
	for t := 0; t < a.ntiles; t++ {
		q := (t / 2) % a.p
		w.StoreI(a.qBase(q)+mem.Addr(2+counts[q]), int64(t))
		counts[q]++
	}
	for q := 0; q < a.p; q++ {
		w.StoreI(a.qBase(q)+0, 0)                // head
		w.StoreI(a.qBase(q)+1, int64(counts[q])) // tail
		w.SetHome(a.qBase(q), a.qcap+2, q)
	}
	// Image rows are distributed in contiguous bands.
	for id := 0; id < a.p; id++ {
		lo, hi := chunk(a.H, a.p, id)
		if hi > lo {
			w.SetHome(a.image+mem.Addr(lo*a.W), (hi-lo)*a.W, id)
		}
	}
}

// pop takes a task from queue q, returning -1 if empty.
func (a *Raytrace) pop(c *core.Ctx, q int) int {
	base := a.qBase(q)
	c.Lock(300 + q)
	head := c.LoadI(base + 0)
	tail := c.LoadI(base + 1)
	task := int64(-1)
	if head < tail {
		task = c.LoadI(base + mem.Addr(2+head))
		c.StoreI(base+0, head+1)
	}
	c.Unlock(300 + q)
	return int(task)
}

func (a *Raytrace) Worker(c *core.Ctx, id int) {
	// Fetch tasks from the own queue, then steal round-robin.
	for probe := 0; probe < a.p; {
		q := (id + probe) % a.p
		task := a.pop(c, q)
		if task < 0 {
			probe++
			continue
		}
		probe = 0
		a.renderTile(c, task)
	}
	c.Barrier(0)
}

func (a *Raytrace) renderTile(c *core.Ctx, tile int) {
	tx := (tile % a.tilesX) * a.Tile
	ty := (tile / a.tilesX) * a.Tile
	sph := make([]float64, a.Spheres*sphWords)
	c.ReadRange(a.scene, sph)
	row := make([]float64, a.Tile)
	tests := 0
	for y := ty; y < ty+a.Tile; y++ {
		for x := tx; x < tx+a.Tile; x++ {
			v, n := a.trace(sph, x, y)
			row[x-tx] = v
			tests += n
		}
		c.WriteRange(a.image+mem.Addr(y*a.W+tx), row)
	}
	c.Compute(a.TestNs * sim.Time(tests))
}

// trace shoots the primary ray for pixel (x,y), with one shadow ray and
// one reflection bounce, returning a luminance value and the number of
// ray-sphere tests performed.
func (a *Raytrace) trace(sph []float64, x, y int) (float64, int) {
	ox, oy, oz := 0.0, 0.0, 0.0
	dx := (float64(x)/float64(a.W))*2 - 1
	dy := (float64(y)/float64(a.H))*2 - 1
	dz := 1.5
	tests := 0
	lum := 0.0
	weight := 1.0
	for bounce := 0; bounce < 2; bounce++ {
		bestT := math.Inf(1)
		best := -1
		for s := 0; s < a.Spheres; s++ {
			tests++
			t := hitSphere(sph[s*sphWords:], ox, oy, oz, dx, dy, dz)
			if t > 1e-6 && t < bestT {
				bestT = t
				best = s
			}
		}
		if best < 0 {
			lum += weight * 0.1 // background
			break
		}
		b := sph[best*sphWords:]
		hx, hy, hz := ox+bestT*dx, oy+bestT*dy, oz+bestT*dz
		nx, ny, nz := (hx-b[0])/b[3], (hy-b[1])/b[3], (hz-b[2])/b[3]
		// Shadow ray towards a fixed light.
		lx, ly, lz := norm3(2-hx, -3-hy, -1-hz)
		shadow := false
		for s := 0; s < a.Spheres; s++ {
			if s == best {
				continue
			}
			tests++
			if t := hitSphere(sph[s*sphWords:], hx, hy, hz, lx, ly, lz); t > 1e-6 {
				shadow = true
				break
			}
		}
		diffuse := 0.0
		if !shadow {
			diffuse = math.Max(0, nx*lx+ny*ly+nz*lz)
		}
		col := 0.3*b[4] + 0.4*b[5] + 0.3*b[6]
		lum += weight * col * (0.2 + 0.8*diffuse)
		// Reflect.
		dot := dx*nx + dy*ny + dz*nz
		dx, dy, dz = dx-2*dot*nx, dy-2*dot*ny, dz-2*dot*nz
		ox, oy, oz = hx, hy, hz
		weight *= b[7]
		if weight < 1e-3 {
			break
		}
	}
	return lum, tests
}

func hitSphere(s []float64, ox, oy, oz, dx, dy, dz float64) float64 {
	cx, cy, cz, r := s[0], s[1], s[2], s[3]
	px, py, pz := ox-cx, oy-cy, oz-cz
	a2 := dx*dx + dy*dy + dz*dz
	b := 2 * (px*dx + py*dy + pz*dz)
	c := px*px + py*py + pz*pz - r*r
	disc := b*b - 4*a2*c
	if disc < 0 {
		return -1
	}
	return (-b - math.Sqrt(disc)) / (2 * a2)
}

func norm3(x, y, z float64) (float64, float64, float64) {
	n := math.Sqrt(x*x + y*y + z*z)
	return x / n, y / n, z / n
}

func (a *Raytrace) Gather(c *core.Ctx) []float64 {
	out := make([]float64, a.H*a.W)
	c.ReadRange(a.image, out)
	return out
}
