package apps

import (
	"math"
	"sort"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// WaterSp solves the same molecular dynamics problem as Water-Nsquared
// but with the Splash-2 spatial-directory structure: the 3-D box is
// divided into cells at least one cutoff radius wide, each cell holds a
// linked list of its molecules (head and next pointers live in shared
// memory), and each processor owns a contiguous cubical partition of
// cells. A processor reads data from processors owning cells on its
// partition boundary; molecules migrate slowly between cells, making the
// application irregular — the paper's characterization.
type WaterSp struct {
	N      int // molecules
	G      int // cells per axis
	Steps  int
	PairNs sim.Time
	UpdNs  sim.Time
	Box    float64

	p          int
	px, py, pz int
	mols       mem.Addr // N x molWords
	heads      mem.Addr // G^3 words, -1 = empty
	nexts      mem.Addr // N words
}

// NewWaterSp returns the application; SizePaper is the paper's 4096
// molecules, calibrated to the ~1080s sequential time of Table 1.
func NewWaterSp(size Size) *WaterSp {
	w := &WaterSp{PairNs: 600000, UpdNs: 2000, Box: 1.0}
	switch size {
	case SizePaper:
		w.N, w.G, w.Steps = 4096, 8, 4
	case SizeSmall:
		w.N, w.G, w.Steps = 512, 4, 3
	default:
		w.N, w.G, w.Steps = 48, 2, 2
	}
	return w
}

func (a *WaterSp) Name() string { return "water-sp" }

func (a *WaterSp) molAddr(i int) mem.Addr  { return a.mols + mem.Addr(i*molWords) }
func (a *WaterSp) cellIdx(x, y, z int) int { return (x*a.G+y)*a.G + z }

// cellOf maps a position to its cell coordinates (clamped to the box).
func (a *WaterSp) cellOf(x, y, z float64) (int, int, int) {
	cl := func(v float64) int {
		c := int(v / a.Box * float64(a.G))
		if c < 0 {
			c = 0
		}
		if c >= a.G {
			c = a.G - 1
		}
		return c
	}
	return cl(x), cl(y), cl(z)
}

// cellOwner maps a cell to the processor owning its cubical partition.
func (a *WaterSp) cellOwner(x, y, z int) int {
	ix := x * a.px / a.G
	iy := y * a.py / a.G
	iz := z * a.pz / a.G
	return (ix*a.py+iy)*a.pz + iz
}

// ownerOfCell returns the owner of a flat cell index.
func (a *WaterSp) ownerOfCell(cell int) int {
	z := cell % a.G
	y := (cell / a.G) % a.G
	x := cell / (a.G * a.G)
	return a.cellOwner(x, y, z)
}

func (a *WaterSp) Setup(s *core.Setup) {
	a.p = s.P
	a.px, a.py, a.pz = grid3(s.P)
	a.mols = s.AllocUnaligned(a.N * molWords)
	a.heads = s.Alloc(a.G * a.G * a.G)
	a.nexts = s.Alloc(a.N)
}

func (a *WaterSp) Init(w *core.Init) {
	rng := newLCG(98765)
	for cell := 0; cell < a.G*a.G*a.G; cell++ {
		w.StoreI(a.heads+mem.Addr(cell), -1)
	}
	for i := 0; i < a.N; i++ {
		base := a.molAddr(i)
		var pos [3]float64
		for d := 0; d < 3; d++ {
			pos[d] = rng.float() * a.Box
			w.Store(base+mem.Addr(d), pos[d])
			w.Store(base+mem.Addr(3+d), 0)
			w.Store(base+mem.Addr(6+d), 0)
		}
		cx, cy, cz := a.cellOf(pos[0], pos[1], pos[2])
		cell := a.cellIdx(cx, cy, cz)
		w.StoreI(a.nexts+mem.Addr(i), int64(w.Load(a.heads+mem.Addr(cell))))
		w.StoreI(a.heads+mem.Addr(cell), int64(i))
		w.SetHome(base, molWords, a.cellOwner(cx, cy, cz))
	}
	for x := 0; x < a.G; x++ {
		for y := 0; y < a.G; y++ {
			for z := 0; z < a.G; z++ {
				w.SetHome(a.heads+mem.Addr(a.cellIdx(x, y, z)), 1, a.cellOwner(x, y, z))
			}
		}
	}
}

// listOf collects the molecule ids in a cell.
func (a *WaterSp) listOf(c *core.Ctx, cell int, buf []int) []int {
	buf = buf[:0]
	m := c.LoadI(a.heads + mem.Addr(cell))
	for m >= 0 {
		buf = append(buf, int(m))
		m = c.LoadI(a.nexts + mem.Addr(m))
	}
	return buf
}

// ownCells returns this processor's cells.
func (a *WaterSp) ownCells(id int) [][3]int {
	var cells [][3]int
	for x := 0; x < a.G; x++ {
		for y := 0; y < a.G; y++ {
			for z := 0; z < a.G; z++ {
				if a.cellOwner(x, y, z) == id {
					cells = append(cells, [3]int{x, y, z})
				}
			}
		}
	}
	return cells
}

type molMove struct {
	m        int
	from, to int // cell indexes
}

func (a *WaterSp) Worker(c *core.Ctx, id int) {
	cells := a.ownCells(id)
	cutoff := a.Box / float64(a.G)
	bar := 0
	acc := make([]float64, a.N*3)
	accOwner := make([]int16, a.N) // owner of each touched molecule's cell
	var touchedMols []int
	mine := make([]int, 0, 64)
	theirs := make([]int, 0, 64)
	pos := make([]float64, 3)
	other := make([]float64, 3)
	f3 := make([]float64, 3)
	mol := make([]float64, molWords)

	touch := func(m, owner int) {
		if acc[m*3] == 0 && acc[m*3+1] == 0 && acc[m*3+2] == 0 && accOwner[m] < 0 {
			touchedMols = append(touchedMols, m)
		}
		accOwner[m] = int16(owner)
	}

	for step := 0; step < a.Steps; step++ {
		// Phase 1: zero forces of molecules in own cells.
		for _, cc := range cells {
			mine = a.listOf(c, a.cellIdx(cc[0], cc[1], cc[2]), mine)
			for _, m := range mine {
				c.WriteRange(a.molAddr(m)+6, []float64{0, 0, 0})
			}
		}
		c.Barrier(bar)
		bar++

		// Phase 2: pair forces over own cells and their neighbors. The
		// pair (m, m2) is computed by the cell containing the smaller id.
		touchedMols = touchedMols[:0]
		for i := range accOwner {
			accOwner[i] = -1
		}
		for i := range acc {
			acc[i] = 0
		}
		for _, cc := range cells {
			cellOwnerHere := id
			mine = a.listOf(c, a.cellIdx(cc[0], cc[1], cc[2]), mine)
			pairs := 0
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for dz := -1; dz <= 1; dz++ {
						nx, ny, nz := cc[0]+dx, cc[1]+dy, cc[2]+dz
						if nx < 0 || ny < 0 || nz < 0 || nx >= a.G || ny >= a.G || nz >= a.G {
							continue
						}
						nOwner := a.cellOwner(nx, ny, nz)
						theirs = a.listOf(c, a.cellIdx(nx, ny, nz), theirs)
						for _, m := range mine {
							c.ReadRange(a.molAddr(m), pos)
							for _, m2 := range theirs {
								if m2 <= m {
									continue
								}
								c.ReadRange(a.molAddr(m2), other)
								pairs++
								ddx := pos[0] - other[0]
								ddy := pos[1] - other[1]
								ddz := pos[2] - other[2]
								r2 := ddx*ddx + ddy*ddy + ddz*ddz
								if r2 > cutoff*cutoff {
									continue
								}
								f := 1.0 / (r2 + 1e-3)
								inv := f / math.Sqrt(r2+1e-9)
								touch(m, cellOwnerHere)
								touch(m2, nOwner)
								acc[m*3] += ddx * inv
								acc[m*3+1] += ddy * inv
								acc[m*3+2] += ddz * inv
								acc[m2*3] -= ddx * inv
								acc[m2*3+1] -= ddy * inv
								acc[m2*3+2] -= ddz * inv
							}
						}
					}
				}
			}
			c.Compute(a.PairNs * sim.Time(pairs))
		}
		// Flush accumulated forces per owning partition, under its lock,
		// in ascending owner order.
		sort.Slice(touchedMols, func(i, j int) bool {
			oi, oj := accOwner[touchedMols[i]], accOwner[touchedMols[j]]
			if oi != oj {
				return oi < oj
			}
			return touchedMols[i] < touchedMols[j]
		})
		for i := 0; i < len(touchedMols); {
			owner := int(accOwner[touchedMols[i]])
			c.Lock(200 + owner)
			n := 0
			for ; i < len(touchedMols) && int(accOwner[touchedMols[i]]) == owner; i++ {
				m := touchedMols[i]
				c.ReadRange(a.molAddr(m)+6, f3)
				f3[0] += acc[m*3]
				f3[1] += acc[m*3+1]
				f3[2] += acc[m*3+2]
				c.WriteRange(a.molAddr(m)+6, f3)
				n++
			}
			c.Compute(a.UpdNs * sim.Time(n) / 2)
			c.Unlock(200 + owner)
		}
		c.Barrier(bar)
		bar++

		// Phase 3a: kinetics for molecules in own cells; record migrations
		// but defer the list surgery so no processor mutates a list
		// another is still iterating.
		var moves []molMove
		const dt = 5e-3
		for _, cc := range cells {
			cell := a.cellIdx(cc[0], cc[1], cc[2])
			mine = a.listOf(c, cell, mine)
			for _, m := range mine {
				c.ReadRange(a.molAddr(m), mol)
				for d := 0; d < 3; d++ {
					mol[3+d] += mol[6+d] * dt
					mol[d] += mol[3+d] * dt
					if mol[d] < 0 {
						mol[d] = -mol[d]
						mol[3+d] = -mol[3+d]
					}
					if mol[d] > a.Box {
						mol[d] = 2*a.Box - mol[d]
						mol[3+d] = -mol[3+d]
					}
				}
				c.WriteRange(a.molAddr(m), mol)
				nx, ny, nz := a.cellOf(mol[0], mol[1], mol[2])
				if newCell := a.cellIdx(nx, ny, nz); newCell != cell {
					moves = append(moves, molMove{m: m, from: cell, to: newCell})
				}
			}
			c.Compute(a.UpdNs * sim.Time(len(mine)))
		}
		c.Barrier(bar)
		bar++

		// Phase 3b: apply migrations under the owning partitions' locks
		// (ascending order to avoid deadlock).
		for _, mv := range moves {
			a.migrate(c, mv)
		}
		c.Barrier(bar)
		bar++
	}
	c.Barrier(bar)
}

// migrate moves a molecule between cell lists, locking the owning
// partitions in id order.
func (a *WaterSp) migrate(c *core.Ctx, mv molMove) {
	o1 := a.ownerOfCell(mv.from)
	o2 := a.ownerOfCell(mv.to)
	lo, hi := o1, o2
	if lo > hi {
		lo, hi = hi, lo
	}
	c.Lock(200 + lo)
	if hi != lo {
		c.Lock(200 + hi)
	}
	// Unlink from the old list.
	prev := int64(-1)
	cur := c.LoadI(a.heads + mem.Addr(mv.from))
	for cur != int64(mv.m) && cur >= 0 {
		prev = cur
		cur = c.LoadI(a.nexts + mem.Addr(cur))
	}
	if cur == int64(mv.m) {
		next := c.LoadI(a.nexts + mem.Addr(mv.m))
		if prev < 0 {
			c.StoreI(a.heads+mem.Addr(mv.from), next)
		} else {
			c.StoreI(a.nexts+mem.Addr(prev), next)
		}
	}
	// Link into the new list.
	c.StoreI(a.nexts+mem.Addr(mv.m), c.LoadI(a.heads+mem.Addr(mv.to)))
	c.StoreI(a.heads+mem.Addr(mv.to), int64(mv.m))
	if hi != lo {
		c.Unlock(200 + hi)
	}
	c.Unlock(200 + lo)
}

func (a *WaterSp) Gather(c *core.Ctx) []float64 {
	out := make([]float64, a.N*molWords)
	c.ReadRange(a.mols, out)
	return out
}
