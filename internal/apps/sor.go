package apps

import (
	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// SOR is the TreadMarks red-black successive over-relaxation kernel: two
// arrays (red and black points of the grid) partitioned into contiguous
// bands of rows, one band per processor. Each iteration updates all red
// points from black neighbors, barriers, then black from red, barriers.
// Communication is nearest-neighbor: only the boundary rows between bands
// move.
//
// ZeroInit reproduces the paper's §4.8 experiment: all interior elements
// start at zero so interior pages see no updates for many iterations —
// the case most favorable to the homeless protocol (empty diffs) — which
// the paper uses to show HLRC is still ~10% faster.
type SOR struct {
	H, W     int // grid height and width (red + black columns each W/2)
	Iters    int
	ElemNs   sim.Time // per element update
	ZeroInit bool

	p          int
	red, black mem.Addr // H x (W/2) each
	hw         int      // W / 2
}

// NewSOR returns the kernel; SizePaper uses a 2048x1024 grid for 51
// iterations, calibrated to the ~1036s sequential time of Table 1.
func NewSOR(size Size, zero bool) *SOR {
	switch size {
	case SizePaper:
		return &SOR{H: 2048, W: 1024, Iters: 51, ElemNs: 9700, ZeroInit: zero}
	case SizeSmall:
		return &SOR{H: 512, W: 256, Iters: 20, ElemNs: 9700, ZeroInit: zero}
	default:
		return &SOR{H: 32, W: 16, Iters: 4, ElemNs: 9700, ZeroInit: zero}
	}
}

func (a *SOR) Name() string {
	if a.ZeroInit {
		return "sor-zero"
	}
	return "sor"
}

func (a *SOR) Setup(s *core.Setup) {
	a.p = s.P
	a.hw = a.W / 2
	a.red = s.Alloc(a.H * a.hw)
	a.black = s.Alloc(a.H * a.hw)
}

func (a *SOR) Init(w *core.Init) {
	rng := newLCG(777)
	for i := 0; i < a.H; i++ {
		for j := 0; j < a.hw; j++ {
			rv, bv := rng.float(), rng.float()
			if a.ZeroInit && i > 0 && i < a.H-1 && j > 0 && j < a.hw-1 {
				rv, bv = 0, 0
			}
			w.Store(a.red+mem.Addr(i*a.hw+j), rv)
			w.Store(a.black+mem.Addr(i*a.hw+j), bv)
		}
	}
	for id := 0; id < a.p; id++ {
		lo, hi := chunk(a.H, a.p, id)
		if hi > lo {
			w.SetHome(a.red+mem.Addr(lo*a.hw), (hi-lo)*a.hw, id)
			w.SetHome(a.black+mem.Addr(lo*a.hw), (hi-lo)*a.hw, id)
		}
	}
}

// rowAddr returns the address of row i of the given array.
func (a *SOR) rowAddr(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(i*a.hw)
}

// sweep updates rows [lo,hi) of dst from src. On the physical grid, red
// and black points interleave: the neighbors of dst[i][j] are src[i][j],
// src[i][j +/- 1] (phase-dependent) and src[i-1][j], src[i+1][j].
// Rows 0 and H-1 are fixed boundary rows (as columns 0 and hw-1 already
// are): skipping them keeps every updated point's stencil fully in
// bounds, so results are identical at any processor count — including
// machines where a band is a single row and there is no previous loop
// iteration to have filled the neighbor buffers.
func (a *SOR) sweep(c *core.Ctx, dst, src mem.Addr, lo, hi int, phase int) {
	if lo < 1 {
		lo = 1
	}
	if hi > a.H-1 {
		hi = a.H - 1
	}
	up := make([]float64, a.hw)
	mid := make([]float64, a.hw)
	down := make([]float64, a.hw)
	out := make([]float64, a.hw)
	for i := lo; i < hi; i++ {
		c.ReadRange(a.rowAddr(src, i), mid)
		c.ReadRange(a.rowAddr(src, i-1), up)
		c.ReadRange(a.rowAddr(src, i+1), down)
		c.ReadRange(a.rowAddr(dst, i), out)
		for j := 1; j < a.hw-1; j++ {
			sum := mid[j] + up[j] + down[j]
			if phase == 0 {
				sum += mid[j-1]
			} else {
				sum += mid[j+1]
			}
			out[j] = 0.25 * sum
		}
		c.WriteRange(a.rowAddr(dst, i), out)
		c.Compute(a.ElemNs * sim.Time(a.hw-2))
	}
}

func (a *SOR) Worker(c *core.Ctx, id int) {
	lo, hi := chunk(a.H, a.p, id)
	bar := 0
	for it := 0; it < a.Iters; it++ {
		a.sweep(c, a.red, a.black, lo, hi, 0)
		c.Barrier(bar)
		bar++
		a.sweep(c, a.black, a.red, lo, hi, 1)
		c.Barrier(bar)
		bar++
	}
	c.Barrier(bar)
}

func (a *SOR) Gather(c *core.Ctx) []float64 {
	out := make([]float64, 2*a.H*a.hw)
	c.ReadRange(a.red, out[:a.H*a.hw])
	c.ReadRange(a.black, out[a.H*a.hw:])
	return out
}
