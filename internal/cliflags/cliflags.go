// Package cliflags factors the cmd/* binaries' shared flag surface —
// machine shape, fault injection, execution control, and list parsing —
// so a configuration means the same thing in every tool: -procs,
// -topology, -costs, -barrier, -faults, and -seed are spelled and
// interpreted identically in svmrun, svmbench, svmserve, svmperf,
// svmtrace, and svmcosts.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/paragon"
)

// MachineFlags is the machine-shape flag group. Register it with
// AddMachine (single-size tools) or AddMachineList (sweep tools whose
// -procs is a comma-separated axis), then read the parsed configuration
// with Machine or Shape/ProcsList after flag.Parse.
type MachineFlags struct {
	Procs     int    // single machine size (AddMachine)
	ProcsCSV  string // machine-size axis (AddMachineList)
	Topology  string
	MeshDims  string
	CostsName string
	Barrier   string
	Radix     int
	Page      int
	// Mesh is the deprecated boolean spelling of -topology mesh,
	// registered only by AddMeshAlias.
	Mesh bool
}

// AddMachine registers the single-machine flag group on fs: -procs,
// -page, and the shape flags (-topology, -mesh-dims, -costs, -barrier,
// -barrier-radix).
func AddMachine(fs *flag.FlagSet, defProcs, defPage int) *MachineFlags {
	m := &MachineFlags{}
	fs.IntVar(&m.Procs, "procs", defProcs, "number of nodes")
	m.addShape(fs, defPage)
	return m
}

// AddMachineList registers the sweep variant: -procs is a
// comma-separated list of machine sizes; the shape flags apply to every
// size.
func AddMachineList(fs *flag.FlagSet, defProcs string, defPage int) *MachineFlags {
	m := &MachineFlags{}
	fs.StringVar(&m.ProcsCSV, "procs", defProcs, "machine sizes to sweep (comma-separated)")
	m.addShape(fs, defPage)
	return m
}

func (m *MachineFlags) addShape(fs *flag.FlagSet, defPage int) {
	fs.StringVar(&m.Topology, "topology", "",
		`network model: "crossbar" (default) or "mesh" (2-D wormhole, XY routing, per-link contention)`)
	fs.StringVar(&m.MeshDims, "mesh-dims", "",
		`mesh grid as "RxC", e.g. 8x4 (implies -topology mesh; rows*cols must equal the machine size)`)
	fs.StringVar(&m.CostsName, "costs", "",
		`cost profile: "paragon" (default; the paper's Table 3) or "modern" (us-scale kernel-bypass messaging)`)
	fs.StringVar(&m.Barrier, "barrier", "",
		`barrier algorithm: "auto" (default; tree above 64 nodes), "central", or "tree"`)
	fs.IntVar(&m.Radix, "barrier-radix", 0, "tree barrier fan-in (0 = default 8)")
	fs.IntVar(&m.Page, "page", defPage, "page size in bytes")
}

// AddMeshAlias registers the deprecated -mesh boolean for tools that
// documented it before -topology existed.
func (m *MachineFlags) AddMeshAlias(fs *flag.FlagSet) {
	fs.BoolVar(&m.Mesh, "mesh", false, "deprecated: alias for -topology mesh")
}

// Shape returns the size-independent machine configuration (topology,
// cost profile, barrier algorithm). Nodes is left zero so sweep tools
// can stamp it per cell.
func (m *MachineFlags) Shape() (core.Machine, error) {
	var mc core.Machine
	if m.Topology != "" {
		t, err := core.ParseTopology(m.Topology)
		if err != nil {
			return mc, err
		}
		mc.Topology = t
	}
	if m.Mesh && mc.Topology == "" {
		mc.Topology = core.TopoMesh
	}
	if m.MeshDims != "" {
		rows, cols, err := parseDims(m.MeshDims)
		if err != nil {
			return mc, err
		}
		mc.Topology = core.TopoMesh
		mc.MeshRows, mc.MeshCols = rows, cols
	}
	if m.CostsName != "" {
		costs, err := paragon.CostProfile(m.CostsName)
		if err != nil {
			return mc, err
		}
		mc.Costs = costs
	}
	if m.Barrier != "" {
		b, err := core.ParseBarrierMode(m.Barrier)
		if err != nil {
			return mc, err
		}
		mc.Barrier = b
	}
	mc.BarrierRadix = m.Radix
	return mc, nil
}

// Machine returns the full configuration of a single-size tool: Shape
// plus -procs.
func (m *MachineFlags) Machine() (core.Machine, error) {
	mc, err := m.Shape()
	if err != nil {
		return mc, err
	}
	mc.Nodes = m.Procs
	return mc, nil
}

// ProcsList parses the sweep tools' -procs axis.
func (m *MachineFlags) ProcsList() ([]int, error) {
	procs, err := Ints(m.ProcsCSV)
	if err != nil {
		return nil, fmt.Errorf("bad -procs: %w", err)
	}
	for _, p := range procs {
		if p < 1 {
			return nil, fmt.Errorf("bad -procs entry %d", p)
		}
	}
	return procs, nil
}

func parseDims(s string) (rows, cols int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) == 2 {
		rows, err = strconv.Atoi(strings.TrimSpace(parts[0]))
		if err == nil {
			cols, err = strconv.Atoi(strings.TrimSpace(parts[1]))
		}
		if err == nil && rows >= 1 && cols >= 1 {
			return rows, cols, nil
		}
	}
	return 0, 0, fmt.Errorf(`bad -mesh-dims %q: want "RxC", e.g. 8x4`, s)
}

// FaultFlags is the fault-injection flag group.
type FaultFlags struct {
	Profile     string
	Seed        int64
	LinkLevel   bool
	AdaptiveRTO bool
}

// AddFault registers -faults and -seed plus the transport knobs
// -link-level and -adaptive-rto.
func AddFault(fs *flag.FlagSet, defProfile string) *FaultFlags {
	f := AddFaultBasic(fs, defProfile)
	fs.BoolVar(&f.LinkLevel, "link-level", false,
		"render the fault profile at mesh-link granularity: loss and jitter roll per link crossing and correlate with XY routes (implies -topology mesh)")
	fs.BoolVar(&f.AdaptiveRTO, "adaptive-rto", false,
		"per-(src,dst)-edge Jacobson/Karels RTT estimation instead of the plan's fixed retransmission timeout")
	return f
}

// AddFaultBasic registers only -faults and -seed (for sweep tools that
// compose the plan per cell).
func AddFaultBasic(fs *flag.FlagSet, defProfile string) *FaultFlags {
	f := &FaultFlags{}
	fs.StringVar(&f.Profile, "faults", defProfile, "fault profile: none, lossy, hostile, crash")
	fs.Int64Var(&f.Seed, "seed", 1,
		"seed for the fault plan and any seeded workload (apps initialize deterministically), so runs reproduce by construction")
	return f
}

// Plan builds the fault plan for a machine of the given size.
func (f *FaultFlags) Plan(nodes int) (fault.Plan, error) {
	plan, err := fault.Profile(f.Profile, f.Seed)
	if err != nil {
		return plan, err
	}
	if f.LinkLevel {
		plan = plan.AtLinkLevel(nodes)
	}
	plan.AdaptiveRTO = f.AdaptiveRTO
	return plan, nil
}

// AddRunWorkers registers -run-workers, the number of host threads
// driving each single simulation (conservative-window parallel kernel).
func AddRunWorkers(fs *flag.FlagSet) *int {
	return fs.Int("run-workers", 1,
		"host threads per simulation run: >= 2 partitions the kernel into per-node "+
			"logical processes under a conservative lookahead window; results are "+
			"byte-identical at any value (1 = classic sequential event loop)")
}

// AddParallel registers the host-parallelism cap shared by the sweep
// tools.
func AddParallel(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0,
		"max concurrent simulations (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
}

// AddQuiet registers -q.
func AddQuiet(fs *flag.FlagSet) *bool {
	return fs.Bool("q", false, "suppress per-run progress")
}

// Ints parses a comma-separated integer list.
func Ints(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// Floats parses a comma-separated float list.
func Floats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
