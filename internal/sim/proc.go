package sim

import (
	"fmt"
	"runtime/debug"
)

// procKilled is the sentinel panic used by Kernel.Shutdown to unwind
// blocked processes.
type procKilled struct{}

// noArg marks a block reason with no numeric argument.
const noArg int64 = -1 << 63

// sleepReason is the reserved block kind for Sleep; its argument is the
// duration and is rendered as "sleep(<duration>)" in deadlock reports.
const sleepReason = "sleep"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with other processes under kernel control. Exactly one proc (or event
// callback) executes at a time, so proc code needs no locking and the
// whole simulation is deterministic.
//
// All Proc methods must be called from the proc's own goroutine, except
// Unpark, which is called from another proc or an event callback.
type Proc struct {
	k    *Kernel
	ln   *lane // owning lane; the single lane on an unpartitioned kernel
	id   int   // spawn index, stable across runs; orders deadlock reports
	name string

	resume  chan struct{} // scheduler -> proc: run
	yielded chan struct{} // proc -> scheduler: parked or done

	started  bool
	done     bool
	daemon   bool
	permit   bool // an Unpark arrived while the proc was runnable
	poisoned bool // Shutdown requested; unwind on next resume

	// Block reasons are stored unformatted — a static kind string plus an
	// optional numeric argument — and rendered only when a deadlock report
	// is actually built, so blocking allocates nothing on the hot path.
	blockedOn  string
	blockedArg int64

	panicked any // panic value from the proc body, re-raised by run
}

// Spawn creates a process executing fn, starting at time at, on lane 0.
// The name is used in deadlock reports.
func (k *Kernel) Spawn(name string, at Time, fn func(p *Proc)) *Proc {
	return k.SpawnOn(0, name, at, fn)
}

// SpawnOn creates a process on the given lane. On an unpartitioned
// kernel every lane index maps to lane 0, so callers can pass their node
// id unconditionally. Spawning is only legal during setup (or from the
// owning lane itself on an unpartitioned kernel); the windowed scheduler
// never spawns mid-run.
func (k *Kernel) SpawnOn(laneIdx int, name string, at Time, fn func(p *Proc)) *Proc {
	if k.running {
		panic("sim: Spawn during a partitioned run")
	}
	p := &Proc{
		k:          k,
		ln:         k.laneFor(laneIdx),
		id:         len(k.procs),
		name:       name,
		resume:     make(chan struct{}),
		yielded:    make(chan struct{}),
		blockedArg: noArg,
	}
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(procKilled); !killed {
					// Preserve the original stack: the panic is re-raised
					// on the scheduler goroutine, which would lose it.
					p.panicked = fmt.Sprintf("proc %s panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.done = true
			p.yielded <- struct{}{}
		}()
		if !p.poisoned {
			fn(p)
		}
	}()
	k.atRun(at, p)
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time of the proc's lane.
func (p *Proc) Now() Time { return p.ln.now }

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.done }

// SetDaemon marks the proc as a service loop: it is expected to be
// blocked when the simulation ends and is excluded from deadlock reports.
func (p *Proc) SetDaemon() *Proc { p.daemon = true; return p }

// blockedDesc formats the block reason for a deadlock report.
func (p *Proc) blockedDesc() string {
	switch {
	case p.blockedArg == noArg:
		return p.blockedOn
	case p.blockedOn == sleepReason:
		return fmt.Sprintf("sleep(%v)", Time(p.blockedArg))
	default:
		return fmt.Sprintf("%s %d", p.blockedOn, p.blockedArg)
	}
}

// run transfers control to the proc until it yields. Called only from the
// scheduler context (an event callback).
func (p *Proc) run() {
	if p.done {
		return
	}
	p.started = true
	p.ln.current = p
	p.resume <- struct{}{}
	<-p.yielded
	p.ln.current = nil
	if p.panicked != nil {
		r := p.panicked
		p.panicked = nil
		panic(r)
	}
}

// yield returns control to the scheduler and blocks until resumed. The
// (reason, arg) pair is stored unformatted; see blockedDesc.
func (p *Proc) yield(reason string, arg int64) {
	p.blockedOn = reason
	p.blockedArg = arg
	p.yielded <- struct{}{}
	<-p.resume
	if p.poisoned {
		panic(procKilled{})
	}
	p.blockedOn = ""
	p.blockedArg = noArg
}

// Sleep advances the proc's virtual time by d. Other events run meanwhile.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	p.k.atRun(p.ln.now+d, p)
	p.yield(sleepReason, int64(d))
}

// Park blocks the proc until another proc or event calls Unpark. If an
// Unpark permit is already pending, Park consumes it and returns
// immediately. The reason string appears in deadlock reports.
func (p *Proc) Park(reason string) {
	if p.permit {
		p.permit = false
		return
	}
	p.yield(reason, noArg)
}

// ParkArg is Park with a numeric argument appended to the reason in
// deadlock reports ("barrier 3"). Unlike formatting at the call site, the
// argument is only rendered if a report is built, so hot blocking paths
// stay allocation-free.
func (p *Proc) ParkArg(reason string, arg int64) {
	if p.permit {
		p.permit = false
		return
	}
	p.yield(reason, arg)
}

// Unpark makes p runnable at the current simulated time of p's lane. If
// p is not parked, the permit is remembered and consumed by the next
// Park. Unpark must not be called from p itself, and on a partitioned
// kernel only from code executing on p's own lane (all cross-node
// wakeups in this codebase arrive as messages, which already hop lanes
// through Post).
func (p *Proc) Unpark() {
	if p.ln.current == p {
		panic("sim: proc unparked itself")
	}
	if p.permit {
		return // already has a pending permit
	}
	p.permit = true
	p.k.atUnpark(p.ln.now, p)
}

// Shutdown unwinds every live process so their goroutines exit. Call after
// Run returns (normally or with a deadlock) when the kernel is no longer
// needed; the kernel must not be used afterwards.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.done {
			continue
		}
		p.poisoned = true
		if !p.started {
			// The goroutine is still waiting for its first resume; wake it
			// so the poisoned check runs and the wrapper exits.
			p.started = true
		}
		p.resume <- struct{}{}
		<-p.yielded
	}
}
