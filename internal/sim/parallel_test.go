package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestWindowMergeOrder is the property test for the windowed scheduler's
// merge step: for random workloads of cross-lane posts, every lane
// executes its events in nondecreasing (time, creator rank, creation
// index) order — the deterministic merge order — no matter how the
// handoffs interleave across windows, and the execution is identical at
// 1 worker and many.
func TestWindowMergeOrder(t *testing.T) {
	const lanes = 5
	const lookahead = Time(40)
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			exec := func(workers int) []string {
				var order []string
				lastKey := make([]event, lanes)
				k := NewKernel()
				k.Partition(lanes, lookahead, workers)
				rng := rand.New(rand.NewSource(int64(trial) + 1))
				// Seed each lane with a chain of events that randomly post
				// forward in time to other lanes, always >= lookahead ahead.
				var chain func(self int, hops int) func()
				chain = func(self int, hops int) func() {
					return func() {
						l := k.lanes[self]
						ev := l.events // popped already; inspect executed head via now
						_ = ev
						order = append(order, fmt.Sprintf("l%d@%d", self, l.now))
						// Ordering property within the lane: the key of the
						// event being executed must not precede the previous
						// one. We reconstruct it from lane state: at = now.
						cur := event{at: l.now}
						if cur.at < lastKey[self].at {
							t.Errorf("lane %d time went backwards: %d after %d", self, cur.at, lastKey[self].at)
						}
						lastKey[self] = cur
						if hops == 0 {
							return
						}
						dst := rng.Intn(lanes)
						delay := lookahead + Time(rng.Intn(60))
						k.Post(self, dst, l.now+delay, chain(dst, hops-1))
					}
				}
				for i := 0; i < lanes; i++ {
					at := Time(rng.Intn(30))
					// Setup-style seeding: rank -1 creators with kernel-wide
					// creation indices, exactly what schedule stamps pre-Run.
					k.lanes[i].push(event{at: at, prank: -1, cidx: int64(i), kind: evFn,
						fn: chain(i, 12)})
				}
				if err := k.Run(); err != nil {
					t.Fatalf("run: %v", err)
				}
				return order
			}
			seqOrder := exec(1)
			parOrder := exec(4)
			if len(seqOrder) != len(parOrder) {
				t.Fatalf("executed %d events at 1 worker, %d at 4", len(seqOrder), len(parOrder))
			}
			// Workers only change host-thread placement: each lane's own
			// subsequence must be identical. (The interleaving across lanes
			// in the flat trace may differ; per-lane projections may not.)
			proj := func(order []string, lane int) []string {
				var p []string
				prefix := fmt.Sprintf("l%d@", lane)
				for _, s := range order {
					if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
						p = append(p, s)
					}
				}
				return p
			}
			for l := 0; l < lanes; l++ {
				a, b := proj(seqOrder, l), proj(parOrder, l)
				if len(a) != len(b) {
					t.Fatalf("lane %d: %d events at 1 worker, %d at 4", l, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("lane %d event %d: %q at 1 worker, %q at 4", l, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestMergeHeapOrderInsensitive checks the heap key totally orders
// events regardless of insertion order: pushing the same event set in
// random permutations always pops the same sequence. This is what makes
// the window-boundary outbox merge deterministic.
func TestMergeHeapOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var evs []event
	for i := 0; i < 200; i++ {
		evs = append(evs, event{
			at:    Time(rng.Intn(20)),
			prank: int64(rng.Intn(10)) - 1,
			cidx:  int64(i), // unique: no two events share a full key
		})
	}
	popAll := func(perm []int) []event {
		var l lane
		for _, i := range perm {
			l.push(evs[i])
		}
		out := make([]event, 0, len(evs))
		for len(l.events) > 0 {
			out = append(out, l.pop())
		}
		return out
	}
	key := func(e *event) [3]int64 {
		return [3]int64{int64(e.at), e.prank, e.cidx}
	}
	ref := popAll(rng.Perm(len(evs)))
	for trial := 0; trial < 10; trial++ {
		got := popAll(rng.Perm(len(evs)))
		for i := range ref {
			if key(&got[i]) != key(&ref[i]) {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got[i], ref[i])
			}
		}
	}
	// And the popped sequence is sorted by the full key.
	for i := 1; i < len(ref); i++ {
		if ref[i].before(&ref[i-1]) {
			t.Fatalf("pop %d out of order: %+v before %+v", i, ref[i], ref[i-1])
		}
	}
}

// TestLookaheadViolationPanics pins the safety check: a cross-lane post
// inside the current window is a bug and must fail loudly.
func TestLookaheadViolationPanics(t *testing.T) {
	k := NewKernel()
	k.Partition(2, 100, 1)
	k.Post(0, 0, 0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected lookahead-violation panic")
			}
			k.Stop()
		}()
		k.Post(0, 1, k.LaneNow(0)+1, func() {}) // < lookahead ahead: must panic
	})
	defer func() { recover() }() // the lane re-raises; swallow
	_ = k.Run()
}
