// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel owns a virtual clock and an event queue. Simulated processes
// (Proc) are goroutines that run one at a time under the kernel's control:
// a process runs until it blocks on a kernel primitive (Sleep, Park, or a
// Chan receive), at which point control returns to the scheduler. Events
// with equal timestamps fire in the order they were scheduled, so a given
// program produces a byte-identical execution every run.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
}

// Micros reports t in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	procs  []*Proc
	// current is the proc whose code is executing, nil when the kernel is
	// running a plain event or scheduling.
	current *Proc
	stopped bool
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a DES.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (k *Kernel) Stop() { k.stopped = true }

// DeadlockError reports that runnable work was exhausted while processes
// were still blocked.
type DeadlockError struct {
	Time    Time
	Blocked []string // one description per blocked proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked procs: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes events until the queue is empty or Stop is called. It
// returns a *DeadlockError if processes remain blocked when the event
// queue drains, and propagates any panic raised inside process code.
func (k *Kernel) Run() error {
	for len(k.events) > 0 && !k.stopped {
		ev := heap.Pop(&k.events).(*event)
		k.now = ev.at
		ev.fn()
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done && p.started && !p.daemon {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockedOn))
		}
	}
	if len(blocked) > 0 && !k.stopped {
		sort.Strings(blocked)
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}
