// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel owns a virtual clock and an event queue. Simulated processes
// (Proc) are goroutines that run one at a time under the kernel's control:
// a process runs until it blocks on a kernel primitive (Sleep, Park, or a
// Chan receive), at which point control returns to the scheduler. Events
// with equal timestamps fire in the order they were scheduled, so a given
// program produces a byte-identical execution every run.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
}

// Micros reports t in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Event kinds. The common cases — resuming a proc after a sleep, and the
// conditional resume behind Unpark — are encoded as a kind plus a *Proc
// instead of a closure, so the hot scheduling paths allocate nothing.
const (
	evFn     uint8 = iota // run fn
	evRun                 // resume proc
	evUnpark              // resume proc if its Unpark permit is still set
)

type event struct {
	at   Time
	seq  uint64
	kind uint8
	fn   func()
	proc *Proc
}

// before orders events by (time, schedule order).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now    Time
	events []event // binary min-heap, value-based (no per-event boxing)
	seq    uint64
	procs  []*Proc
	// current is the proc whose code is executing, nil when the kernel is
	// running a plain event or scheduling.
	current *Proc
	stopped bool
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// push inserts ev into the event heap (sift-up on value storage).
func (k *Kernel) push(ev event) {
	h := append(k.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.events = h
}

// pop removes and returns the earliest event.
func (k *Kernel) pop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/proc references
	h = h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h[r].before(&h[l]) {
			c = r
		}
		if !h[c].before(&h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	k.events = h
	return top
}

// schedule enqueues an event at absolute time t. Scheduling in the past
// panics: it is always a logic error in a DES.
func (k *Kernel) schedule(t Time, kind uint8, fn func(), p *Proc) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", t, k.now))
	}
	k.seq++
	k.push(event{at: t, seq: k.seq, kind: kind, fn: fn, proc: p})
}

// At schedules fn to run at absolute time t.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, evFn, fn, nil) }

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// atRun schedules proc resumption at t without allocating a closure.
func (k *Kernel) atRun(t Time, p *Proc) { k.schedule(t, evRun, nil, p) }

// atUnpark schedules the permit-guarded resume behind Unpark.
func (k *Kernel) atUnpark(t Time, p *Proc) { k.schedule(t, evUnpark, nil, p) }

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (k *Kernel) Stop() { k.stopped = true }

// DeadlockError reports that runnable work was exhausted while processes
// were still blocked.
type DeadlockError struct {
	Time    Time
	Blocked []string // one description per blocked proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked procs: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes events until the queue is empty or Stop is called. It
// returns a *DeadlockError if processes remain blocked when the event
// queue drains, and propagates any panic raised inside process code.
func (k *Kernel) Run() error {
	for len(k.events) > 0 && !k.stopped {
		ev := k.pop()
		k.now = ev.at
		switch ev.kind {
		case evFn:
			ev.fn()
		case evRun:
			ev.proc.run()
		case evUnpark:
			if ev.proc.permit {
				ev.proc.permit = false
				ev.proc.run()
			}
		}
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done && p.started && !p.daemon {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockedDesc()))
		}
	}
	if len(blocked) > 0 && !k.stopped {
		sort.Strings(blocked)
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}
