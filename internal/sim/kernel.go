// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel owns a virtual clock and an event queue. Simulated processes
// (Proc) are goroutines that run one at a time under the kernel's control:
// a process runs until it blocks on a kernel primitive (Sleep, Park, or a
// Chan receive), at which point control returns to the scheduler. Events
// with equal timestamps fire in the order they were scheduled, so a given
// program produces a byte-identical execution every run.
//
// A kernel can additionally be partitioned into lanes — per-node logical
// processes with independent clocks and event queues — and run under a
// conservative-window parallel scheduler (see Partition and parallel.go).
// Event ordering is genealogical: an event's key is (time, creator's
// execution rank, index among the creator's creations), which for
// same-time events is exactly "creation order" — the classic sequential
// rule. The windowed scheduler reconstructs creator ranks at window
// boundaries, so a partitioned run replays the sequential event order
// exactly and results are byte-identical at any worker count, including
// against the unpartitioned kernel.
package sim

import (
	"fmt"
	"strings"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
}

// Micros reports t in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Event kinds. The common cases — resuming a proc after a sleep, and the
// conditional resume behind Unpark — are encoded as a kind plus a *Proc
// instead of a closure, so the hot scheduling paths allocate nothing.
const (
	evFn     uint8 = iota // run fn
	evRun                 // resume proc
	evUnpark              // resume proc if its Unpark permit is still set
)

// pendRank encodes a not-yet-assigned creator rank during a window:
// pendRank+i refers to the i-th event the creating lane executed in the
// current window. Pending ranks order after every assigned rank (this
// window's events rank after all earlier ones) and, among themselves, by
// lane execution index — and they are only ever compared within their own
// lane, where that index IS the eventual rank order. The window boundary
// resolves them to real ranks (see parallel.go).
const pendRank = int64(1) << 62

type event struct {
	at    Time
	prank int64 // creator's global execution rank (or pendRank+idx)
	cidx  int64 // index among the creator's scheduled events
	kind  uint8
	fn    func()
	proc  *Proc
}

// before orders events genealogically: by time, then by the creator's
// execution rank, then by creation index within the creator. For events
// at the same time this is precisely the order they were created in a
// sequential execution — creators execute in rank order and each creates
// in cidx order — i.e. the classic (time, schedule order) rule, now in a
// form every lane can compute locally.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.prank != o.prank {
		return e.prank < o.prank
	}
	return e.cidx < o.cidx
}

// handoff is a cross-lane event in flight: created by one lane during a
// window, merged into dst's queue at the next window boundary.
type handoff struct {
	dst int32
	ev  event
}

// execRec is the key of an event a lane executed during the current
// window, logged so the boundary rank pass can replay the global order.
type execRec struct {
	at    Time
	prank int64
	cidx  int64
}

// lane is one logical process: an independently clocked event queue plus
// the procs bound to it. An unpartitioned kernel has exactly one lane
// owning everything.
type lane struct {
	id     int32
	now    Time
	events []event // binary min-heap, value-based (no per-event boxing)
	// current is the proc whose code is executing on this lane, nil when
	// the lane is running a plain event or scheduling.
	current *Proc
	// curPrank/curCidx are the scheduling context of the event currently
	// executing on this lane: children get key (at, curPrank, curCidx++).
	// -1 until the first event runs (setup-created events rank before all
	// runtime-created ones, as they always have).
	curPrank int64
	curCidx  int64
	// outbox collects cross-lane events scheduled while this lane
	// executes a window; the coordinator drains it at the barrier.
	outbox []handoff
	// panicked stores a panic raised by this lane's window execution so
	// the coordinator can re-raise it deterministically.
	panicked any
	// Window-boundary rank bookkeeping (windowed scheduler only).
	execLog  []execRec // keys of events executed this window, in lane order
	ranks    []int64   // global rank assigned to execLog[i] at the boundary
	mergeCur int       // cursor into execLog during the boundary merge
}

// push inserts ev into the lane's event heap (sift-up on value storage).
func (l *lane) push(ev event) {
	h := append(l.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	l.events = h
}

// pop removes and returns the earliest event.
func (l *lane) pop() event {
	h := l.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/proc references
	h = h[:n]
	// Sift down.
	i := 0
	for {
		lc, rc := 2*i+1, 2*i+2
		if lc >= n {
			break
		}
		c := lc
		if rc < n && h[rc].before(&h[lc]) {
			c = rc
		}
		if !h[c].before(&h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	l.events = h
	return top
}

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	lanes   []*lane
	procs   []*Proc
	stopped bool
	started bool  // Run has begun; schedule stamps creator context
	rank    int64 // next global execution rank
	setup   int64 // creation counter for events scheduled before Run

	// Parallel-run state (see Partition / parallel.go).
	lookahead Time
	workers   int
	running   bool // inside a windowed parallel run
	windowEnd Time // current window horizon, read-only while workers run
	runnable  []*lane
	merging   []*lane // boundary rank-merge scratch
}

// NewKernel returns an empty kernel at time zero with a single lane.
func NewKernel() *Kernel {
	return &Kernel{lanes: []*lane{{curPrank: -1}}}
}

// Partition splits the kernel into n independently clocked lanes
// (logical processes) executed by the given number of worker goroutines
// under a conservative window of the given lookahead: cross-lane events
// must always be scheduled at least lookahead past their creation time.
// It must be called on a fresh kernel, before anything is spawned or
// scheduled. The windowed scheduler replays the sequential event order
// exactly, so results are byte-identical at any worker count.
func (k *Kernel) Partition(n int, lookahead Time, workers int) {
	if len(k.procs) > 0 || len(k.lanes) != 1 || len(k.lanes[0].events) > 0 {
		panic("sim: Partition on a kernel that is already in use")
	}
	if n < 2 {
		panic("sim: Partition needs at least 2 lanes")
	}
	if lookahead <= 0 {
		panic("sim: Partition needs a positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	k.lanes = make([]*lane, n)
	for i := range k.lanes {
		k.lanes[i] = &lane{id: int32(i), curPrank: -1}
	}
	k.lookahead = lookahead
	k.workers = workers
}

// NumLanes reports the number of lanes (1 unless partitioned).
func (k *Kernel) NumLanes() int { return len(k.lanes) }

// laneFor maps a caller-supplied lane index to a lane. Unpartitioned
// kernels own everything on lane 0, so any index is accepted there.
func (k *Kernel) laneFor(i int) *lane {
	if len(k.lanes) == 1 {
		return k.lanes[0]
	}
	return k.lanes[i]
}

// Now returns the current simulated time of lane 0. On a partitioned
// kernel prefer LaneNow: lanes advance independently, and lane 0's clock
// is only meaningful to code running on lane 0.
func (k *Kernel) Now() Time { return k.lanes[0].now }

// LaneNow returns the current simulated time of the given lane (always
// lane 0 on an unpartitioned kernel). Callers must only consult clocks of
// the lane they are executing on.
func (k *Kernel) LaneNow(i int) Time { return k.laneFor(i).now }

// schedule enqueues an event created by lane src, owned (executed) by
// lane dst, at absolute time t. Scheduling in the creator's past panics:
// it is always a logic error in a DES. Cross-lane events created during
// a parallel run become handoffs and must respect the lookahead window.
func (k *Kernel) schedule(src, dst *lane, t Time, kind uint8, fn func(), p *Proc) {
	if t < src.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", t, src.now))
	}
	var ev event
	if !k.started {
		// Setup runs single-threaded before the clock moves: creation
		// order across the whole kernel, ranked before every runtime event.
		ev = event{at: t, prank: -1, cidx: k.setup, kind: kind, fn: fn, proc: p}
		k.setup++
	} else {
		ev = event{at: t, prank: src.curPrank, cidx: src.curCidx, kind: kind, fn: fn, proc: p}
		src.curCidx++
	}
	if src == dst || !k.running {
		dst.push(ev)
		return
	}
	if t < k.windowEnd {
		panic(fmt.Sprintf("sim: lookahead violation: cross-lane event at %v inside window ending %v (lane %d -> %d)",
			t, k.windowEnd, src.id, dst.id))
	}
	src.outbox = append(src.outbox, handoff{dst: dst.id, ev: ev})
}

// At schedules fn to run at absolute time t on lane 0. On a partitioned
// kernel this is only legal during setup; mid-run cross-lane work must go
// through Post so the creator lane is explicit.
func (k *Kernel) At(t Time, fn func()) {
	if k.running {
		panic("sim: At during a partitioned run; use Post")
	}
	l := k.lanes[0]
	k.schedule(l, l, t, evFn, fn, nil)
}

// After schedules fn to run d from lane 0's now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.lanes[0].now+d, fn) }

// Post schedules fn at absolute time t on lane dst, created by (and
// timed against) lane src. It is the cross-lane communication primitive:
// message deliveries are posted from the sending node's lane to the
// receiving node's lane. On an unpartitioned kernel src and dst collapse
// to lane 0 and Post is equivalent to At.
func (k *Kernel) Post(src, dst int, t Time, fn func()) {
	k.schedule(k.laneFor(src), k.laneFor(dst), t, evFn, fn, nil)
}

// atRun schedules proc resumption at t without allocating a closure.
func (k *Kernel) atRun(t Time, p *Proc) { k.schedule(p.ln, p.ln, t, evRun, nil, p) }

// atUnpark schedules the permit-guarded resume behind Unpark.
func (k *Kernel) atUnpark(t Time, p *Proc) { k.schedule(p.ln, p.ln, t, evUnpark, nil, p) }

// Stop makes Run return. Pending events are discarded; on a parallel run
// the current window completes first (deterministically) before the
// scheduler halts.
func (k *Kernel) Stop() { k.stopped = true }

// DeadlockError reports that runnable work was exhausted while processes
// were still blocked. Blocked holds one description per blocked proc,
// ordered by proc id (spawn order), so the report is stable no matter
// which lane's drain detected the stall.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked procs: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// dispatch executes one event on its owning lane.
func (k *Kernel) dispatch(ev *event) {
	switch ev.kind {
	case evFn:
		ev.fn()
	case evRun:
		ev.proc.run()
	case evUnpark:
		if ev.proc.permit {
			ev.proc.permit = false
			ev.proc.run()
		}
	}
}

// Run executes events until the queue is empty or Stop is called. It
// returns a *DeadlockError if processes remain blocked when the event
// queue drains, and propagates any panic raised inside process code. On
// a partitioned kernel Run executes the conservative-window parallel
// scheduler instead (see parallel.go); results are byte-identical.
func (k *Kernel) Run() error {
	k.started = true
	if len(k.lanes) > 1 {
		return k.runWindowed()
	}
	l := k.lanes[0]
	for len(l.events) > 0 && !k.stopped {
		ev := l.pop()
		l.now = ev.at
		l.curPrank = k.rank
		k.rank++
		l.curCidx = 0
		k.dispatch(&ev)
	}
	return k.drainCheck(l.now)
}

// drainCheck builds the deadlock report after the event supply is
// exhausted. Blocked procs are listed in proc-id order: k.procs is
// append-only in spawn order, which is the id order by construction.
func (k *Kernel) drainCheck(at Time) error {
	var blocked []string
	for _, p := range k.procs {
		if !p.done && p.started && !p.daemon {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockedDesc()))
		}
	}
	if len(blocked) > 0 && !k.stopped {
		return &DeadlockError{Time: at, Blocked: blocked}
	}
	return nil
}
