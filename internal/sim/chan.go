package sim

// Chan is an unbounded FIFO connecting simulated processes. Values are
// pushed from any simulation context (proc code or event callbacks) and
// received by procs, which block while the queue is empty. Multiple
// receivers are served in the order they blocked.
type Chan[T any] struct {
	name       string
	recvReason string // "recv <name>", prebuilt so Recv never allocates
	queue      []T
	waiters    []*Proc
}

// NewChan returns an empty FIFO. The name appears in deadlock reports.
func NewChan[T any](name string) *Chan[T] {
	return &Chan[T]{name: name, recvReason: "recv " + name}
}

// Len reports the number of queued values.
func (c *Chan[T]) Len() int { return len(c.queue) }

// Push appends v and wakes the oldest waiting receiver, if any.
func (c *Chan[T]) Push(v T) {
	c.queue = append(c.queue, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.Unpark()
	}
}

// Recv removes and returns the oldest value, blocking p while the queue is
// empty.
func (c *Chan[T]) Recv(p *Proc) T {
	for len(c.queue) == 0 {
		c.waiters = append(c.waiters, p)
		p.Park(c.recvReason)
	}
	v := c.queue[0]
	var zero T
	c.queue[0] = zero
	c.queue = c.queue[1:]
	return v
}

// TryRecv removes and returns the oldest value without blocking. ok is
// false if the queue is empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.queue) == 0 {
		return v, false
	}
	v = c.queue[0]
	var zero T
	c.queue[0] = zero
	c.queue = c.queue[1:]
	return v, true
}
