package sim

import "testing"

// The kernel's hot paths — sleeping, event scheduling, park/unpark — must
// not allocate per operation: event storage is value-based and block
// reasons are stored unformatted. These tests run thousands of operations
// inside one AllocsPerRun body and bound the total, so per-op allocation
// regressions (a closure, a Sprintf, event boxing) fail loudly while
// one-time setup (goroutine, channels, heap growth) stays within budget.

const allocIters = 10000

// allocBudget is the allowance for a whole kernel run: Spawn's fixed
// allocations plus event-heap growth, far below one alloc per iteration.
const allocBudget = 100.0

func TestSleepAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(1, func() {
		k := NewKernel()
		k.Spawn("sleeper", 0, func(p *Proc) {
			for i := 0; i < allocIters; i++ {
				p.Sleep(1)
			}
		})
		if err := k.Run(); err != nil {
			t.Error(err)
		}
	})
	if allocs > allocBudget {
		t.Errorf("%d Sleeps cost %.0f allocs, want < %.0f total (0 per op)",
			allocIters, allocs, allocBudget)
	}
}

func TestEventSchedulingAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(1, func() {
		k := NewKernel()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < allocIters {
				k.After(1, tick)
			}
		}
		k.After(1, tick)
		if err := k.Run(); err != nil {
			t.Error(err)
		}
	})
	if allocs > allocBudget {
		t.Errorf("%d events cost %.0f allocs, want < %.0f total (0 per op)",
			allocIters, allocs, allocBudget)
	}
}

func TestParkUnparkAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(1, func() {
		k := NewKernel()
		var pa, pb *Proc
		pa = k.Spawn("a", 0, func(p *Proc) {
			for i := 0; i < allocIters; i++ {
				pb.Unpark()
				p.ParkArg("ping", int64(i))
			}
		})
		pb = k.Spawn("b", 0, func(p *Proc) {
			for i := 0; i < allocIters; i++ {
				p.Park("pong")
				pa.Unpark()
			}
		})
		if err := k.Run(); err != nil {
			t.Error(err)
		}
	})
	if allocs > allocBudget {
		t.Errorf("%d park/unpark handshakes cost %.0f allocs, want < %.0f total (0 per op)",
			allocIters, allocs, allocBudget)
	}
}
