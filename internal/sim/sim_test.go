package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events out of insertion order at %d: %v", i, got[i])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("a", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			times = append(times, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var trace []string
	mk := func(name string, period Time) {
		k.Spawn(name, 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				trace = append(trace, fmt.Sprintf("%s@%d", name, p.Now()))
			}
		})
	}
	mk("a", 10)
	mk("b", 15)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// At t=30 both procs are runnable; b's wake event was scheduled first
	// (at t=15 vs t=20), so equal-time FIFO runs b first.
	want := []string{"a@10", "b@15", "a@20", "b@30", "a@30", "b@45"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	k := NewKernel()
	var a *Proc
	var wokeAt Time
	a = k.Spawn("a", 0, func(p *Proc) {
		p.Park("waiting for b")
		wokeAt = p.Now()
	})
	k.Spawn("b", 0, func(p *Proc) {
		p.Sleep(42)
		a.Unpark()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 42 {
		t.Fatalf("woke at %v, want 42", wokeAt)
	}
}

func TestUnparkBeforePark(t *testing.T) {
	k := NewKernel()
	var ran bool
	p := k.Spawn("a", 10, func(p *Proc) {
		p.Park("pre-permitted")
		ran = true
	})
	k.At(0, func() { p.Unpark() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("proc with pending permit did not run past Park")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", 0, func(p *Proc) {
		p.Park("forever")
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 proc", de.Blocked)
	}
	k.Shutdown()
}

func TestShutdownUnwindsProcs(t *testing.T) {
	k := NewKernel()
	cleaned := 0
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
			defer func() { cleaned++ }()
			p.Park("never")
		})
	}
	// One proc that never even starts before the kernel stops.
	k.Spawn("late", 1<<40, func(p *Proc) { t.Error("late proc body ran") })
	k.At(100, k.Stop)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if cleaned != 5 {
		t.Fatalf("deferred cleanups ran = %d, want 5", cleaned)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", 0, func(p *Proc) {
		p.Sleep(5)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "kaboom") || !strings.Contains(s, "proc boom") {
			t.Fatalf("recover = %v, want wrapped kaboom panic", r)
		}
	}()
	_ = k.Run()
	t.Fatal("Run returned instead of panicking")
}

func TestChanFIFO(t *testing.T) {
	k := NewKernel()
	c := NewChan[int]("c")
	var got []int
	k.Spawn("recv", 0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, c.Recv(p))
		}
	})
	k.Spawn("send", 0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(7)
			c.Push(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got = %v, want in-order 0..4", got)
		}
	}
}

func TestChanMultipleReceivers(t *testing.T) {
	k := NewKernel()
	c := NewChan[int]("c")
	recv := make(map[string][]int)
	for _, name := range []string{"r1", "r2"} {
		name := name
		k.Spawn(name, 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				recv[name] = append(recv[name], c.Recv(p))
			}
		})
	}
	k.Spawn("send", 0, func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.Sleep(1)
			c.Push(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var all []int
	all = append(all, recv["r1"]...)
	all = append(all, recv["r2"]...)
	sort.Ints(all)
	for i := range all {
		if all[i] != i {
			t.Fatalf("values lost or duplicated: %v", all)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	c := NewChan[string]("c")
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan succeeded")
	}
	c.Push("x")
	v, ok := c.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q, %v", v, ok)
	}
}

// Property: for any set of event delays, the kernel fires them in
// nondecreasing time order and ends at the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			k.At(d, func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if k.Now() != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved sleeping procs always observe their own cumulative
// sleep as local time, regardless of how many other procs run.
func TestSleepAccumulationProperty(t *testing.T) {
	f := func(seed int64, nprocs uint8) bool {
		n := int(nprocs%8) + 1
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		ok := true
		for i := 0; i < n; i++ {
			steps := rng.Intn(10) + 1
			durs := make([]Time, steps)
			var total Time
			for j := range durs {
				durs[j] = Time(rng.Intn(1000))
				total += durs[j]
			}
			k.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
				for _, d := range durs {
					p.Sleep(d)
				}
				if p.Now() != total {
					ok = false
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []string {
		k := NewKernel()
		var trace []string
		c := NewChan[int]("c")
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("w%d", i), 0, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Time(3 + i))
					c.Push(i*10 + j)
				}
			})
		}
		k.Spawn("r", 0, func(p *Proc) {
			for j := 0; j < 20; j++ {
				v := c.Recv(p)
				trace = append(trace, fmt.Sprintf("%d@%d", v, p.Now()))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// The deadlock report must name both the blocked proc and what it waits
// on: the fault watchdog composes its lost-message diagnosis with this
// text, so "who is stuck, on which channel" has to survive verbatim.
func TestDeadlockReportNamesProcAndChannel(t *testing.T) {
	k := NewKernel()
	c := NewChan[int]("reply")
	k.Spawn("app0", 0, func(p *Proc) {
		c.Recv(p) // nobody ever pushes: an undelivered reply
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 proc", de.Blocked)
	}
	msg := de.Error()
	if !strings.Contains(msg, "app0") || !strings.Contains(msg, "recv reply") {
		t.Fatalf("report does not name the blocked proc and channel: %v", msg)
	}
	k.Shutdown()
}
