package sim

import (
	"math"
	"sync"
	"sync/atomic"
)

// Conservative-window parallel execution.
//
// A partitioned kernel advances all lanes in lockstep windows. Each
// round the coordinator:
//
//  1. merges every lane's outbox (cross-lane events from the previous
//     window) into the destination heaps — single-threaded, and order
//     independent because the genealogical heap key (time, creator
//     rank, creation index) totally orders events regardless of
//     insertion order;
//  2. computes Tmin, the earliest pending event across all lanes, and
//     the horizon H = Tmin + lookahead;
//  3. hands the runnable lanes (head event < H) to worker goroutines,
//     each of which pops and executes its lane's events with at < H;
//  4. at the barrier, replays the window's per-lane execution logs in
//     global key order to assign each executed event its sequential
//     execution rank, then resolves the pending creator ranks carried
//     by events those executions created (see assignRanks).
//
// Safety: any event a lane executes satisfies at < H = Tmin + lookahead,
// and every cross-lane event it creates is timestamped >= its own clock
// + lookahead (schedule enforces this), i.e. lands at or after H — never
// inside the window another lane is concurrently executing. So no lane
// can receive an event in its past.
//
// Exactness: within a window, lanes only interact through events that
// land in later windows, so executing each lane's runnable events
// independently performs the same work, in the same per-lane order, as
// the sequential kernel would. The genealogical key makes the global
// order reconstructible: a cross-lane arrival's creator always executed
// in an earlier window (rank already assigned), and a same-lane,
// same-window creator precedes its child in the lane's own log. The
// boundary merge therefore replays the exact sequential pop order and
// assigns identical ranks — making every run byte-identical at any
// worker count, including against the unpartitioned kernel.

// runWindowed is Run for a partitioned kernel.
func (k *Kernel) runWindowed() error {
	k.running = true
	defer func() { k.running = false }()

	maxNow := Time(0)
	for !k.stopped {
		// Merge last window's cross-lane handoffs.
		for _, l := range k.lanes {
			for i := range l.outbox {
				h := &l.outbox[i]
				k.lanes[h.dst].push(h.ev)
				h.ev = event{} // release references
			}
			l.outbox = l.outbox[:0]
		}

		// Window bounds: earliest pending event across all lanes.
		tmin := Time(math.MaxInt64)
		for _, l := range k.lanes {
			if len(l.events) > 0 && l.events[0].at < tmin {
				tmin = l.events[0].at
			}
		}
		if tmin == Time(math.MaxInt64) {
			break // fully drained
		}
		horizon := tmin + k.lookahead
		k.windowEnd = horizon

		runnable := k.runnable[:0]
		for _, l := range k.lanes {
			if len(l.events) > 0 && l.events[0].at < horizon {
				runnable = append(runnable, l)
			}
		}
		k.runnable = runnable

		k.executeWindow(runnable, horizon)

		// Re-raise the earliest-lane panic deterministically. (With one
		// worker only one lane can have panicked; with several, picking
		// the lowest lane id keeps the surfaced error stable.)
		for _, l := range k.lanes {
			if l.panicked != nil {
				panic(l.panicked)
			}
		}

		k.assignRanks(runnable)

		if horizon > maxNow {
			maxNow = horizon
		}
	}

	// Lanes stop at their last executed event; report the drain at the
	// latest lane clock so the time matches what a sequential run prints.
	at := Time(0)
	for _, l := range k.lanes {
		if l.now > at {
			at = l.now
		}
	}
	return k.drainCheck(at)
}

// assignRanks runs at the window boundary: it gives every event executed
// in the just-finished window the global execution rank it would have
// held in a sequential run, then rewrites the pending creator ranks
// (pendRank+idx) those executions stamped on their children.
//
// Each lane's execLog lists its executed events' keys in execution — and
// hence key — order, so a k-way merge of the logs by key yields the
// global sequential order. A log entry's own prank may itself be pending
// (created earlier in the same window by the same lane); its creator
// appears earlier in the same log, so by the time the entry reaches the
// merge front its rank is already in l.ranks and the key resolves.
//
// Resolution preserves the heap invariant of the remaining per-lane
// queues: pending values order after all previously assigned ranks and
// among themselves by execution index, and the ranks substituted for
// them — all larger than any earlier rank, increasing with that same
// index — compare identically against every key in the heap.
func (k *Kernel) assignRanks(ran []*lane) {
	merge := k.merging[:0]
	for _, l := range ran {
		if len(l.execLog) > 0 {
			l.mergeCur = 0
			l.ranks = l.ranks[:0]
			merge = append(merge, l)
		}
	}
	k.merging = merge

	// head resolves the key at a lane's merge cursor.
	head := func(l *lane) execRec {
		r := l.execLog[l.mergeCur]
		if r.prank >= pendRank {
			r.prank = l.ranks[r.prank-pendRank]
		}
		return r
	}
	less := func(a, b execRec) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		if a.prank != b.prank {
			return a.prank < b.prank
		}
		return a.cidx < b.cidx
	}

	// Min-heap of lanes keyed by their cursor's resolved key.
	down := func(h []*lane, i int) {
		n := len(h)
		for {
			lc, rc := 2*i+1, 2*i+2
			if lc >= n {
				return
			}
			c := lc
			if rc < n && less(head(h[rc]), head(h[lc])) {
				c = rc
			}
			if !less(head(h[c]), head(h[i])) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := len(merge)/2 - 1; i >= 0; i-- {
		down(merge, i)
	}
	for len(merge) > 0 {
		l := merge[0]
		l.ranks = append(l.ranks, k.rank)
		k.rank++
		l.mergeCur++
		if l.mergeCur == len(l.execLog) {
			n := len(merge) - 1
			merge[0] = merge[n]
			merge[n] = nil
			merge = merge[:n]
		}
		down(merge, 0)
	}

	// Rewrite the pending creator ranks stamped on this window's
	// creations: cross-lane handoffs still in the outbox, and same-lane
	// events sitting in the owner's queue. Both were created by the lane
	// they sit on/depart from, so l.ranks is always the right table.
	for _, l := range ran {
		for i := range l.outbox {
			if pr := l.outbox[i].ev.prank; pr >= pendRank {
				l.outbox[i].ev.prank = l.ranks[pr-pendRank]
			}
		}
		for i := range l.events {
			if pr := l.events[i].prank; pr >= pendRank {
				l.events[i].prank = l.ranks[pr-pendRank]
			}
		}
		l.execLog = l.execLog[:0]
	}
}

// executeWindow runs every runnable lane up to the horizon, fanning out
// across worker goroutines when there is enough work to justify them.
// The WaitGroup barrier gives the coordinator (and hence the next
// window's lanes) a happens-before edge over everything each lane wrote.
func (k *Kernel) executeWindow(runnable []*lane, horizon Time) {
	nw := k.workers
	if nw > len(runnable) {
		nw = len(runnable)
	}
	if nw <= 1 {
		for _, l := range runnable {
			k.runLane(l, horizon)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runnable) {
					return
				}
				k.runLane(runnable[i], horizon)
			}
		}()
	}
	wg.Wait()
}

// runLane pops and executes one lane's events strictly before horizon.
// Each execution is logged for the boundary rank pass, and events it
// creates carry the pending rank pendRank+index until then. Panics from
// process code are captured per lane so the coordinator can re-raise
// them in deterministic lane order.
func (k *Kernel) runLane(l *lane, horizon Time) {
	defer func() {
		if r := recover(); r != nil {
			l.panicked = r
		}
	}()
	for len(l.events) > 0 && l.events[0].at < horizon {
		ev := l.pop()
		l.now = ev.at
		l.curPrank = pendRank + int64(len(l.execLog))
		l.curCidx = 0
		l.execLog = append(l.execLog, execRec{at: ev.at, prank: ev.prank, cidx: ev.cidx})
		k.dispatch(&ev)
	}
}
