package vc

import (
	"fmt"
	"sort"
)

// ForceDense, when set before simulation starts, makes every Sparse use a
// dense backing array internally. Semantics and wire sizes are identical in
// both modes (WireSize is computed from the logical contents, not the
// representation), so a full simulation run must produce byte-identical
// results with the flag on or off. Tests flip it to validate the sparse
// algebra against the dense one end to end; it is not safe to change
// mid-run.
var ForceDense = false

// Sparse is a vector timestamp over n processors that stores only its
// non-zero components, as parallel (proc, value) slices sorted by proc.
// Per-page vectors in the coherence protocols are touched by O(active
// writers) processors, not O(n), so at large machine sizes this makes
// write-notice records and piggybacked timestamps cost O(writers).
//
// The zero value is not usable; construct with NewSparse or SparseFrom.
// Read methods (Get, Covers, NNZ, WireSize, Dense) tolerate a nil
// receiver, which behaves as an all-zero vector of unknown dimension.
type Sparse struct {
	n     int     // dimension (number of processors)
	procs []int32 // sorted processor ids with non-zero components
	vals  []int32 // vals[i] pairs with procs[i]
	dense VC      // non-nil when ForceDense was set at creation
}

// NewSparse returns an all-zero sparse vector for n processors.
func NewSparse(n int) *Sparse {
	s := &Sparse{n: n}
	if ForceDense {
		s.dense = New(n)
	}
	return s
}

// SparseFrom returns a sparse copy of a dense vector.
func SparseFrom(v VC) *Sparse {
	s := NewSparse(len(v))
	if s.dense != nil {
		copy(s.dense, v)
		return s
	}
	for i, x := range v {
		if x != 0 {
			s.procs = append(s.procs, int32(i))
			s.vals = append(s.vals, x)
		}
	}
	return s
}

// Dim returns the dimension the vector was created with (0 for nil).
func (s *Sparse) Dim() int {
	if s == nil {
		return 0
	}
	return s.n
}

// find returns the index of proc p in s.procs, or -1.
func (s *Sparse) find(p int32) int {
	i := sort.Search(len(s.procs), func(i int) bool { return s.procs[i] >= p })
	if i < len(s.procs) && s.procs[i] == p {
		return i
	}
	return -1
}

// Get returns component p (0 when absent or s is nil).
func (s *Sparse) Get(p int) int32 {
	if s == nil {
		return 0
	}
	if s.dense != nil {
		return s.dense[p]
	}
	if i := s.find(int32(p)); i >= 0 {
		return s.vals[i]
	}
	return 0
}

// Set assigns component p. Setting zero removes the entry.
func (s *Sparse) Set(p int, x int32) {
	if s.dense != nil {
		s.dense[p] = x
		return
	}
	pp := int32(p)
	i := sort.Search(len(s.procs), func(i int) bool { return s.procs[i] >= pp })
	if i < len(s.procs) && s.procs[i] == pp {
		if x == 0 {
			s.procs = append(s.procs[:i], s.procs[i+1:]...)
			s.vals = append(s.vals[:i], s.vals[i+1:]...)
			return
		}
		s.vals[i] = x
		return
	}
	if x == 0 {
		return
	}
	s.procs = append(s.procs, 0)
	copy(s.procs[i+1:], s.procs[i:])
	s.procs[i] = pp
	s.vals = append(s.vals, 0)
	copy(s.vals[i+1:], s.vals[i:])
	s.vals[i] = x
}

// RaiseTo raises component p to at least x.
func (s *Sparse) RaiseTo(p int, x int32) {
	if s.Get(p) < x {
		s.Set(p, x)
	}
}

// MaxWith raises each component of s to at least the corresponding
// component of o (which may be nil).
func (s *Sparse) MaxWith(o *Sparse) {
	if o == nil {
		return
	}
	if o.dense != nil {
		for p, x := range o.dense {
			if x != 0 {
				s.RaiseTo(p, x)
			}
		}
		return
	}
	for i, p := range o.procs {
		s.RaiseTo(int(p), o.vals[i])
	}
}

// Covers reports whether s[i] >= o[i] for all i. Both sides may be nil.
func (s *Sparse) Covers(o *Sparse) bool {
	if o == nil {
		return true
	}
	if o.dense != nil {
		for p, x := range o.dense {
			if x != 0 && s.Get(p) < x {
				return false
			}
		}
		return true
	}
	for i, p := range o.procs {
		if s.Get(int(p)) < o.vals[i] {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (s *Sparse) Equal(o *Sparse) bool {
	return s.Covers(o) && o.Covers(s)
}

// Copy returns an independent copy (nil copies to nil).
func (s *Sparse) Copy() *Sparse {
	if s == nil {
		return nil
	}
	c := &Sparse{n: s.n}
	if s.dense != nil {
		c.dense = s.dense.Copy()
		return c
	}
	if len(s.procs) > 0 {
		c.procs = append([]int32(nil), s.procs...)
		c.vals = append([]int32(nil), s.vals...)
	}
	return c
}

// NNZ returns the number of non-zero components.
func (s *Sparse) NNZ() int {
	if s == nil {
		return 0
	}
	if s.dense != nil {
		nnz := 0
		for _, x := range s.dense {
			if x != 0 {
				nnz++
			}
		}
		return nnz
	}
	return len(s.procs)
}

// Dense materializes the vector as a dense VC of dimension n.
func (s *Sparse) Dense(n int) VC {
	v := New(n)
	if s == nil {
		return v
	}
	if s.dense != nil {
		copy(v, s.dense)
		return v
	}
	for i, p := range s.procs {
		v[p] = s.vals[i]
	}
	return v
}

// Each calls f for every non-zero component in increasing proc order.
func (s *Sparse) Each(f func(p int, x int32)) {
	if s == nil {
		return
	}
	if s.dense != nil {
		for p, x := range s.dense {
			if x != 0 {
				f(p, x)
			}
		}
		return
	}
	for i, p := range s.procs {
		f(int(p), s.vals[i])
	}
}

// WireSize is the encoded size of the vector in bytes: the cheaper of the
// dense encoding (4 bytes per component) and a sparse (proc, value) pair
// list with a 4-byte count. The formula depends only on the logical
// contents, never the host representation, so simulated time is identical
// under ForceDense.
func (s *Sparse) WireSize() int {
	if s == nil {
		return 4
	}
	return SparseWireSize(s.n, s.NNZ())
}

// SparseWireSize is the wire-size model shared by every vector-timestamp
// encoding: min(dense, pair-list) for dimension n with nnz non-zero
// components.
func SparseWireSize(n, nnz int) int {
	dense := 4 * n
	pairs := 4 + 8*nnz
	if pairs < dense {
		return pairs
	}
	return dense
}

func (s *Sparse) String() string {
	if s == nil {
		return "{}"
	}
	out := "{"
	first := true
	s.Each(func(p int, x int32) {
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%d:%d", p, x)
	})
	return out + "}"
}
