package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTraceOp applies one random mutation to the paired dense/sparse
// vectors, mirroring how the protocols drive per-page vectors: point
// raises (write notices), point sets (own-interval advances), and merges
// with another vector (fetch responses).
func randTraceOp(rng *rand.Rand, n int, d VC, s *Sparse, od VC, os *Sparse) {
	switch rng.Intn(4) {
	case 0: // RaiseTo
		p, x := rng.Intn(n), int32(rng.Intn(8))
		if d[p] < x {
			d[p] = x
		}
		s.RaiseTo(p, x)
	case 1: // Set (including to zero: entry removal)
		p, x := rng.Intn(n), int32(rng.Intn(8))
		d[p] = x
		s.Set(p, x)
	case 2: // MaxWith the other vector
		d.MaxWith(od)
		s.MaxWith(os)
	case 3: // Set on the other vector
		p, x := rng.Intn(n), int32(rng.Intn(8))
		od[p] = x
		os.Set(p, x)
	}
}

// TestSparseMatchesDenseTrace drives a dense VC and a Sparse through the
// same random interval traces and checks every observable agrees at each
// step: components, covers in both directions, equality, NNZ-derived wire
// size, and the materialized dense image.
func TestSparseMatchesDenseTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		da, db := New(n), New(n)
		sa, sb := NewSparse(n), NewSparse(n)
		for step := 0; step < 60; step++ {
			randTraceOp(rng, n, da, sa, db, sb)
			if !sa.Dense(n).Equal(da) || !sb.Dense(n).Equal(db) {
				return false
			}
			if sa.Covers(sb) != da.Covers(db) || sb.Covers(sa) != db.Covers(da) {
				return false
			}
			if sa.Equal(sb) != da.Equal(db) {
				return false
			}
			nnz := 0
			for _, x := range da {
				if x != 0 {
					nnz++
				}
			}
			if sa.NNZ() != nnz || sa.WireSize() != SparseWireSize(n, nnz) {
				return false
			}
			for p := 0; p < n; p++ {
				if sa.Get(p) != da[p] {
					return false
				}
			}
		}
		// Copy independence.
		c := sa.Copy()
		sa.Set(0, 99)
		return c.Get(0) != 99 || da[0] == 99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestForceDenseEquivalence runs the same trace with ForceDense on and
// off; every observable, including wire sizes, must be identical.
func TestForceDenseEquivalence(t *testing.T) {
	defer func(old bool) { ForceDense = old }(ForceDense)
	run := func(force bool, seed int64) []int {
		ForceDense = force
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		a, b := NewSparse(n), NewSparse(n)
		dummyD, dummyD2 := New(n), New(n)
		var obs []int
		for step := 0; step < 60; step++ {
			// Reuse randTraceOp's op sequence by mutating paired dense
			// vectors too (they are ignored here but keep rng in sync).
			randTraceOp(rng, n, dummyD, a, dummyD2, b)
			obs = append(obs, a.WireSize(), b.WireSize(), a.NNZ(), b.NNZ())
			if a.Covers(b) {
				obs = append(obs, 1)
			} else {
				obs = append(obs, 0)
			}
			for p := 0; p < n; p++ {
				obs = append(obs, int(a.Get(p)), int(b.Get(p)))
			}
		}
		return obs
	}
	for seed := int64(0); seed < 25; seed++ {
		sparse := run(false, seed)
		dense := run(true, seed)
		if len(sparse) != len(dense) {
			t.Fatalf("seed %d: observation length differs", seed)
		}
		for i := range sparse {
			if sparse[i] != dense[i] {
				t.Fatalf("seed %d: observation %d differs: sparse=%d dense=%d", seed, i, sparse[i], dense[i])
			}
		}
	}
}

func TestSparseWireSizeCrossover(t *testing.T) {
	// Empty vector: 4 bytes either way is the count header.
	if got := NewSparse(1024).WireSize(); got != 4 {
		t.Fatalf("empty wire size = %d, want 4", got)
	}
	// One writer in a 1024-node machine: 12 bytes, not 4096.
	s := NewSparse(1024)
	s.Set(7, 3)
	if got := s.WireSize(); got != 12 {
		t.Fatalf("1-writer wire size = %d, want 12", got)
	}
	// Fully dense: capped at the dense encoding.
	d := NewSparse(8)
	for p := 0; p < 8; p++ {
		d.Set(p, int32(p+1))
	}
	if got := d.WireSize(); got != 32 {
		t.Fatalf("dense-8 wire size = %d, want 32", got)
	}
	// nil behaves as an empty vector.
	var nilVec *Sparse
	if nilVec.WireSize() != 4 || nilVec.Get(3) != 0 || !nilVec.Covers(nil) {
		t.Fatal("nil Sparse read methods wrong")
	}
}

func TestSparseFromRoundTrip(t *testing.T) {
	v := VC{0, 3, 0, 0, 9, 0, 1, 0}
	s := SparseFrom(v)
	if !s.Dense(len(v)).Equal(v) {
		t.Fatalf("round trip = %v, want %v", s.Dense(len(v)), v)
	}
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
}
