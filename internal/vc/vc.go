// Package vc implements the vector timestamps and happens-before machinery
// of lazy release consistency: per-processor interval counters, vector
// clock algebra, and topological ordering of causally related intervals
// (the order in which diffs must be applied).
package vc

import "fmt"

// VC is a vector timestamp: VC[i] is the index of the most recent interval
// of processor i whose updates are known.
type VC []int32

// New returns a zero vector clock for n processors.
func New(n int) VC { return make(VC, n) }

// Copy returns an independent copy.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// MaxWith raises each component of v to at least the corresponding
// component of o.
func (v VC) MaxWith(o VC) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Covers reports whether v[i] >= o[i] for all i: every interval known to o
// is known to v.
func (v VC) Covers(o VC) bool {
	for i, x := range o {
		if v[i] < x {
			return false
		}
	}
	return true
}

// Before reports whether v happens strictly before o: o covers v and they
// differ.
func (v VC) Before(o VC) bool {
	return o.Covers(v) && !v.Covers(o)
}

// Concurrent reports whether neither vector covers the other.
func (v VC) Concurrent(o VC) bool {
	return !v.Covers(o) && !o.Covers(v)
}

// Equal reports component-wise equality.
func (v VC) Equal(o VC) bool {
	for i, x := range o {
		if v[i] != x {
			return false
		}
	}
	return true
}

func (v VC) String() string { return fmt.Sprint([]int32(v)) }

// WireSize is the encoded size of the vector in bytes.
func (v VC) WireSize() int { return 4 * len(v) }

// Stamp identifies one interval of one processor together with the vector
// timestamp at the interval's end.
type Stamp struct {
	Proc     int
	Interval int32
	VC       *Sparse
}

// HappensBefore reports whether interval a causally precedes interval b.
// Same-processor intervals are ordered by index; cross-processor intervals
// by vector timestamp. (Interval t of proc p "is included in" a VC w when
// w[p] >= t, so a precedes b exactly when b's end-of-interval vector
// already covers a.)
func HappensBefore(a, b Stamp) bool {
	if a.Proc == b.Proc {
		return a.Interval < b.Interval
	}
	return b.VC.Get(a.Proc) >= a.Interval
}

// TopoSort orders stamps so that causally earlier intervals come first
// (the order diffs must be applied in). Concurrent intervals are ordered
// deterministically by (proc, interval); in a data-race-free program their
// diffs touch disjoint words, so the tie-break cannot change the merged
// result. Kahn-style minimal extraction; the per-fault sets are small.
func TopoSort(stamps []Stamp) {
	n := len(stamps)
	remaining := append([]Stamp(nil), stamps...)
	out := stamps[:0]
	for len(remaining) > 0 {
		best := -1
		for i, s := range remaining {
			minimal := true
			for j, t := range remaining {
				if j != i && HappensBefore(t, s) {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			if best == -1 || s.Proc < remaining[best].Proc ||
				(s.Proc == remaining[best].Proc && s.Interval < remaining[best].Interval) {
				best = i
			}
		}
		if best == -1 {
			panic(fmt.Sprintf("vc: happens-before cycle among %d intervals", n))
		}
		out = append(out, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
}
