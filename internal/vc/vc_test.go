package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoversAndBefore(t *testing.T) {
	a := VC{1, 2, 3}
	b := VC{1, 2, 3}
	c := VC{2, 2, 3}
	d := VC{0, 5, 0}
	if !a.Covers(b) || !b.Covers(a) || !a.Equal(b) {
		t.Fatal("equal vectors must cover each other")
	}
	if !c.Covers(a) || a.Covers(c) {
		t.Fatal("c strictly above a")
	}
	if !a.Before(c) || c.Before(a) {
		t.Fatal("Before wrong")
	}
	if !a.Concurrent(d) || !d.Concurrent(a) {
		t.Fatal("a and d are concurrent")
	}
}

func TestMaxWith(t *testing.T) {
	a := VC{1, 5, 0}
	a.MaxWith(VC{3, 2, 2})
	want := VC{3, 5, 2}
	if !a.Equal(want) {
		t.Fatalf("MaxWith = %v, want %v", a, want)
	}
}

func TestHappensBeforeSameProc(t *testing.T) {
	a := Stamp{Proc: 1, Interval: 2, VC: SparseFrom(VC{0, 2, 0})}
	b := Stamp{Proc: 1, Interval: 5, VC: SparseFrom(VC{0, 5, 0})}
	if !HappensBefore(a, b) || HappensBefore(b, a) {
		t.Fatal("same-proc interval order wrong")
	}
}

func TestHappensBeforeCrossProc(t *testing.T) {
	// Proc 0 interval 3 ended with VC {3,0}; proc 1 later acquired from
	// proc 0 so its interval 2 ended with VC {3,2}.
	a := Stamp{Proc: 0, Interval: 3, VC: SparseFrom(VC{3, 0})}
	b := Stamp{Proc: 1, Interval: 2, VC: SparseFrom(VC{3, 2})}
	if !HappensBefore(a, b) {
		t.Fatal("a should precede b")
	}
	if HappensBefore(b, a) {
		t.Fatal("b must not precede a")
	}
	// Concurrent intervals.
	c := Stamp{Proc: 0, Interval: 4, VC: SparseFrom(VC{4, 0})}
	d := Stamp{Proc: 1, Interval: 1, VC: SparseFrom(VC{0, 1})}
	if HappensBefore(c, d) || HappensBefore(d, c) {
		t.Fatal("c and d are concurrent")
	}
}

func TestTopoSortChain(t *testing.T) {
	// A causal chain 0:1 -> 1:1 -> 0:2 presented in reverse.
	s := []Stamp{
		{Proc: 0, Interval: 2, VC: SparseFrom(VC{2, 1})},
		{Proc: 1, Interval: 1, VC: SparseFrom(VC{1, 1})},
		{Proc: 0, Interval: 1, VC: SparseFrom(VC{1, 0})},
	}
	TopoSort(s)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if HappensBefore(s[j], s[i]) {
				t.Fatalf("order violates happens-before: %v before %v", s[i], s[j])
			}
		}
	}
	if s[0].Proc != 0 || s[0].Interval != 1 {
		t.Fatalf("chain head wrong: %v", s)
	}
	if s[2].Proc != 0 || s[2].Interval != 2 {
		t.Fatalf("chain tail wrong: %v", s)
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	mk := func() []Stamp {
		return []Stamp{
			{Proc: 2, Interval: 1, VC: SparseFrom(VC{0, 0, 1})},
			{Proc: 0, Interval: 1, VC: SparseFrom(VC{1, 0, 0})},
			{Proc: 1, Interval: 1, VC: SparseFrom(VC{0, 1, 0})},
		}
	}
	a, b := mk(), mk()
	TopoSort(a)
	TopoSort(b)
	for i := range a {
		if a[i].Proc != b[i].Proc {
			t.Fatal("tie-break not deterministic")
		}
	}
	if a[0].Proc != 0 || a[1].Proc != 1 || a[2].Proc != 2 {
		t.Fatalf("concurrent tie-break should order by proc: %v", a)
	}
}

// Property: TopoSort never places an interval before one of its causal
// predecessors, for randomly generated causal histories.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nproc := rng.Intn(4) + 2
		// Simulate a random causal history: each proc advances through
		// intervals; at each step a proc may acquire from another,
		// merging clocks.
		clocks := make([]VC, nproc)
		for i := range clocks {
			clocks[i] = New(nproc)
		}
		var stamps []Stamp
		for step := 0; step < 20; step++ {
			p := rng.Intn(nproc)
			if rng.Intn(2) == 0 {
				q := rng.Intn(nproc)
				clocks[p].MaxWith(clocks[q])
			}
			clocks[p][p]++
			stamps = append(stamps, Stamp{Proc: p, Interval: clocks[p][p], VC: SparseFrom(clocks[p])})
		}
		rng.Shuffle(len(stamps), func(i, j int) { stamps[i], stamps[j] = stamps[j], stamps[i] })
		TopoSort(stamps)
		for i := 0; i < len(stamps); i++ {
			for j := i + 1; j < len(stamps); j++ {
				if HappensBefore(stamps[j], stamps[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxWith is commutative and produces a vector covering both
// inputs.
func TestMaxWithProperty(t *testing.T) {
	f := func(xs, ys [6]uint8) bool {
		a, b := New(6), New(6)
		for i := 0; i < 6; i++ {
			a[i], b[i] = int32(xs[i]), int32(ys[i])
		}
		m1 := a.Copy()
		m1.MaxWith(b)
		m2 := b.Copy()
		m2.MaxWith(a)
		return m1.Equal(m2) && m1.Covers(a) && m1.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
