package serve

import (
	"testing"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// TestFastpathValidatesAllProtocols: every ablation mode must serve the
// identical trace to completion with a bitwise-correct store (Run
// validates internally) under every protocol — including the homeless
// LRC family, where the seqlock path silently degrades to locks.
func TestFastpathValidatesAllProtocols(t *testing.T) {
	protos := []core.Protocol{core.ProtoLRC, core.ProtoOLRC, core.ProtoHLRC, core.ProtoOHLRC}
	for _, mode := range Modes {
		for _, proto := range protos {
			cfg := testConfig()
			if err := ApplyFastpath(&cfg, mode); err != nil {
				t.Fatal(err)
			}
			kv, res := runServe(t, cfg, proto, 4, core.Options{})
			s := res.Stats.Serve
			if s.Completed != kv.Generated() {
				t.Errorf("%s/%s: completed %d of %d", mode, proto, s.Completed, kv.Generated())
			}
			if s.Latency.Count() != s.Completed {
				t.Errorf("%s/%s: histogram has %d samples for %d completions",
					mode, proto, s.Latency.Count(), s.Completed)
			}
		}
	}
}

// TestApplyFastpathModes: the ladder is cumulative and unknown modes
// are rejected.
func TestApplyFastpathModes(t *testing.T) {
	var cfg Config
	if err := ApplyFastpath(&cfg, ModeAll); err != nil {
		t.Fatal(err)
	}
	if cfg.KeyLocks == 0 || !cfg.Seqlock || cfg.BatchWindow == 0 || !cfg.Pipeline {
		t.Errorf("mode all left a layer off: %+v", cfg)
	}
	if err := ApplyFastpath(&cfg, ModeOff); err != nil {
		t.Fatal(err)
	}
	if cfg.KeyLocks != 0 || cfg.Seqlock || cfg.BatchWindow != 0 || cfg.Pipeline {
		t.Errorf("mode off left a layer on: %+v", cfg)
	}
	if err := ApplyFastpath(&cfg, "turbo"); err == nil {
		t.Error("ApplyFastpath accepted an unknown mode")
	}
}

// TestBatchingPreservesValidation: under sustained backlog the batch
// worker must actually coalesce (more ops than critical sections) on
// every protocol, while Run's internal validation proves the store
// still matches the trace bitwise.
func TestBatchingPreservesValidation(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoOLRC, core.ProtoHLRC, core.ProtoOHLRC} {
		cfg := testConfig()
		cfg.OfferedLoad = 12_000 // overload: the backlog batching feeds on
		// Write-heavy and skewed: gets ride the lock-free path in this
		// mode, so coalescing needs hot keys colliding on the same lock.
		cfg.ReadPct, cfg.WritePct, cfg.ScanPct = 20, 80, 0
		cfg.ZipfTheta = 0.9
		if err := ApplyFastpath(&cfg, ModeBatch); err != nil {
			t.Fatal(err)
		}
		kv, res := runServe(t, cfg, proto, 4, core.Options{})
		s := res.Stats.Serve
		if s.Completed != kv.Generated() {
			t.Errorf("%s: completed %d of %d", proto, s.Completed, kv.Generated())
		}
		if s.Batches == 0 {
			t.Errorf("%s: batch mode recorded no batches", proto)
		}
		if s.BatchedOps <= s.Batches {
			t.Errorf("%s: %d ops in %d batches — nothing coalesced", proto, s.BatchedOps, s.Batches)
		}
		if s.MaxBatch < 2 {
			t.Errorf("%s: max batch %d, want >= 2", proto, s.MaxBatch)
		}
	}
}

// TestSeqlockCounters: under a home-based protocol the lock-free path
// must carry reads; under homeless LRC it must fall back (FreshRead has
// no authoritative copy to validate against) without losing requests.
func TestSeqlockCounters(t *testing.T) {
	cfg := testConfig()
	if err := ApplyFastpath(&cfg, ModeSeqlock); err != nil {
		t.Fatal(err)
	}
	_, res := runServe(t, cfg, core.ProtoHLRC, 4, core.Options{})
	s := res.Stats.Serve
	if s.SeqlockReads == 0 {
		t.Error("hlrc: seqlock mode served no lock-free reads")
	}
	if s.LockAcquires == 0 {
		t.Error("hlrc: no lock acquires recorded (puts still lock)")
	}

	_, res = runServe(t, cfg, core.ProtoLRC, 4, core.Options{})
	s = res.Stats.Serve
	if s.SeqlockReads != 0 {
		t.Errorf("lrc: %d lock-free reads under a homeless protocol", s.SeqlockReads)
	}
	if s.SeqlockFallbacks == 0 {
		t.Error("lrc: no fallbacks counted for the degraded lock-free path")
	}
}

// TestClosedLoop: the closed-loop population must validate, complete
// exactly what it generates, and never trip open-loop saturation.
func TestClosedLoop(t *testing.T) {
	cfg := testConfig()
	cfg.ClosedClients = 8
	cfg.ThinkTime = 500 * sim.Microsecond
	for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
		_, res := runServe(t, cfg, proto, 4, core.Options{})
		s := res.Stats.Serve
		if s.Completed == 0 {
			t.Fatalf("%s: closed loop completed nothing", proto)
		}
		if s.Generated != s.Completed {
			t.Errorf("%s: closed loop generated %d != completed %d", proto, s.Generated, s.Completed)
		}
		if s.Clients != 8 {
			t.Errorf("%s: clients = %d, want 8", proto, s.Clients)
		}
		if s.Saturated() {
			t.Errorf("%s: closed loop flagged saturated (ratio %.3f)", proto, s.SaturationRatio())
		}
	}
}

// TestClosedLoopFewerClientsThanNodes: a population smaller than the
// machine leaves idle nodes; the run must still validate and complete.
func TestClosedLoopFewerClientsThanNodes(t *testing.T) {
	cfg := testConfig()
	cfg.ClosedClients = 2
	_, res := runServe(t, cfg, core.ProtoOHLRC, 4, core.Options{})
	if res.Stats.Serve.Completed == 0 {
		t.Fatal("2-client closed loop completed nothing")
	}
}

// TestAblationOrdering: walking each ablation rung up a load ladder,
// the sustained load (highest unsaturated offered load) must be
// monotone along the cumulative ladder: all >= batch >= locks >= off.
// (seqlock is omitted from the chain: lock-free gets and batched puts
// optimize different op classes, so their order can legitimately swap.)
func TestAblationOrdering(t *testing.T) {
	ladder := []float64{500, 1000, 2000, 4000, 8000}
	sustained := map[string]float64{}
	for _, mode := range Modes {
		for _, load := range ladder {
			cfg := testConfig()
			cfg.OfferedLoad = load
			cfg.ZipfTheta = 0.9
			if err := ApplyFastpath(&cfg, mode); err != nil {
				t.Fatal(err)
			}
			_, res := runServe(t, cfg, core.ProtoHLRC, 4, core.Options{})
			if res.Stats.Serve.Saturated() {
				break
			}
			sustained[mode] = load
		}
		t.Logf("%s: sustained %.0f req/s", mode, sustained[mode])
	}
	chain := []string{ModeOff, ModeLocks, ModeBatch, ModeAll}
	for i := 1; i < len(chain); i++ {
		lo, hi := chain[i-1], chain[i]
		if sustained[hi] < sustained[lo] {
			t.Errorf("ablation ordering violated: %s sustains %.0f < %s sustains %.0f",
				hi, sustained[hi], lo, sustained[lo])
		}
	}
	if sustained[ModeAll] <= sustained[ModeOff] {
		t.Errorf("full fast path sustains %.0f, no better than baseline %.0f",
			sustained[ModeAll], sustained[ModeOff])
	}
}

// tornApp reproduces the seqlock torn-read scenario deterministically:
// node 1 parks mid-critical-section with an odd version word, node 0
// forces node 1's open interval to flush by chasing an unrelated lock
// past it, then reads lock-free. The fresh fetch must observe the odd
// version; the locked fallback must observe the committed value.
type tornApp struct {
	base     mem.Addr
	sawOdd   bool
	fellBack bool
	finalVal float64
	finalVer int64
}

func (a *tornApp) Name() string { return "torn" }

func (a *tornApp) Setup(s *core.Setup) { a.base = s.Alloc(2) }

func (a *tornApp) Init(w *core.Init) {
	w.Store(a.base, 0)
	w.StoreI(a.base+1, 0)
	w.SetHome(a.base, 2, 0) // reader is the home: flushes land where it looks
}

func (a *tornApp) Worker(c *core.Ctx, id int) {
	if id == 1 {
		// Writer: open the seqlock (odd), mutate, and park inside the
		// critical section long enough for the reader to probe.
		c.Lock(1)
		v := c.LoadI(a.base + 1)
		c.StoreI(a.base+1, v+1)
		c.Store(a.base, 42)
		c.Wait(5 * sim.Millisecond)
		c.StoreI(a.base+1, v+2)
		c.Unlock(1)
	} else {
		// Reader: lock 3's token also starts at node 1, so acquiring it
		// chases past the writer and forces its dirty interval to flush —
		// the odd version reaches the home mid-critical-section.
		c.WaitUntil(sim.Millisecond)
		c.Lock(3)
		c.Unlock(3)
		deadline := c.Now() + 3*sim.Millisecond
		for c.Now() < deadline {
			if !c.FreshRead(a.base) {
				break
			}
			if c.LoadI(a.base+1)&1 != 0 {
				a.sawOdd = true
				break
			}
			c.Wait(50 * sim.Microsecond)
		}
		// Retries exhausted: fall back to the lock, which waits out the
		// writer and guarantees an even version.
		a.fellBack = true
		c.Lock(1)
		a.finalVal = c.Load(a.base)
		a.finalVer = c.LoadI(a.base + 1)
		c.Unlock(1)
	}
	c.Barrier(0)
}

func (a *tornApp) Gather(c *core.Ctx) []float64 {
	return []float64{c.Load(a.base), float64(int64(c.Load(a.base + 1)))}
}

// TestSeqlockTornRead: the mid-interval flush (lock chase past a dirty
// owner) must expose the odd version word to a lock-free reader, and
// the locked fallback must then observe the committed value — the
// mechanism DESIGN.md §14's correctness argument rests on.
func TestSeqlockTornRead(t *testing.T) {
	app := &tornApp{}
	res, err := core.Run(core.Options{Protocol: core.ProtoHLRC, NumProcs: 2}, app, false)
	if err != nil {
		t.Fatal(err)
	}
	if !app.sawOdd {
		t.Error("lock-free reader never observed the odd (torn) version")
	}
	if !app.fellBack {
		t.Error("reader did not take the locked fallback")
	}
	if app.finalVal != 42 {
		t.Errorf("locked fallback read %v, want the committed 42", app.finalVal)
	}
	if app.finalVer%2 != 0 {
		t.Errorf("locked fallback saw odd version %d", app.finalVer)
	}
	if res.Data[0] != 42 || int64(res.Data[1])%2 != 0 {
		t.Errorf("gathered (%v, %v), want (42, even)", res.Data[0], res.Data[1])
	}
}
