package serve

import (
	"gosvm/internal/core"
	"gosvm/internal/sim"
)

// clientsOf returns how many closed-loop clients node id hosts: the
// population spreads round-robin, low ids taking the remainder.
func (kv *KV) clientsOf(id int) int {
	n := kv.cfg.ClosedClients / kv.procs
	if id < kv.cfg.ClosedClients%kv.procs {
		n++
	}
	return n
}

// closedClient is one closed-loop client's state: its private rng and
// the time its next request is due (issue time, not service time).
type closedClient struct {
	rng  *rng
	next sim.Time
}

// closedWorker multiplexes node id's closed-loop clients over the
// single server: each client issues one request, waits for its
// completion, thinks (exponential, mean ThinkTime), and issues again.
// Demand therefore tracks service capacity — the closed population can
// saturate the server but never builds the unbounded backlog an
// overloaded open loop does, which is exactly the contrast the
// open-vs-closed sweep measures. Requests are drawn at issue time from
// the same key and op-mix distributions as the open-loop traces;
// executed put deltas accumulate per node so finalizeExpected can
// reconstruct the exact final store contents.
func (kv *KV) closedWorker(c *core.Ctx, id int) {
	nc := kv.clientsOf(id)
	if nc == 0 {
		return
	}
	h := kv.hists[id]
	scratch := make([]float64, kv.cfg.ScanLen)
	deltas := kv.closedDeltas[id]
	mean := 1 / (float64(kv.cfg.ThinkTime) / float64(sim.Second)) // thinks per second
	clients := make([]closedClient, nc)
	for i := range clients {
		r := newRNG(scramble(uint64(kv.cfg.Seed)) ^ scramble(uint64(id)*0x10001+uint64(i)+0xc105ed))
		clients[i] = closedClient{rng: r, next: r.exp(mean)}
	}
	for {
		// Serve the earliest due client still inside the window. The
		// window bounds issue times, not completions, so the run drains
		// cleanly instead of truncating in-flight requests.
		sel := -1
		for i := range clients {
			if clients[i].next < kv.cfg.Window && (sel < 0 || clients[i].next < clients[sel].next) {
				sel = i
			}
		}
		if sel < 0 {
			return
		}
		cl := &clients[sel]
		c.WaitUntil(cl.next)
		start := c.Now()
		req := kv.drawReq(cl.rng)
		req.At = cl.next
		kv.serveOne(c, id, &req, scratch)
		if req.Op == OpPut {
			deltas[req.Key] += float64(req.Delta)
		}
		h.Record(c.Now() - req.At)
		kv.busy[id] += c.Now() - start
		kv.lastDone[id] = c.Now()
		cl.next = c.Now() + cl.rng.exp(mean)
	}
}

// finalizeExpected folds the closed-loop deltas each node executed into
// the expected final store contents. A no-op in open-loop mode, where
// the trace fixed expected at construction. Must run after the workers
// finish and before Validate.
func (kv *KV) finalizeExpected() {
	if kv.cfg.ClosedClients == 0 {
		return
	}
	kv.expected = append([]float64(nil), kv.initVals...)
	for _, deltas := range kv.closedDeltas {
		for k, d := range deltas {
			kv.expected[k] += d
		}
	}
}
