package serve

import (
	"reflect"
	"testing"

	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/sim"
)

// testConfig is a small, fast workload: ~60 requests on a 4-node machine.
func testConfig() Config {
	return Config{
		Keys:        256,
		OfferedLoad: 3000,
		Window:      20 * sim.Millisecond,
		Seed:        7,
	}
}

func runServe(t *testing.T, cfg Config, proto core.Protocol, procs int, opts core.Options) (*KV, *core.Result) {
	t.Helper()
	kv, err := New(cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	opts.Protocol = proto
	opts.NumProcs = procs
	res, err := Run(opts, kv)
	if err != nil {
		t.Fatalf("%s/p%d: %v", proto, procs, err)
	}
	return kv, res
}

// TestTraceDeterminism: the client trace depends only on (cfg, procs) —
// building the workload twice yields identical traces and expectations.
func TestTraceDeterminism(t *testing.T) {
	a, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Generated() == 0 {
		t.Fatal("trace generated no requests")
	}
	for id := 0; id < 4; id++ {
		if !reflect.DeepEqual(a.Trace(id), b.Trace(id)) {
			t.Errorf("node %d: traces differ between identical builds", id)
		}
	}
	if !reflect.DeepEqual(a.Expected(), b.Expected()) {
		t.Error("expected store contents differ between identical builds")
	}

	// A different seed must change the trace.
	cfg := testConfig()
	cfg.Seed = 8
	c, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Trace(0), c.Trace(0)) {
		t.Error("seed change left node 0's trace identical")
	}
}

// TestValidateAcrossProtocols: the same arrival trace served under LRC,
// HLRC and OHLRC must produce the bitwise-identical final store (Run
// validates internally) and complete every generated request.
func TestValidateAcrossProtocols(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoOLRC, core.ProtoHLRC, core.ProtoOHLRC} {
		kv, res := runServe(t, testConfig(), proto, 4, core.Options{})
		s := res.Stats.Serve
		if s == nil {
			t.Fatalf("%s: no serve block attached", proto)
		}
		if s.Completed != kv.Generated() {
			t.Errorf("%s: completed %d of %d generated", proto, s.Completed, kv.Generated())
		}
		if s.Gets+s.Puts+s.Scans != s.Completed {
			t.Errorf("%s: op counts %d+%d+%d != completed %d", proto, s.Gets, s.Puts, s.Scans, s.Completed)
		}
		if s.Latency.Count() != s.Completed {
			t.Errorf("%s: histogram has %d samples for %d completions", proto, s.Latency.Count(), s.Completed)
		}
	}
}

// TestSaturationDetection: well below capacity the saturation flag must
// stay off; far above capacity (20x) it must fire. Per-node capacity on
// the modeled Paragon is ~500-800 req/s.
func TestSaturationDetection(t *testing.T) {
	cfg := testConfig()

	cfg.OfferedLoad = 400 // 100 req/s per node: far below capacity
	_, light := runServe(t, cfg, core.ProtoHLRC, 4, core.Options{})
	if s := light.Stats.Serve; s.Saturated() {
		t.Errorf("light load flagged saturated: ratio %.3f, util %.2f", s.SaturationRatio(), s.MaxUtil)
	}

	cfg.OfferedLoad = 40_000 // 10k req/s per node: ~20x capacity
	_, heavy := runServe(t, cfg, core.ProtoHLRC, 4, core.Options{})
	s := heavy.Stats.Serve
	if !s.Saturated() {
		t.Errorf("20x overload not flagged: ratio %.3f", s.SaturationRatio())
	}
	if s.MaxUtil < 0.95 {
		t.Errorf("20x overload queue utilization %.2f, want ~1 (queue never drains)", s.MaxUtil)
	}
	if s.LastDone <= cfg.Window {
		t.Errorf("overload completion horizon %v within the arrival window %v", s.LastDone, cfg.Window)
	}
}

// TestBurstyArrivals: the MMPP process must validate and be mean-
// preserving within sampling noise (same order of generated requests as
// Poisson at the same rate).
func TestBurstyArrivals(t *testing.T) {
	cfg := testConfig()
	cfg.Arrival = ArrivalBursty
	cfg.BurstFactor = 3
	kv, res := runServe(t, cfg, core.ProtoOHLRC, 4, core.Options{})
	if res.Stats.Serve.Completed != kv.Generated() {
		t.Errorf("bursty run completed %d of %d", res.Stats.Serve.Completed, kv.Generated())
	}
	pois, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := pois.Generated()/2, pois.Generated()*2
	if g := kv.Generated(); g < lo || g > hi {
		t.Errorf("bursty generated %d requests, poisson %d: not mean-preserving", g, pois.Generated())
	}
}

// TestZipfSkew: theta 0.9 must concentrate traffic — the most popular
// key must see far more than the uniform share of requests.
func TestZipfSkew(t *testing.T) {
	cfg := testConfig()
	cfg.OfferedLoad = 20_000 // enough requests for the skew to show
	cfg.ZipfTheta = 0.9
	kv, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int)
	total := 0
	for id := 0; id < 4; id++ {
		for _, r := range kv.Trace(id) {
			counts[r.Key]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := float64(total) / float64(cfg.Keys)
	if float64(max) < 5*uniformShare {
		t.Errorf("theta 0.9: hottest key saw %d of %d requests, want > 5x the uniform share %.1f",
			max, total, uniformShare)
	}
}

// TestServeUnderLossyFaults: message loss must not deadlock the serving
// loop or corrupt the store; retries must appear in the node counters.
func TestServeUnderLossyFaults(t *testing.T) {
	plan, err := fault.Profile(fault.ProfileLossy, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, res := runServe(t, testConfig(), core.ProtoHLRC, 4, core.Options{Fault: plan})
	s := res.Stats.Serve
	if s.Completed == 0 {
		t.Fatal("lossy run completed nothing")
	}
	if s.Latency.P999() == 0 {
		t.Error("lossy run reports zero p999")
	}
	var retries int64
	for _, nd := range res.Stats.Nodes {
		retries += nd.Counts.Retries
	}
	if retries == 0 {
		t.Error("lossy profile produced no retries")
	}
}

// TestServeUnderCrashFaults: a mid-run node crash with one home-state
// replica must recover, complete the full trace, validate the store, and
// report recovery time and rehomed pages.
func TestServeUnderCrashFaults(t *testing.T) {
	plan, err := fault.Profile(fault.ProfileCrash, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Window = 40 * sim.Millisecond // span the crash (5ms) and revival (25ms)
	for _, proto := range []core.Protocol{core.ProtoHLRC, core.ProtoOHLRC} {
		kv, res := runServe(t, cfg, proto, 4, core.Options{
			Fault:    plan,
			Recovery: core.Recovery{Replicas: 1},
		})
		s := res.Stats.Serve
		if s.Completed != kv.Generated() {
			t.Errorf("%s: crash run completed %d of %d", proto, s.Completed, kv.Generated())
		}
		if s.Latency.P999() == 0 {
			t.Errorf("%s: crash run reports zero p999", proto)
		}
		var rehomed int64
		var recovery sim.Time
		for _, nd := range res.Stats.Nodes {
			rehomed += nd.Counts.PagesRehomed
			recovery += nd.Recovery
		}
		if rehomed == 0 {
			t.Errorf("%s: crash recovered no pages", proto)
		}
		if recovery == 0 {
			t.Errorf("%s: crash reports zero recovery time", proto)
		}
	}
}

// TestConfigValidation rejects inconsistent shapes.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ReadPct, c.WritePct, c.ScanPct = 50, 30, 30 }, // sums to 110
		func(c *Config) { c.ReadPct, c.WritePct, c.ScanPct = 120, -15, -5 },
		func(c *Config) { c.ZipfTheta = 1.5 },
		func(c *Config) { c.Arrival = "lognormal" },
		func(c *Config) { c.BurstFactor = 9 }, // >= 1/burstHighFraction
		func(c *Config) { c.Keys = -1 },
		func(c *Config) { c.OfferedLoad = -3 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		cfg.Defaults()
		mutate(&cfg)
		if _, err := New(cfg, 4); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := New(testConfig(), 0); err == nil {
		t.Error("New accepted zero procs")
	}
}

// TestProcsMismatch: running a workload on a machine size it was not
// built for must fail loudly rather than misindex.
func TestProcsMismatch(t *testing.T) {
	kv, err := New(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Protocol: core.ProtoHLRC, NumProcs: 8}
	if _, err := Run(opts, kv); err == nil {
		t.Error("Run accepted a procs mismatch")
	}
}
