package serve

import (
	"bytes"
	"testing"

	"gosvm/internal/core"
	"gosvm/internal/sim"
)

// TestParallelKernelServeSmoke is the CI parallel-kernel serve smoke
// (run under -race): an 8-node open-loop serving run on the partitioned
// kernel at -run-workers 4 must produce stats byte-identical to the
// sequential kernel, including the latency histogram block.
func TestParallelKernelServeSmoke(t *testing.T) {
	cfg := Config{
		Keys:        512,
		OfferedLoad: 4000,
		Window:      40 * sim.Millisecond,
		ZipfTheta:   0.9,
		Seed:        7,
	}
	run := func(workers int) string {
		opts := core.Options{RunWorkers: workers}
		_, res := runServe(t, cfg, core.ProtoHLRC, 8, opts)
		var buf bytes.Buffer
		if err := res.Stats.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.String()
	}
	ref := run(1)
	if got := run(4); got != ref {
		t.Fatalf("workers=4 serve stats diverge from workers=1:\n--- w=1 ---\n%s\n--- w=4 ---\n%s", ref, got)
	}
}
