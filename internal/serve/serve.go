// Package serve implements the request-serving workload: a key-value
// store sharded over SVM pages, driven either by per-node open-loop
// client populations whose requests arrive on the simulated clock via
// seeded Poisson (or bursty MMPP) processes, or by a closed-loop client
// population that thinks between requests.
//
// Unlike the closed-loop batch kernels (SOR, LU, Water), performance
// here is not a single elapsed time but a latency distribution: every
// get/put/scan records completion-minus-arrival into an HDR-style
// histogram (stats.Hist), and the run reports offered vs. achieved
// throughput with saturation detection. Keys hash to shards, shards lay
// out on distinct pages with per-shard locks, so every operation
// exercises the real HLRC/OHLRC/LRC protocol paths: lock forwarding,
// write notices, diffs to homes, and page fetches.
//
// The serving fast path (fastpath.go) layers three optimizations on the
// baseline one-lock-per-shard design: striped per-key locks (KeyLocks),
// seqlock-validated lock-free reads (Seqlock), and same-lock request
// batching with cross-shard prefetch pipelining (BatchWindow,
// Pipeline). All of them preserve the workload's self-validation: put
// deltas are integers and commutative (read-modify-write addition under
// the key's lock), so the final store contents are exactly computable
// from the trace alone and must match bitwise under every protocol and
// fault plan.
package serve

import (
	"fmt"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// Op is a request type.
type Op uint8

// Request operations.
const (
	OpGet Op = iota
	OpPut
	OpScan
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	default:
		return "scan"
	}
}

// Req is one client request: arrival time on the simulated clock, the
// key it touches, and (for puts) the integer delta it adds.
type Req struct {
	At    sim.Time
	Key   int32
	Delta int32
	Op    Op
}

// Config parameterizes the serving workload. The zero value is not
// runnable; Defaults fills every unset field.
type Config struct {
	// Keys is the key-space size. Each key owns one value word (plus a
	// version word when Seqlock is on).
	Keys int
	// Shards is the number of shards the keys hash onto. Each shard is
	// page-aligned so distinct shards never share a page. Zero means 4
	// shards per node.
	Shards int
	// OfferedLoad is the total offered request rate across the machine,
	// in requests per simulated second. Each node's client population
	// contributes OfferedLoad / procs. Ignored in closed-loop mode.
	OfferedLoad float64
	// Window is the arrival window: requests arrive over [0, Window).
	Window sim.Time
	// ReadPct, WritePct and ScanPct set the operation mix (must sum to
	// 100). All-zero selects the default 80/15/5 mix.
	ReadPct, WritePct, ScanPct int
	// ScanLen is the number of consecutive slots a scan reads.
	ScanLen int
	// ZipfTheta sets key popularity skew in [0, 1): 0 is uniform, 0.99
	// is heavily skewed. Hot ranks are scrambled across the key space.
	ZipfTheta float64
	// Arrival selects the arrival process: ArrivalPoisson (default) or
	// ArrivalBursty (two-state MMPP).
	Arrival string
	// BurstFactor is the bursty process's burst-state rate multiplier
	// (must be < 5; the burst state is active 20% of the time).
	BurstFactor float64
	// ServiceNs is the modeled per-operation application compute time;
	// scans add ServiceNs/8 per scanned slot.
	ServiceNs sim.Time
	// Seed derives every arrival process and key draw.
	Seed int64

	// KeyLocks enables striped per-key locking: each shard's keys spread
	// over this many lock stripes, so two puts to different keys of the
	// same shard no longer serialize on one lock. Lock ids are
	// shard + Shards*stripe, which keeps every stripe's manager on the
	// shard's home node whenever Shards is a multiple of the machine
	// size (the default layout), so a request's lock round trip and page
	// fetch target the same node. Zero keeps the baseline one lock per
	// shard.
	KeyLocks int
	// Seqlock enables lock-free validated reads: each slot pairs its
	// value with a version word on the same page; writers cycle the
	// version odd before and even after mutating, and readers revalidate
	// the page against its home (Ctx.FreshRead), retry on an odd
	// version, and fall back to the locked path after SeqlockRetries
	// torn reads. Only the home-based protocols (HLRC, OHLRC, AURC) have
	// an authoritative copy to validate against; under the homeless LRC
	// family every read silently takes the locked path.
	Seqlock bool
	// SeqlockRetries is the number of torn-read retries before a reader
	// falls back to the lock. Zero means the default of 3.
	SeqlockRetries int
	// SeqlockBackoff is the simulated pause between torn-read retries,
	// giving the writer's critical section time to close. Zero means the
	// default of 20 microseconds.
	SeqlockBackoff sim.Time
	// BatchWindow enables request batching: when a locked request
	// reaches the head of a node's queue, the server holds a window of
	// this length open and coalesces every queued request for the same
	// lock into one acquire -> apply-N -> release critical section,
	// amortizing the lock round trip and page fetch. Latency is still
	// recorded per request (completion minus arrival). Zero disables
	// batching. Ignored in closed-loop mode (a closed population never
	// builds the backlog batching feeds on).
	BatchWindow sim.Time
	// MaxBatch caps the operations coalesced into one critical section;
	// a full backlog skips the window wait entirely. Zero means the
	// default of 16.
	MaxBatch int
	// Pipeline overlaps communication with service: before entering a
	// critical section the server prefetches the page of the oldest
	// queued request on a different shard (Ctx.Prefetch), so that page's
	// fetch rides under the current critical section instead of
	// stalling the next one.
	Pipeline bool

	// ClosedClients switches the workload to closed-loop: this many
	// clients total, distributed round-robin across nodes, each issuing
	// one request at a time and thinking (exponential, mean ThinkTime)
	// between completion and the next issue. OfferedLoad and Arrival are
	// ignored; the run still ends when no client would issue before
	// Window. Zero keeps the open-loop traces.
	ClosedClients int
	// ThinkTime is the closed-loop mean think time. Zero means the
	// default of 1 millisecond.
	ThinkTime sim.Time
}

// Defaults fills unset fields. A request on the modeled Paragon costs
// ~1-2ms of coherence work (remote lock acquire plus page miss, §4.3 of
// the paper), so per-node capacity is roughly 500-800 req/s and the
// default 2000 req/s offered load sits near the knee of a 4-node
// machine: light enough to stay stable at 8+ nodes, heavy enough that
// halving the machine saturates it.
func (c *Config) Defaults() {
	if c.Keys == 0 {
		c.Keys = 4096
	}
	if c.OfferedLoad == 0 {
		c.OfferedLoad = 2000
	}
	if c.Window == 0 {
		c.Window = 50 * sim.Millisecond
	}
	if c.ReadPct == 0 && c.WritePct == 0 && c.ScanPct == 0 {
		c.ReadPct, c.WritePct, c.ScanPct = 80, 15, 5
	}
	if c.ScanLen == 0 {
		c.ScanLen = 16
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 3
	}
	if c.ServiceNs == 0 {
		c.ServiceNs = 5 * sim.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SeqlockRetries == 0 {
		c.SeqlockRetries = 3
	}
	if c.SeqlockBackoff == 0 {
		c.SeqlockBackoff = 20 * sim.Microsecond
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = sim.Millisecond
	}
}

// validate rejects inconsistent configurations.
func (c *Config) validate(procs int) error {
	if c.Keys < 1 {
		return fmt.Errorf("serve: Keys must be positive, got %d", c.Keys)
	}
	if c.ReadPct+c.WritePct+c.ScanPct != 100 {
		return fmt.Errorf("serve: op mix %d/%d/%d does not sum to 100",
			c.ReadPct, c.WritePct, c.ScanPct)
	}
	if c.ReadPct < 0 || c.WritePct < 0 || c.ScanPct < 0 {
		return fmt.Errorf("serve: op mix %d/%d/%d has a negative entry",
			c.ReadPct, c.WritePct, c.ScanPct)
	}
	if c.ZipfTheta < 0 || c.ZipfTheta >= 1 {
		return fmt.Errorf("serve: ZipfTheta must be in [0,1), got %g", c.ZipfTheta)
	}
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalBursty {
		return fmt.Errorf("serve: unknown arrival process %q (have %s, %s)",
			c.Arrival, ArrivalPoisson, ArrivalBursty)
	}
	if c.BurstFactor <= 0 || c.BurstFactor >= 1/burstHighFraction {
		return fmt.Errorf("serve: BurstFactor must be in (0, %g), got %g",
			1/burstHighFraction, c.BurstFactor)
	}
	if c.OfferedLoad <= 0 {
		return fmt.Errorf("serve: OfferedLoad must be positive, got %g", c.OfferedLoad)
	}
	if c.Window <= 0 {
		return fmt.Errorf("serve: Window must be positive, got %v", c.Window)
	}
	if c.ScanLen < 1 {
		return fmt.Errorf("serve: ScanLen must be positive, got %d", c.ScanLen)
	}
	if procs < 1 {
		return fmt.Errorf("serve: procs must be positive, got %d", procs)
	}
	if c.KeyLocks < 0 {
		return fmt.Errorf("serve: KeyLocks must be non-negative, got %d", c.KeyLocks)
	}
	if c.SeqlockRetries < 0 {
		return fmt.Errorf("serve: SeqlockRetries must be non-negative, got %d", c.SeqlockRetries)
	}
	if c.SeqlockBackoff < 0 {
		return fmt.Errorf("serve: SeqlockBackoff must be non-negative, got %v", c.SeqlockBackoff)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("serve: BatchWindow must be non-negative, got %v", c.BatchWindow)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch must be positive, got %d", c.MaxBatch)
	}
	if c.ClosedClients < 0 {
		return fmt.Errorf("serve: ClosedClients must be non-negative, got %d", c.ClosedClients)
	}
	if c.ThinkTime <= 0 {
		return fmt.Errorf("serve: ThinkTime must be positive, got %v", c.ThinkTime)
	}
	return nil
}

// KV is the serving workload as a core.App: a sharded key-value store
// over SVM pages plus the per-node client populations that drive it.
// Build one with New per run; instances are single-use.
type KV struct {
	cfg    Config
	procs  int
	shards int

	// slotWords is the words per key slot: 1 for the plain layout, 2
	// when Seqlock pairs each value with a version word.
	slotWords int

	// Key layout, fixed at construction: key -> (shard, slot).
	keyShard []int32
	keySlot  []int32
	shardLen []int32 // slots per shard
	zipf     *zipfGen

	// Per-node request traces, sorted by arrival time (open loop only).
	traces    [][]Req
	generated int64

	// Expected final store contents. Open loop derives them from the
	// traces at construction; closed loop accumulates executed put
	// deltas per node and folds them in after the run (finalizeExpected).
	initVals     []float64
	expected     []float64
	closedDeltas [][]float64

	// Shared-memory layout, filled in Setup.
	shardBase []mem.Addr

	// Per-node results, written by the Workers on the simulated clock.
	hists    []*stats.Hist
	ops      [][3]int64 // per node: gets, puts, scans
	lastDone []sim.Time
	busy     []sim.Time // time spent serving (not idling between arrivals)

	// Per-node fast-path counters.
	seqReads     []int64
	seqRetries   []int64
	seqFallbacks []int64
	batches      []int64
	batchedOps   []int64
	maxBatch     []int64
}

// New builds the workload for a machine of the given size: key layout,
// per-node arrival traces, and the expected final store contents. The
// trace depends only on (cfg, procs) — never on the protocol, fault
// plan, or host parallelism — so every protocol serves the identical
// request stream.
func New(cfg Config, procs int) (*KV, error) {
	cfg.Defaults()
	if cfg.Shards == 0 {
		cfg.Shards = 4 * procs
	}
	if err := cfg.validate(procs); err != nil {
		return nil, err
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("serve: Shards must be positive, got %d", cfg.Shards)
	}
	kv := &KV{cfg: cfg, procs: procs, shards: cfg.Shards, slotWords: 1}
	if cfg.Seqlock {
		kv.slotWords = 2
	}

	// Key layout: scramble keys across shards, slots assigned in key
	// order within each shard.
	kv.keyShard = make([]int32, cfg.Keys)
	kv.keySlot = make([]int32, cfg.Keys)
	kv.shardLen = make([]int32, kv.shards)
	for k := 0; k < cfg.Keys; k++ {
		s := int32(scramble(uint64(k)+0x5eed) % uint64(kv.shards))
		kv.keyShard[k] = s
		kv.keySlot[k] = kv.shardLen[s]
		kv.shardLen[s]++
	}

	// Initial contents: small integers, exactly representable, so every
	// downstream sum stays exact in float64.
	initRng := newRNG(uint64(cfg.Seed) * 0x9e3779b97f4a7c15)
	kv.initVals = make([]float64, cfg.Keys)
	for k := range kv.initVals {
		kv.initVals[k] = float64(initRng.intn(1000))
	}

	kv.zipf = newZipf(cfg.Keys, cfg.ZipfTheta)
	kv.expected = append([]float64(nil), kv.initVals...)
	kv.traces = make([][]Req, procs)
	if cfg.ClosedClients > 0 {
		// Closed loop draws requests on the fly; executed deltas are
		// accumulated per node and folded into expected after the run.
		kv.closedDeltas = make([][]float64, procs)
		for id := range kv.closedDeltas {
			kv.closedDeltas[id] = make([]float64, cfg.Keys)
		}
	} else {
		// Per-node open-loop client traces. Each node's population is
		// seeded independently of the others, so traces are reproducible
		// per node.
		perNodeRate := cfg.OfferedLoad / float64(procs)
		for id := 0; id < procs; id++ {
			r := newRNG(scramble(uint64(cfg.Seed)) ^ scramble(uint64(id)+0xc11e47))
			ats := arrivals(r, cfg.Arrival, perNodeRate, cfg.Window, cfg.BurstFactor)
			trace := make([]Req, len(ats))
			for i, at := range ats {
				req := kv.drawReq(r)
				req.At = at
				if req.Op == OpPut {
					kv.expected[req.Key] += float64(req.Delta)
				}
				trace[i] = req
			}
			kv.traces[id] = trace
			kv.generated += int64(len(trace))
		}
	}

	kv.hists = make([]*stats.Hist, procs)
	for i := range kv.hists {
		kv.hists[i] = stats.NewHist()
	}
	kv.ops = make([][3]int64, procs)
	kv.lastDone = make([]sim.Time, procs)
	kv.busy = make([]sim.Time, procs)
	kv.seqReads = make([]int64, procs)
	kv.seqRetries = make([]int64, procs)
	kv.seqFallbacks = make([]int64, procs)
	kv.batches = make([]int64, procs)
	kv.batchedOps = make([]int64, procs)
	kv.maxBatch = make([]int64, procs)
	return kv, nil
}

// drawReq draws one request (key, op, delta — not the arrival time)
// from a node or client rng. Both the open-loop trace generator and the
// closed-loop clients use it, so the two modes sample the identical
// key-popularity and op-mix distributions.
func (kv *KV) drawReq(r *rng) Req {
	key := int32(scramble(uint64(kv.zipf.rank(r))+0x6b65796d) % uint64(kv.cfg.Keys))
	req := Req{Key: key}
	switch pick := r.intn(100); {
	case pick < kv.cfg.ReadPct:
		req.Op = OpGet
	case pick < kv.cfg.ReadPct+kv.cfg.WritePct:
		req.Op = OpPut
		req.Delta = int32(1 + r.intn(8))
	default:
		req.Op = OpScan
	}
	return req
}

// Name implements core.App.
func (kv *KV) Name() string { return "kv-serve" }

// Generated returns the total number of requests across all open-loop
// traces (zero in closed-loop mode, where demand follows completions).
func (kv *KV) Generated() int64 { return kv.generated }

// Trace returns node id's request trace (read-only; used by tests).
func (kv *KV) Trace(id int) []Req { return kv.traces[id] }

// Setup allocates one page-aligned region per shard, so shards never
// share a page and a key's lock stripe is the only cross-key coupling.
// With Seqlock on, each slot is two words (value, version) — still
// within one shard region, so a value and its version always share a
// page and arrive in the same atomic page copy.
func (kv *KV) Setup(s *core.Setup) {
	if s.P != kv.procs {
		panic(fmt.Sprintf("serve: built for %d procs, run with %d", kv.procs, s.P))
	}
	kv.shardBase = make([]mem.Addr, kv.shards)
	for sh := 0; sh < kv.shards; sh++ {
		n := int(kv.shardLen[sh])
		if n == 0 {
			n = 1 // keep shard indexing total even if no key hashed here
		}
		kv.shardBase[sh] = s.Alloc(n * kv.slotWords)
	}
}

// Init seeds initial values and homes each shard on the node that will
// most often serve it — shard s on node s mod P, the same round-robin
// the lock managers use, so a shard's locks and pages co-locate.
func (kv *KV) Init(w *core.Init) {
	for k := 0; k < kv.cfg.Keys; k++ {
		w.Store(kv.addrOf(int32(k)), kv.initVals[k])
	}
	for sh := 0; sh < kv.shards; sh++ {
		n := int(kv.shardLen[sh])
		if n == 0 {
			n = 1
		}
		w.SetHome(kv.shardBase[sh], n*kv.slotWords, sh%kv.procs)
	}
}

// addrOf returns the shared address of a key's value word.
func (kv *KV) addrOf(key int32) mem.Addr {
	return kv.shardBase[kv.keyShard[key]] + mem.Addr(int(kv.keySlot[key])*kv.slotWords)
}

// Worker serves node id's client population. Open loop runs a FIFO
// queue over the pre-generated trace (optionally batching same-lock
// requests); closed loop multiplexes the node's thinking clients.
// Either way each operation records completion minus arrival.
func (kv *KV) Worker(c *core.Ctx, id int) {
	switch {
	case kv.cfg.ClosedClients > 0:
		kv.closedWorker(c, id)
	case kv.cfg.BatchWindow > 0:
		kv.batchWorker(c, id)
	default:
		kv.openWorker(c, id)
	}
	c.Barrier(0)
}

// openWorker is the unbatched open-loop server: requests are served
// one at a time in arrival order (FIFO single-server queue).
func (kv *KV) openWorker(c *core.Ctx, id int) {
	h := kv.hists[id]
	scratch := make([]float64, kv.cfg.ScanLen)
	trace := kv.traces[id]
	for i := range trace {
		r := &trace[i]
		c.WaitUntil(r.At)
		// Service starts now: at the arrival, or when the previous request
		// finished — whichever is later.
		start := c.Now()
		if kv.cfg.Pipeline {
			// Overlap the next waiting request's page fetch with this
			// request's service.
			sh := kv.keyShard[r.Key]
			for j := i + 1; j < len(trace) && trace[j].At <= start; j++ {
				if kv.keyShard[trace[j].Key] != sh {
					c.Prefetch(kv.addrOf(trace[j].Key))
					break
				}
			}
		}
		kv.serveOne(c, id, r, scratch)
		h.Record(c.Now() - r.At)
		kv.busy[id] += c.Now() - start
		kv.lastDone[id] = c.Now()
	}
}

// Gather reads back the whole store through the SVM for validation.
func (kv *KV) Gather(c *core.Ctx) []float64 {
	out := make([]float64, kv.cfg.Keys)
	for k := range out {
		out[k] = c.Load(kv.addrOf(int32(k)))
	}
	return out
}

// Expected returns the final store contents implied by the workload:
// initial values plus every put delta. Deltas are integers and addition
// under the key's lock is commutative, so the gathered data must match
// bitwise under every protocol, schedule, and (recoverable) fault plan.
// In closed-loop mode this is only valid after finalizeExpected.
func (kv *KV) Expected() []float64 { return kv.expected }

// Validate checks gathered run data against the trace-derived expected
// contents.
func (kv *KV) Validate(data []float64) error {
	if len(data) != len(kv.expected) {
		return fmt.Errorf("serve: gathered %d keys, expected %d", len(data), len(kv.expected))
	}
	for k, want := range kv.expected {
		if data[k] != want {
			return fmt.Errorf("serve: key %d = %v, expected %v", k, data[k], want)
		}
	}
	return nil
}

// Stats merges the per-node measurements into the run's serve block.
// Call after the run completes.
func (kv *KV) Stats() *stats.ServeStats {
	s := &stats.ServeStats{
		Window:    kv.cfg.Window,
		Generated: kv.generated,
		Latency:   stats.NewHist(),
	}
	for id := range kv.hists {
		s.Latency.Merge(kv.hists[id])
		s.Gets += kv.ops[id][0]
		s.Puts += kv.ops[id][1]
		s.Scans += kv.ops[id][2]
		s.Busy += kv.busy[id]
		if kv.lastDone[id] > s.LastDone {
			s.LastDone = kv.lastDone[id]
		}
		if kv.lastDone[id] > 0 {
			if u := float64(kv.busy[id]) / float64(kv.lastDone[id]); u > s.MaxUtil {
				s.MaxUtil = u
			}
		}
		s.SeqlockReads += kv.seqReads[id]
		s.SeqlockRetries += kv.seqRetries[id]
		s.SeqlockFallbacks += kv.seqFallbacks[id]
		s.Batches += kv.batches[id]
		s.BatchedOps += kv.batchedOps[id]
		if kv.maxBatch[id] > s.MaxBatch {
			s.MaxBatch = kv.maxBatch[id]
		}
	}
	s.Completed = s.Gets + s.Puts + s.Scans
	if kv.cfg.ClosedClients > 0 {
		// A closed population generates exactly what it completes.
		s.Generated = s.Completed
		s.Clients = int64(kv.cfg.ClosedClients)
		s.Think = kv.cfg.ThinkTime
	}
	return s
}

// Run executes the workload under opts, attaches the serve statistics
// block to the result, and validates the final store contents against
// the trace. opts.NumProcs must match the procs the workload was built
// for.
func Run(opts core.Options, kv *KV) (*core.Result, error) {
	opts.Defaults()
	if opts.NumProcs != kv.procs {
		return nil, fmt.Errorf("serve: workload built for %d procs, options say %d",
			kv.procs, opts.NumProcs)
	}
	res, err := core.Run(opts, kv, false)
	if err != nil {
		return nil, err
	}
	kv.finalizeExpected()
	if err := kv.Validate(res.Data); err != nil {
		return nil, err
	}
	ss := kv.Stats()
	for _, n := range res.Stats.Nodes {
		ss.LockAcquires += n.Counts.LockAcquires
		ss.LockForwards += n.Counts.LockForwards
	}
	res.Stats.Serve = ss
	return res, nil
}
