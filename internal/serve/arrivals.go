package serve

import (
	"math"

	"gosvm/internal/sim"
)

// rng is a splitmix64 generator: tiny, fast, and fully deterministic
// across platforms, so the same seed always yields the same client
// trace regardless of host parallelism or protocol under test.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a value in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// openFloat returns a value in (0,1), safe as a log/division argument.
func (r *rng) openFloat() float64 {
	for {
		if v := r.float(); v > 0 {
			return v
		}
	}
}

// intn returns a value in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// scramble is a 64-bit finalizer used to spread Zipf ranks (and shard
// assignments) uniformly over the key space, so the popular keys do not
// cluster on one shard or page.
func scramble(v uint64) uint64 {
	v = (v ^ (v >> 33)) * 0xff51afd7ed558ccd
	v = (v ^ (v >> 33)) * 0xc4ceb9fe1a85ec53
	return v ^ (v >> 33)
}

// exp draws an exponential interarrival gap for the given rate (events
// per simulated second), in simulated time.
func (r *rng) exp(rate float64) sim.Time {
	gap := -math.Log(r.openFloat()) / rate * float64(sim.Second)
	t := sim.Time(gap)
	if t < 1 {
		t = 1 // the clock is integral; coincident arrivals stay ordered
	}
	return t
}

// Arrival process names accepted by Config.Arrival.
const (
	// ArrivalPoisson is a homogeneous Poisson process: independent
	// exponential interarrival gaps at the configured rate.
	ArrivalPoisson = "poisson"
	// ArrivalBursty is a two-state Markov-modulated Poisson process
	// (MMPP-2): the client population alternates between a calm state
	// and a burst state whose rate is Config.BurstFactor times the
	// calm-adjusted base, with exponentially distributed dwell times.
	// The state mix is chosen so the long-run mean rate equals the
	// configured offered load.
	ArrivalBursty = "bursty"
)

// burstHighFraction is the long-run fraction of time an MMPP-2 client
// population spends in the burst state.
const burstHighFraction = 0.2

// arrivals generates one node's arrival times on [0, window) at the
// given mean rate, using the named process. The returned times are
// strictly increasing.
func arrivals(r *rng, process string, rate float64, window sim.Time, burstFactor float64) []sim.Time {
	var out []sim.Time
	switch process {
	case ArrivalBursty:
		// Rates per state, preserving the requested mean:
		//   f*high + (1-f)*low = rate,  high = burstFactor*rate
		// => low = rate*(1-f*burstFactor)/(1-f), valid while
		// burstFactor < 1/f.
		f := burstHighFraction
		high := burstFactor * rate
		low := rate * (1 - f*burstFactor) / (1 - f)
		// Mean dwell: an eighth of the window in the burst state, scaled
		// so the calm state's longer dwell matches the f : 1-f time mix.
		dwellHigh := window / 8
		if dwellHigh < 1 {
			dwellHigh = 1
		}
		dwellLow := sim.Time(float64(dwellHigh) * (1 - f) / f)
		inBurst := false
		var t sim.Time
		stateEnd := sim.Time(float64(dwellLow) * -math.Log(r.openFloat()))
		for t < window {
			cur := low
			if inBurst {
				cur = high
			}
			next := t + r.exp(cur)
			if next >= stateEnd {
				// Switch states at the dwell boundary; the partial gap is
				// discarded, which thins the boundary slightly — harmless
				// for a workload generator.
				t = stateEnd
				inBurst = !inBurst
				dwell := dwellLow
				if inBurst {
					dwell = dwellHigh
				}
				stateEnd = t + sim.Time(float64(dwell)*-math.Log(r.openFloat()))
				continue
			}
			t = next
			if t < window {
				out = append(out, t)
			}
		}
	default: // ArrivalPoisson
		t := r.exp(rate)
		for t < window {
			out = append(out, t)
			t += r.exp(rate)
		}
	}
	return out
}

// zipfGen draws key ranks with Zipfian popularity skew (rank 0 hottest),
// using the standard Gray et al. rejection-free inversion also used by
// YCSB. theta = 0 degenerates to uniform.
type zipfGen struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64
}

func newZipf(n int, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	if theta == 0 {
		return z
	}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.half = 1 + math.Pow(0.5, theta)
	return z
}

// rank draws the next popularity rank in [0, n).
func (z *zipfGen) rank(r *rng) int {
	if z.theta == 0 {
		return r.intn(z.n)
	}
	u := r.float()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
