package serve

import (
	"fmt"

	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/sim"
)

// Fast-path ablation modes, cumulative: each mode keeps everything the
// previous one enabled and adds one optimization, so a sweep over the
// ladder isolates each layer's contribution.
const (
	// ModeOff is the PR-6 baseline: one lock per shard, every op locked.
	ModeOff = "off"
	// ModeLocks adds striped per-key locks (KeyLocks = 8).
	ModeLocks = "locks"
	// ModeSeqlock adds seqlock-validated lock-free gets and scans.
	ModeSeqlock = "seqlock"
	// ModeBatch adds same-lock request batching (200µs window).
	ModeBatch = "batch"
	// ModeAll adds cross-shard prefetch pipelining.
	ModeAll = "all"
)

// Modes lists the ablation ladder in cumulative order.
var Modes = []string{ModeOff, ModeLocks, ModeSeqlock, ModeBatch, ModeAll}

// ApplyFastpath overwrites cfg's fast-path knobs according to the named
// ablation mode. Unknown modes return an error.
func ApplyFastpath(cfg *Config, mode string) error {
	cfg.KeyLocks, cfg.Seqlock, cfg.BatchWindow, cfg.Pipeline = 0, false, 0, false
	switch mode {
	case ModeAll:
		cfg.Pipeline = true
		fallthrough
	case ModeBatch:
		cfg.BatchWindow = 200 * sim.Microsecond
		fallthrough
	case ModeSeqlock:
		cfg.Seqlock = true
		fallthrough
	case ModeLocks:
		cfg.KeyLocks = 8
	case ModeOff, "":
	default:
		return fmt.Errorf("serve: unknown fast-path mode %q (have %v)", mode, Modes)
	}
	return nil
}

// lockOf maps a key to its lock id. Without striping every key of a
// shard shares lock id == shard. With striping the key hashes to one of
// KeyLocks stripes and the lock id is shard + Shards*stripe — congruent
// to the shard mod P whenever Shards is a multiple of P, so the stripe
// manager still lives on the shard's home node.
func (kv *KV) lockOf(key int32) int {
	sh := int(kv.keyShard[key])
	if kv.cfg.KeyLocks <= 1 {
		return sh
	}
	stripe := int(scramble(uint64(key)+0x57a1de) % uint64(kv.cfg.KeyLocks))
	return sh + kv.shards*stripe
}

// lockFree reports whether op is eligible for the seqlock-validated
// lock-free path. Puts always lock: the lock is what makes the
// read-modify-write atomic and what cycles the version word.
func (kv *KV) lockFree(op Op) bool {
	return kv.cfg.Seqlock && op != OpPut
}

// serveOne serves a single request: lock-free when eligible and the
// validation succeeds, otherwise under the key's lock. The locked
// fallback is also the correctness backstop for torn reads — acquiring
// the lock chases the writer, which forces the writer's open interval
// closed (its diffs flush to the home), so the re-read is guaranteed an
// even version.
func (kv *KV) serveOne(c *core.Ctx, id int, r *Req, scratch []float64) {
	if kv.lockFree(r.Op) && kv.serveLockFree(c, id, r, scratch) {
		return
	}
	l := kv.lockOf(r.Key)
	c.Lock(l)
	kv.applyLocked(c, id, r, scratch)
	c.Unlock(l)
}

// serveLockFree attempts the seqlock read path. It returns false when
// the protocol has no authoritative copy to validate against (homeless
// LRC family) or the version stayed odd through every retry; the caller
// then takes the locked path and counts a fallback.
func (kv *KV) serveLockFree(c *core.Ctx, id int, r *Req, scratch []float64) bool {
	var ok bool
	if r.Op == OpGet {
		ok = kv.seqGet(c, id, r.Key)
	} else {
		ok = kv.seqScan(c, id, r, scratch)
	}
	if !ok {
		kv.seqFallbacks[id]++
		return false
	}
	kv.seqReads[id]++
	if r.Op == OpGet {
		c.Compute(kv.cfg.ServiceNs)
		kv.ops[id][0]++
	}
	return true
}

// seqGet reads one key lock-free: revalidate the page against its home,
// read the version word, and accept the value only if the version is
// even (no writer mid-critical-section when the page copy was taken).
// The version and value share a page, so the pair is a single atomic
// snapshot — a torn read can only manifest as an odd version.
func (kv *KV) seqGet(c *core.Ctx, id int, key int32) bool {
	a := kv.addrOf(key)
	for try := 0; ; try++ {
		if !c.FreshRead(a) {
			return false
		}
		if c.LoadI(a+1)&1 == 0 {
			_ = c.Load(a)
			return true
		}
		if try >= kv.cfg.SeqlockRetries {
			return false
		}
		kv.seqRetries[id]++
		c.Wait(kv.cfg.SeqlockBackoff)
	}
}

// seqScan reads a run of slots lock-free, validating every slot's
// version. Only the first page is explicitly revalidated; a scan
// crossing into further pages reads whatever consistent copies the
// protocol supplies (each page copy is still atomic, so per-slot
// version checks remain sound — the scan is just not a single store
// snapshot, which the locked path does not promise across locks
// either). On success the scanned count is charged like the locked
// path.
func (kv *KV) seqScan(c *core.Ctx, id int, r *Req, scratch []float64) bool {
	sh := int(kv.keyShard[r.Key])
	start := int(kv.keySlot[r.Key])
	n := kv.cfg.ScanLen
	if max := int(kv.shardLen[sh]) - start; n > max {
		n = max
	}
	base := kv.shardBase[sh] + mem.Addr(start*kv.slotWords)
	for try := 0; ; try++ {
		if n > 0 {
			if !c.FreshRead(base) {
				return false
			}
		}
		torn := false
		for j := 0; j < n; j++ {
			v := c.Load(base + mem.Addr(2*j))
			if c.LoadI(base+mem.Addr(2*j)+1)&1 != 0 {
				torn = true
				break
			}
			scratch[j] = v
		}
		if !torn {
			c.Compute(kv.cfg.ServiceNs + sim.Time(n)*kv.cfg.ServiceNs/8)
			kv.ops[id][2]++
			return true
		}
		if try >= kv.cfg.SeqlockRetries {
			return false
		}
		kv.seqRetries[id]++
		c.Wait(kv.cfg.SeqlockBackoff)
	}
}

// applyLocked executes one request inside an already-held critical
// section. With the seqlock layout a put cycles the slot's version word
// odd before the mutation and even after it, publishing the
// inconsistent window to any lock-free reader whose page fetch lands
// mid-interval (the writer's diffs flush early when a lock acquire
// chases past it).
func (kv *KV) applyLocked(c *core.Ctx, id int, r *Req, scratch []float64) {
	switch r.Op {
	case OpGet:
		_ = c.Load(kv.addrOf(r.Key))
		c.Compute(kv.cfg.ServiceNs)
		kv.ops[id][0]++
	case OpPut:
		a := kv.addrOf(r.Key)
		if kv.slotWords == 2 {
			v := c.LoadI(a + 1)
			c.StoreI(a+1, v+1) // odd: value is in flux
			c.Store(a, c.Load(a)+float64(r.Delta))
			c.Compute(kv.cfg.ServiceNs)
			c.StoreI(a+1, v+2) // even: consistent again
		} else {
			c.Store(a, c.Load(a)+float64(r.Delta))
			c.Compute(kv.cfg.ServiceNs)
		}
		kv.ops[id][1]++
	case OpScan:
		sh := int(kv.keyShard[r.Key])
		start := int(kv.keySlot[r.Key])
		n := kv.cfg.ScanLen
		if max := int(kv.shardLen[sh]) - start; n > max {
			n = max
		}
		if n > 0 {
			base := kv.shardBase[sh] + mem.Addr(start*kv.slotWords)
			if kv.slotWords == 2 {
				for j := 0; j < n; j++ {
					scratch[j] = c.Load(base + mem.Addr(2*j))
				}
			} else {
				c.ReadRange(base, scratch[:n])
			}
		}
		c.Compute(kv.cfg.ServiceNs + sim.Time(n)*kv.cfg.ServiceNs/8)
		kv.ops[id][2]++
	}
}

// batchWorker is the open-loop server with request batching: when the
// head-of-queue request needs a lock, the server holds BatchWindow open
// (unless the backlog already fills MaxBatch), then serves every queued
// request for the same lock in one acquire -> apply-N -> release
// critical section. FIFO order is preserved for the head; coalesced
// followers complete early, which is exactly the point. Lock-free
// eligible requests take no lock, so they are served singly the moment
// they reach the head.
func (kv *KV) batchWorker(c *core.Ctx, id int) {
	h := kv.hists[id]
	scratch := make([]float64, kv.cfg.ScanLen)
	trace := kv.traces[id]
	n := len(trace)
	done := make([]bool, n)
	// byLock holds arrived-but-unserved batchable requests, per lock, in
	// arrival order. admit is the trace cursor: everything before it has
	// been admitted (or is lock-free and served at the head).
	byLock := make(map[int][]int32)
	admit := 0
	admitUpTo := func(t sim.Time) {
		for admit < n && trace[admit].At <= t {
			if !kv.lockFree(trace[admit].Op) {
				l := kv.lockOf(trace[admit].Key)
				byLock[l] = append(byLock[l], int32(admit))
			}
			admit++
		}
	}
	next := 0 // head of the FIFO: oldest unserved request
	for served := 0; served < n; {
		for done[next] {
			next++
		}
		r := &trace[next]
		c.WaitUntil(r.At)
		if kv.lockFree(r.Op) {
			start := c.Now()
			kv.serveOne(c, id, r, scratch)
			h.Record(c.Now() - r.At)
			kv.busy[id] += c.Now() - start
			kv.lastDone[id] = c.Now()
			done[next] = true
			served++
			continue
		}
		l := kv.lockOf(r.Key)
		t0 := c.Now()
		admitUpTo(t0)
		if len(byLock[l]) < kv.cfg.MaxBatch {
			// The server cannot know whether more same-lock requests are
			// about to arrive, so it pays the full window (timer
			// semantics); only an already-full backlog skips the wait.
			c.WaitUntil(t0 + kv.cfg.BatchWindow)
			admitUpTo(c.Now())
		}
		q := byLock[l]
		take := len(q)
		if take > kv.cfg.MaxBatch {
			take = kv.cfg.MaxBatch
		}
		batch := q[:take]
		byLock[l] = q[take:]
		if kv.cfg.Pipeline {
			// Prefetch the oldest waiting request on a different shard, so
			// its page fetch overlaps this critical section.
			sh := kv.keyShard[r.Key]
			for k := next; k < admit; k++ {
				if !done[k] && !kv.lockFree(trace[k].Op) && kv.keyShard[trace[k].Key] != sh {
					c.Prefetch(kv.addrOf(trace[k].Key))
					break
				}
			}
		}
		svc0 := c.Now()
		kv.batches[id]++
		kv.batchedOps[id] += int64(take)
		if int64(take) > kv.maxBatch[id] {
			kv.maxBatch[id] = int64(take)
		}
		c.Lock(l)
		for _, idx := range batch {
			br := &trace[idx]
			kv.applyLocked(c, id, br, scratch)
			h.Record(c.Now() - br.At)
			done[idx] = true
			served++
		}
		c.Unlock(l)
		kv.busy[id] += c.Now() - svc0
		kv.lastDone[id] = c.Now()
	}
}
