package perf

import "testing"

func BenchmarkEventThroughput(b *testing.B) { EventThroughput(b) }
func BenchmarkContextSwitch(b *testing.B)   { ContextSwitch(b) }
func BenchmarkSleep(b *testing.B)           { Sleep(b) }
func BenchmarkComputeDiff(b *testing.B)     { ComputeDiff(b) }
func BenchmarkApplyDiff(b *testing.B)       { ApplyDiff(b) }
func BenchmarkSORSmall(b *testing.B)        { SORSmall(b) }
func BenchmarkLUSmall(b *testing.B)         { LUSmall(b) }
func BenchmarkServeSmall(b *testing.B)      { ServeSmall(b) }
func BenchmarkScaleSmall(b *testing.B)      { ScaleSmall(b) }
