// Package perf holds the performance regression benchmarks for the
// simulator's hot paths: event scheduling throughput, process context
// switches, diff compute/apply, and small end-to-end application runs.
//
// The benchmark bodies are exported functions taking *testing.B so they
// can run both under `go test -bench` (see perf_test.go) and
// programmatically from cmd/svmperf, which records a BENCH_sim.json
// trajectory entry per invocation.
package perf

import (
	"testing"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/mem"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

// EventThroughput measures the kernel's raw event dispatch rate with a
// self-rescheduling callback: one push + one pop per iteration.
func EventThroughput(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// ContextSwitch measures a full proc-to-proc handshake: Unpark, yield to
// the scheduler, resume the peer — two goroutine switches per iteration.
func ContextSwitch(b *testing.B) {
	k := sim.NewKernel()
	var pa, pb *sim.Proc
	pa = k.Spawn("a", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			pb.Unpark()
			p.Park("ping")
		}
	})
	pb = k.Spawn("b", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Park("pong")
			pa.Unpark()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// Sleep measures Proc.Sleep: one timer event plus one yield per iteration.
func Sleep(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("sleeper", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// diffPage builds a page/twin pair with nMod modified words scattered in
// small runs, the shape protocol diffs typically take.
func diffPage(words, nMod int) (twin, cur []float64) {
	twin = make([]float64, words)
	cur = make([]float64, words)
	for i := range twin {
		twin[i] = float64(i)
		cur[i] = float64(i)
	}
	step := words / nMod
	if step == 0 {
		step = 1
	}
	for i := 0; i < words; i += step {
		cur[i] = -float64(i) - 1
	}
	return twin, cur
}

// ComputeDiff measures pooled diff creation on an 8KB page with ~5% of
// its words modified, releasing each diff so the backing recycles.
func ComputeDiff(b *testing.B) {
	const words = 1024 // 8KB page
	twin, cur := diffPage(words, words/20)
	pool := mem.NewPool(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := mem.ComputeDiffPooled(pool, 0, twin, cur)
		d.Release(pool)
	}
}

// ApplyDiff measures applying a precomputed diff to a page copy.
func ApplyDiff(b *testing.B) {
	const words = 1024
	twin, cur := diffPage(words, words/20)
	pool := mem.NewPool(words)
	d := mem.ComputeDiffPooled(pool, 0, twin, cur)
	dst := make([]float64, words)
	copy(dst, twin)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply(dst)
	}
}

// endToEnd runs one full test-size simulation per iteration.
func endToEnd(b *testing.B, app string, proto core.Protocol, procs int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := apps.New(app, apps.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{Protocol: proto, NumProcs: procs, PageBytes: 8192, GCThreshold: 8 << 20}
		if _, err := core.Run(opts, a, false); err != nil {
			b.Fatal(err)
		}
	}
}

// SORSmall is an end-to-end HLRC run of the test-size SOR kernel.
func SORSmall(b *testing.B) { endToEnd(b, "sor", core.ProtoHLRC, 8) }

// LUSmall is an end-to-end LRC run of the test-size LU kernel.
func LUSmall(b *testing.B) { endToEnd(b, "lu", core.ProtoLRC, 8) }

// ScaleSmall is an end-to-end 256-node HLRC SOR run: it exercises the
// large-machine paths — tree barrier, sparse vector clocks, lazily
// materialized per-node state — so the trajectory tracks how expensive
// big machines are to simulate (cells/sec at scale).
func ScaleSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := &apps.SOR{H: 256, W: 128, Iters: 2, ElemNs: 9700}
		opts := core.Options{
			Protocol:    core.ProtoHLRC,
			PageBytes:   4096,
			GCThreshold: 8 << 20,
			Machine:     core.Machine{Nodes: 256},
		}
		if _, err := core.Run(opts, a, false); err != nil {
			b.Fatal(err)
		}
	}
}

// ServeSmall is an end-to-end OHLRC run of a small open-loop serving
// cell: trace generation, the full request loop with latency recording,
// and store validation per iteration.
func ServeSmall(b *testing.B) {
	cfg := serve.Config{
		Keys:        256,
		OfferedLoad: 3000,
		Window:      20 * sim.Millisecond,
		Seed:        7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kv, err := serve.New(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{Protocol: core.ProtoOHLRC, NumProcs: 4, PageBytes: 8192, GCThreshold: 8 << 20}
		if _, err := serve.Run(opts, kv); err != nil {
			b.Fatal(err)
		}
	}
}
