package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit(Event{Kind: ReadMiss})
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log not inert")
	}
	if got := l.ByKind(ReadMiss); got != nil {
		t.Fatal("nil log filter not empty")
	}
}

func TestLimit(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Emit(Event{T: 0, Kind: ReadMiss, Page: i})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Events()[2].Page != 2 {
		t.Fatal("limit dropped the wrong events")
	}
}

func TestFilters(t *testing.T) {
	l := NewLog(0)
	l.Emit(Event{Node: 0, Kind: ReadMiss, Page: 7, Peer: -1})
	l.Emit(Event{Node: 1, Kind: DiffApply, Page: 7, Peer: 0, Arg: 12})
	l.Emit(Event{Node: 1, Kind: LockAcquire, Page: -1, Peer: -1, Arg: 3})
	if len(l.ByKind(ReadMiss)) != 1 {
		t.Fatal("ByKind wrong")
	}
	if len(l.ByPage(7)) != 2 {
		t.Fatal("ByPage wrong")
	}
	if len(l.ByNode(1)) != 2 {
		t.Fatal("ByNode wrong")
	}
	c := l.Counts()
	if c[ReadMiss] != 1 || c[DiffApply] != 1 || c[LockAcquire] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted junk")
	}
}

func TestWriteText(t *testing.T) {
	l := NewLog(0)
	l.Emit(Event{T: 1500000, Node: 2, Kind: LockAcquire, Page: -1, Peer: -1, Arg: 9})
	l.Emit(Event{T: 2500000, Node: 3, Kind: DiffFlush, Page: 4, Peer: 1, Arg: 128})
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lock-acquire", "lock=9", "diff-flush", "page=4", "peer=1", "bytes=128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
