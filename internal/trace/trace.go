// Package trace captures protocol event streams from SVM runs: page
// faults, fetches, diff traffic, write notices, synchronization, and
// garbage collection, each stamped with simulated time and node. Traces
// are the debugging view the statistics aggregate away: they show *which*
// page ping-pongs, *which* lock serializes, and in what order the
// protocol moved data.
package trace

import (
	"fmt"
	"io"

	"gosvm/internal/sim"
)

// Kind identifies a protocol event type.
type Kind uint8

const (
	// ReadMiss: a read access faulted on an invalid page.
	ReadMiss Kind = iota
	// WriteFault: a write access faulted for write detection (twin).
	WriteFault
	// PageFetch: a full page copy arrived; Peer is the supplier.
	PageFetch
	// DiffCreate: a diff was computed; Arg is its wire size in bytes.
	DiffCreate
	// DiffApply: a diff was applied to a local copy; Arg is word count.
	DiffApply
	// DiffFlush: a diff was sent to a home; Peer is the home.
	DiffFlush
	// Invalidate: a write notice invalidated the local copy; Peer is the
	// writer.
	Invalidate
	// LockAcquire: a remote lock acquire began; Arg is the lock id.
	LockAcquire
	// LockGrant: the lock arrived; Arg is the lock id.
	LockGrant
	// BarrierEnter / BarrierExit bracket barrier episodes; Arg is the id.
	BarrierEnter
	BarrierExit
	// GCStart / GCEnd bracket homeless-protocol garbage collection.
	GCStart
	GCEnd

	numKinds
)

var kindNames = [numKinds]string{
	"read-miss", "write-fault", "page-fetch", "diff-create", "diff-apply",
	"diff-flush", "invalidate", "lock-acquire", "lock-grant",
	"barrier-enter", "barrier-exit", "gc-start", "gc-end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind returns the Kind named s.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one protocol action.
type Event struct {
	T    sim.Time
	Node int
	Kind Kind
	Page int   // -1 when not page-related
	Peer int   // -1 when not peer-related
	Arg  int64 // kind-specific payload (lock id, bytes, words, barrier id)
}

func (e Event) String() string {
	s := fmt.Sprintf("%12.3fms n%-3d %-13s", e.T.Micros()/1e3, e.Node, e.Kind)
	if e.Page >= 0 {
		s += fmt.Sprintf(" page=%-5d", e.Page)
	}
	if e.Peer >= 0 {
		s += fmt.Sprintf(" peer=%-3d", e.Peer)
	}
	switch e.Kind {
	case LockAcquire, LockGrant:
		s += fmt.Sprintf(" lock=%d", e.Arg)
	case BarrierEnter, BarrierExit:
		s += fmt.Sprintf(" barrier=%d", e.Arg)
	case DiffCreate, DiffFlush:
		s += fmt.Sprintf(" bytes=%d", e.Arg)
	case DiffApply:
		s += fmt.Sprintf(" words=%d", e.Arg)
	}
	return s
}

// Log accumulates events. A nil *Log is a valid no-op sink, so emission
// sites need no guards beyond the method call.
type Log struct {
	events []Event
	limit  int
}

// NewLog returns a log retaining at most limit events (0 = unlimited).
func NewLog(limit int) *Log { return &Log{limit: limit} }

// Emit appends an event. Safe on a nil receiver.
func (l *Log) Emit(e Event) {
	if l == nil {
		return
	}
	if l.limit > 0 && len(l.events) >= l.limit {
		return
	}
	l.events = append(l.events, e)
}

// Events returns the captured events in emission (time) order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len reports the number of captured events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns the events accepted by keep.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the events of one kind.
func (l *Log) ByKind(k Kind) []Event {
	return l.Filter(func(e Event) bool { return e.Kind == k })
}

// ByPage returns the events touching one page.
func (l *Log) ByPage(page int) []Event {
	return l.Filter(func(e Event) bool { return e.Page == page })
}

// ByNode returns the events of one node.
func (l *Log) ByNode(node int) []Event {
	return l.Filter(func(e Event) bool { return e.Node == node })
}

// WriteText dumps the log one event per line.
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Counts summarizes events per kind.
func (l *Log) Counts() map[Kind]int {
	m := map[Kind]int{}
	for _, e := range l.Events() {
		m[e.Kind]++
	}
	return m
}
