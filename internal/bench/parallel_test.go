package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"gosvm/internal/apps"
	"gosvm/internal/core"
)

// parallelRunner returns a runner on the fast test grid.
func parallelRunner(parallel int) *Runner {
	r := NewRunner(apps.SizeTest)
	r.Procs = []int{2, 4}
	r.Parallel = parallel
	return r
}

// TestParallelDeterminism renders the Table-2 grid sequentially and with 8
// workers and requires byte-identical tables and byte-identical per-cell
// JSON statistics: parallel execution must be invisible in the output.
func TestParallelDeterminism(t *testing.T) {
	r1 := parallelRunner(1)
	r8 := parallelRunner(8)

	var t1, t8 bytes.Buffer
	r1.Table2(&t1)
	r8.Table2(&t8)
	if t1.String() != t8.String() {
		t.Errorf("Table2 differs between -parallel 1 and -parallel 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", t1.String(), t8.String())
	}

	for _, app := range AppNames() {
		for _, procs := range r1.Procs {
			for _, proto := range core.Protocols {
				var j1, j8 bytes.Buffer
				if err := r1.Run(app, proto, procs).Stats.WriteJSON(&j1); err != nil {
					t.Fatal(err)
				}
				if err := r8.Run(app, proto, procs).Stats.WriteJSON(&j8); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(j1.Bytes(), j8.Bytes()) {
					t.Errorf("%s/%s/p%d: per-cell JSON differs between -parallel 1 and -parallel 8", app, proto, procs)
				}
			}
		}
	}
}

// TestConcurrentRun hammers the memo cache from many goroutines: every
// caller of the same cell must get the same *Result (one simulation per
// cell), with no race (run under -race in CI).
func TestConcurrentRun(t *testing.T) {
	r := parallelRunner(4)
	cells := []cell{
		{"sor", core.ProtoHLRC, 2},
		{"sor", core.ProtoHLRC, 4},
		{"lu", core.ProtoLRC, 2},
	}
	const callers = 8
	results := make([][]*core.Result, len(cells))
	for i := range results {
		results[i] = make([]*core.Result, callers)
	}
	var wg sync.WaitGroup
	for ci, c := range cells {
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(ci, g int, c cell) {
				defer wg.Done()
				results[ci][g] = r.Run(c.app, c.proto, c.procs)
			}(ci, g, c)
		}
	}
	wg.Wait()
	for ci, rs := range results {
		for g := 1; g < callers; g++ {
			if rs[g] != rs[0] {
				t.Errorf("cell %d: caller %d got a different *Result than caller 0 — cell simulated more than once", ci, g)
			}
		}
	}
}

// TestForEachPanic checks that a worker panic is re-raised on the caller
// after all workers finish, matching sequential error behavior.
func TestForEachPanic(t *testing.T) {
	r := parallelRunner(4)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("forEach swallowed the worker panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", v)
		}
	}()
	r.forEach(6, func(i int) {
		if i == 3 {
			panic("boom 3")
		}
	})
}

// TestFaultSweepDeterminism repeats the determinism check for the fault
// sweep, whose cells are uncached and share one fault plan.
func TestFaultSweepDeterminism(t *testing.T) {
	var s1, s8 bytes.Buffer
	if err := parallelRunner(1).FaultSweep(&s1, []string{"lossy"}, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := parallelRunner(8).FaultSweep(&s8, []string{"lossy"}, 1, ""); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s8.String() {
		t.Errorf("fault sweep differs between -parallel 1 and -parallel 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", s1.String(), s8.String())
	}
}
