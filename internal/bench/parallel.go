package bench

import (
	"runtime"
	"sync"

	"gosvm/internal/core"
)

// workers returns the effective host-parallelism cap.
func (r *Runner) workers() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// gate returns the semaphore bounding concurrent simulations. Only the
// leaf execution sites (Run's miss path, runWith, runFaulted) acquire a
// slot, never code that waits on other cells, so fan-out helpers compose
// without hold-and-wait deadlocks.
func (r *Runner) gate() chan struct{} {
	r.gateOnce.Do(func() { r.gateCh = make(chan struct{}, r.workers()) })
	return r.gateCh
}

func (r *Runner) acquire() { r.gate() <- struct{}{} }
func (r *Runner) release() { <-r.gate() }

// forEach runs fn(i) for every i in [0, n), fanning the calls out as
// goroutines bounded by the simulation gate. A panic in any call is
// re-raised on the caller (first one wins) after all calls finish, so
// sequential error behavior is preserved.
func (r *Runner) forEach(n int, fn func(int)) {
	if n <= 1 || r.workers() <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicOnce.Do(func() { panicked = v })
				}
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// inParallel runs the thunks through forEach.
func (r *Runner) inParallel(fns ...func()) {
	r.forEach(len(fns), func(i int) { fns[i]() })
}

// cell identifies one memoized grid run.
type cell struct {
	app   string
	proto core.Protocol
	procs int
}

// warm executes the given cells concurrently (memoized, singleflight) so
// subsequent rendering is pure cache reads in fixed grid order.
func (r *Runner) warm(cells []cell) {
	r.forEach(len(cells), func(i int) {
		c := cells[i]
		r.Run(c.app, c.proto, c.procs)
	})
}
