package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// BreakdownRow is the average per-node execution time breakdown of one
// configuration — one stacked bar of the paper's Figure 3.
type BreakdownRow struct {
	App   string
	Proto core.Protocol
	Procs int
	// Seconds per category, averaged over nodes.
	Compute, Data, GC, Lock, Barrier, Protocol float64
	Total                                      float64
}

func breakdownOf(res *core.Result, app string, proto core.Protocol, procs int) BreakdownRow {
	avg := res.Stats.AvgNode()
	s := func(c stats.Category) float64 { return avg.Time[c].Micros() / 1e6 }
	row := BreakdownRow{
		App: app, Proto: proto, Procs: procs,
		Compute:  s(stats.CatCompute),
		Data:     s(stats.CatData),
		GC:       s(stats.CatGC),
		Lock:     s(stats.CatLock),
		Barrier:  s(stats.CatBarrier),
		Protocol: s(stats.CatProtocol),
	}
	row.Total = row.Compute + row.Data + row.GC + row.Lock + row.Barrier + row.Protocol
	return row
}

// Fig3Data computes the time breakdowns for every app and protocol at the
// smallest and largest machine size, as in the paper's Figure 3.
func (r *Runner) Fig3Data() []BreakdownRow {
	sizes := []int{r.Procs[0], r.Procs[len(r.Procs)-1]}
	var cells []cell
	for _, app := range AppNames() {
		for _, p := range sizes {
			for _, proto := range core.Protocols {
				cells = append(cells, cell{app, proto, p})
			}
		}
	}
	r.warm(cells)
	var rows []BreakdownRow
	for _, app := range AppNames() {
		for _, p := range sizes {
			for _, proto := range core.Protocols {
				rows = append(rows, breakdownOf(r.Run(app, proto, p), app, proto, p))
			}
		}
	}
	return rows
}

// Fig3 prints the execution time breakdowns.
func (r *Runner) Fig3(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: average execution time breakdowns per node (seconds)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "App\tNodes\tProtocol\tCompute\tData\tGC\tLock\tBarrier\tProtocol ovh\tTotal")
	for _, row := range r.Fig3Data() {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			row.App, row.Procs, row.Proto, row.Compute, row.Data, row.GC,
			row.Lock, row.Barrier, row.Protocol, row.Total)
	}
	tw.Flush()
}

// Fig4Row is one processor's time breakdown between two barriers.
type Fig4Row struct {
	Proto core.Protocol
	Procs int
	Node  int
	// Seconds per category within the phase.
	Compute, Data, Lock, Protocol float64
}

// Fig4Data reproduces the paper's Figure 4: per-processor breakdowns for
// Water-Nsquared between two consecutive barriers under LRC and HLRC on 8
// and 32 nodes. The paper instruments barriers 9-10, a force-computation
// phase; we select the inter-barrier phase with the most lock and data
// activity, which is the same phase of the computation.
func (r *Runner) Fig4Data() []Fig4Row {
	// The four phase-captured runs are uncached and independent; compute
	// them concurrently, then assemble rows in fixed configuration order.
	type cfg struct {
		procs int
		proto core.Protocol
	}
	var cfgs []cfg
	for _, procs := range []int{8, 32} {
		for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
			cfgs = append(cfgs, cfg{procs, proto})
		}
	}
	results := make([]*core.Result, len(cfgs))
	r.forEach(len(cfgs), func(i int) {
		a, err := apps.New("water-nsq", r.Size)
		if err != nil {
			panic(err)
		}
		r.acquire()
		defer r.release()
		res, err := core.Run(core.Options{
			Protocol:    cfgs[i].proto,
			NumProcs:    cfgs[i].procs,
			PageBytes:   r.PageBytes,
			GCThreshold: r.GCThreshold,
		}, a, true)
		if err != nil {
			panic(err)
		}
		results[i] = res
	})
	var rows []Fig4Row
	for i, c := range cfgs {
		procs, proto, res := c.procs, c.proto, results[i]
		{
			var phase *stats.Phase
			var best sim.Time
			for i := range res.Phases {
				var activity sim.Time
				for _, nd := range res.Phases[i].PerNode {
					activity += nd.Time[stats.CatLock] + nd.Time[stats.CatData]
				}
				if phase == nil || activity > best {
					phase = &res.Phases[i]
					best = activity
				}
			}
			if phase == nil {
				continue
			}
			for n, nd := range phase.PerNode {
				s := func(c stats.Category) float64 { return nd.Time[c].Micros() / 1e6 }
				rows = append(rows, Fig4Row{
					Proto: proto, Procs: procs, Node: n,
					Compute:  s(stats.CatCompute),
					Data:     s(stats.CatData),
					Lock:     s(stats.CatLock),
					Protocol: s(stats.CatProtocol),
				})
			}
		}
	}
	return rows
}

// Fig4 prints the per-processor inter-barrier breakdowns.
func (r *Runner) Fig4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: Water-Nsquared per-processor breakdowns between barriers 9 and 10 (seconds)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Protocol\tNodes\tProc\tCompute\tData\tLock\tProtocol ovh")
	for _, row := range r.Fig4Data() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
			row.Proto, row.Procs, row.Node, row.Compute, row.Data, row.Lock, row.Protocol)
	}
	tw.Flush()
}

// SORZeroData runs the §4.8 experiment: SOR with a zero-initialized
// interior, the case most favorable to the homeless protocol. Returns
// LRC and HLRC execution times and the HLRC advantage.
func (r *Runner) SORZeroData(procs int) (lrc, hlrc sim.Time, advantage float64) {
	l := r.Run("sor-zero", core.ProtoLRC, procs).Stats.Elapsed
	h := r.Run("sor-zero", core.ProtoHLRC, procs).Stats.Elapsed
	return l, h, float64(l)/float64(h) - 1
}

// SORZero prints the §4.8 experiment.
func (r *Runner) SORZero(w io.Writer) {
	procs := r.Procs[len(r.Procs)-1]
	lrc, hlrc, adv := r.SORZeroData(procs)
	fmt.Fprintf(w, "§4.8: SOR with zero-initialized interior, %d nodes\n", procs)
	fmt.Fprintf(w, "LRC:  %s s\nHLRC: %s s\nHLRC is %.1f%% faster (paper: ~10%%)\n",
		seconds(lrc), seconds(hlrc), adv*100)
}
