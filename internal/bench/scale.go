package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/stats"
)

// ScaleOpts configures the machine-size scaling sweep: a fixed-size SOR
// grid (strong scaling) swept across node counts and protocols.
type ScaleOpts struct {
	// Nodes is the machine-size axis; nil means 64..1024 in powers of
	// two, clipped to machines whose every node owns >= 1 grid row.
	Nodes []int
	// Protos are the protocol rows; nil means the paper's four.
	Protos []core.Protocol
	// H, W, Iters fix the SOR grid; zero values default to a 2048x1024
	// grid for 4 iterations (the paper's grid, shortened so the 1024-node
	// cells stay minutes, not hours, of host time).
	H, W, Iters int
}

func (o *ScaleOpts) defaults() {
	if o.Protos == nil {
		o.Protos = core.Protocols
	}
	if o.H == 0 {
		o.H, o.W = 2048, 1024
	}
	if o.Iters == 0 {
		o.Iters = 4
	}
	if o.Nodes == nil {
		// Powers of two from 64 up to 1024, clipped so every node still
		// owns at least one grid row on shrunken (-size test/small) grids.
		for n := 64; n <= 1024 && n <= o.H; n *= 2 {
			o.Nodes = append(o.Nodes, n)
		}
	}
}

// GridFor shrinks the sweep's fixed SOR grid to a problem size, so CI
// and quick checks can run the sweep end-to-end in seconds; SizePaper
// (and unknown sizes) keep the default paper grid. Node counts must
// still leave every node at least one grid row.
func (o *ScaleOpts) GridFor(size apps.Size) {
	switch size {
	case apps.SizeTest:
		o.H, o.W, o.Iters = 64, 32, 2
	case apps.SizeSmall:
		o.H, o.W, o.Iters = 512, 256, 4
	}
}

// ScaleCell is one (protocol, machine size) point of the scaling sweep.
type ScaleCell struct {
	Protocol string  `json:"protocol"`
	Nodes    int     `json:"nodes"`
	Seconds  float64 `json:"sim_seconds"`
	Speedup  float64 `json:"speedup"`
	// Msgs is total messages sent; ProtoMB/DataMB split the traffic as
	// the paper's Table 5 does.
	Msgs    int64   `json:"msgs"`
	DataMB  float64 `json:"data_mb"`
	ProtoMB float64 `json:"proto_mb"`
	// Skew is the home hot-spot metric: the most-loaded node's count of
	// dispatcher-serviced unsolicited messages over the mean. 1.0 is a
	// perfectly balanced machine.
	Skew float64 `json:"hotspot_skew"`
	// PeakProtoMB is the per-node protocol memory high-water mark.
	PeakProtoMB float64 `json:"peak_proto_mb"`
}

// ScaleEntry is the JSON block one ScaleSweep appends to the trajectory
// file: the grid shape plus every cell.
type ScaleEntry struct {
	Kind       string      `json:"kind"` // "scale"
	H          int         `json:"h"`
	W          int         `json:"w"`
	Iters      int         `json:"iters"`
	SeqSeconds float64     `json:"seq_seconds"`
	Cells      []ScaleCell `json:"cells"`
}

// ScaleSweep charts protocol behavior against machine size: a fixed-size
// SOR grid run on 64 to 1024+ nodes under every protocol, reporting
// speedup over the sequential baseline, message traffic, home hot-spot
// skew (max/mean unsolicited messages serviced per node), and peak
// protocol memory. Cells fan out across host cores like every other
// sweep; rendering reads completed cells in fixed grid order. When
// jsonPath is non-empty the full grid is appended there as a ScaleEntry
// (see AppendJSON; BENCH_sim.json is the conventional target).
func (r *Runner) ScaleSweep(out io.Writer, o ScaleOpts, jsonPath string) error {
	o.defaults()
	for _, n := range o.Nodes {
		if n < 2 {
			return fmt.Errorf("bench: scale sweep node count %d < 2", n)
		}
		if n > o.H {
			return fmt.Errorf("bench: scale sweep needs >= 1 grid row per node (H=%d, nodes=%d)", o.H, n)
		}
	}

	newApp := func() *apps.SOR {
		return &apps.SOR{H: o.H, W: o.W, Iters: o.Iters, ElemNs: 9700}
	}
	runCell := func(proto core.Protocol, nodes int) *core.Result {
		opts := r.cellOpts(proto, nodes)
		r.acquire()
		res, err := core.Run(opts, newApp(), false)
		r.release()
		if err != nil {
			panic(fmt.Sprintf("bench: scale %s/p%d: %v", proto, nodes, err))
		}
		r.progressf("# scale %s/p%d: simulated %.2fs\n", proto, nodes, res.Stats.Elapsed.Micros()/1e6)
		return res
	}

	// The sequential baseline plus the full grid, fanned out together.
	var seq *core.Result
	grid := make([]*core.Result, len(o.Protos)*len(o.Nodes))
	r.forEach(len(grid)+1, func(i int) {
		if i == len(grid) {
			seq = runCell(core.ProtoSeq, 1)
			return
		}
		grid[i] = runCell(o.Protos[i/len(o.Nodes)], o.Nodes[i%len(o.Nodes)])
	})

	entry := ScaleEntry{
		Kind:       "scale",
		H:          o.H,
		W:          o.W,
		Iters:      o.Iters,
		SeqSeconds: seq.Stats.Elapsed.Micros() / 1e6,
	}
	for i, res := range grid {
		st := res.Stats
		entry.Cells = append(entry.Cells, ScaleCell{
			Protocol:    string(o.Protos[i/len(o.Nodes)]),
			Nodes:       o.Nodes[i%len(o.Nodes)],
			Seconds:     st.Elapsed.Micros() / 1e6,
			Speedup:     float64(seq.Stats.Elapsed) / float64(st.Elapsed),
			Msgs:        st.TotalMsgs(),
			DataMB:      float64(st.TotalBytes(stats.ClassData)) / (1 << 20),
			ProtoMB:     float64(st.TotalBytes(stats.ClassProtocol)) / (1 << 20),
			Skew:        hotSpotSkew(st),
			PeakProtoMB: float64(st.PeakProtoMem()) / (1 << 20),
		})
	}

	fmt.Fprintf(out, "Scaling sweep: SOR %dx%d, %d iterations, sequential %.1fs\n",
		o.H, o.W, o.Iters, entry.SeqSeconds)
	fmt.Fprintln(out, "skew = max/mean unsolicited messages serviced per node (home hot spots)")
	tw := tabwriter.NewWriter(out, 4, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "Protocol\tNodes\tTime(s)\tSpeedup\tMsgs\tData(MB)\tProto(MB)\tSkew\tPeakMem(MB)")
	for _, c := range entry.Cells {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			c.Protocol, c.Nodes, c.Seconds, c.Speedup, c.Msgs, c.DataMB, c.ProtoMB, c.Skew, c.PeakProtoMB)
	}
	tw.Flush()

	if jsonPath != "" {
		return AppendJSON(jsonPath, entry)
	}
	return nil
}

// hotSpotSkew returns max/mean of per-node MsgsIn, or 0 when no node
// serviced any unsolicited message.
func hotSpotSkew(r *stats.Run) float64 {
	var max, sum int64
	for _, nd := range r.Nodes {
		sum += nd.MsgsIn
		if nd.MsgsIn > max {
			max = nd.MsgsIn
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.Nodes))
	return float64(max) / mean
}
