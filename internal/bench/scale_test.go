package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gosvm/internal/apps"
	"gosvm/internal/core"
)

func smallScale() ScaleOpts {
	return ScaleOpts{
		Nodes:  []int{16, 32},
		Protos: []core.Protocol{core.ProtoLRC, core.ProtoHLRC},
		H:      64, W: 32, Iters: 2,
	}
}

func TestScaleSweepDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		r := NewRunner(apps.SizeTest)
		if err := r.ScaleSweep(&buf, smallScale(), ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("scale sweep not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"lrc", "hlrc", "16", "32", "Speedup", "Skew"} {
		if !strings.Contains(a, want) {
			t.Fatalf("output missing %q:\n%s", want, a)
		}
	}
}

func TestScaleSweepJSONAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.json")
	// A foreign entry must survive the append untouched.
	if err := os.WriteFile(path, []byte(`[{"kind":"perf","note":"keep me"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(apps.SizeTest)
	if err := r.ScaleSweep(&bytes.Buffer{}, smallScale(), path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []json.RawMessage
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("trajectory not a JSON array: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if !strings.Contains(string(entries[0]), "keep me") {
		t.Fatalf("foreign entry clobbered: %s", entries[0])
	}
	var e ScaleEntry
	if err := json.Unmarshal(entries[1], &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "scale" || e.H != 64 || len(e.Cells) != 4 {
		t.Fatalf("bad scale entry: kind=%q h=%d cells=%d", e.Kind, e.H, len(e.Cells))
	}
	for _, c := range e.Cells {
		if c.Speedup <= 0 || c.Msgs <= 0 {
			t.Fatalf("cell %s/p%d has no traffic: %+v", c.Protocol, c.Nodes, c)
		}
	}
}

func TestScaleSweepRejectsBadNodes(t *testing.T) {
	r := NewRunner(apps.SizeTest)
	o := smallScale()
	o.Nodes = []int{128} // > H rows
	if err := r.ScaleSweep(&bytes.Buffer{}, o, ""); err == nil {
		t.Fatal("accepted more nodes than grid rows")
	}
	o.Nodes = []int{1}
	if err := r.ScaleSweep(&bytes.Buffer{}, o, ""); err == nil {
		t.Fatal("accepted a 1-node machine")
	}
}
