package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gosvm/internal/core"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// warmSeq computes every sequential baseline concurrently.
func (r *Runner) warmSeq() {
	var cells []cell
	for _, app := range AppNames() {
		cells = append(cells, cell{app, core.ProtoSeq, 1})
	}
	r.warm(cells)
}

// Table1 reports problem sizes and sequential execution times.
func (r *Runner) Table1(w io.Writer) {
	r.warmSeq()
	fmt.Fprintln(w, "Table 1: benchmark applications and sequential execution times")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tSequential time (s)")
	for _, app := range AppNames() {
		seq := r.Seq(app)
		fmt.Fprintf(tw, "%s\t%s\n", app, seconds(seq.Stats.Elapsed))
	}
	tw.Flush()
}

// Table2Row is one application's speedups.
type Table2Row struct {
	App      string
	Speedups map[int]map[core.Protocol]float64 // procs -> proto -> speedup
}

// Table2Data computes the speedup table. The full grid — sequential
// baselines plus every app × protocol × machine size — is warmed across
// host cores first; row assembly is then pure cache reads.
func (r *Runner) Table2Data() []Table2Row {
	cells := []cell{}
	for _, app := range AppNames() {
		cells = append(cells, cell{app, core.ProtoSeq, 1})
		for _, p := range r.Procs {
			for _, proto := range core.Protocols {
				cells = append(cells, cell{app, proto, p})
			}
		}
	}
	r.warm(cells)
	var rows []Table2Row
	for _, app := range AppNames() {
		row := Table2Row{App: app, Speedups: map[int]map[core.Protocol]float64{}}
		for _, p := range r.Procs {
			row.Speedups[p] = map[core.Protocol]float64{}
			for _, proto := range core.Protocols {
				row.Speedups[p][proto] = r.Speedup(app, proto, p)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2 reports speedups for the four protocols at each machine size.
func (r *Runner) Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: speedups (vs. sequential) with LRC, OLRC, HLRC, OHLRC")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "\t")
	for _, p := range r.Procs {
		fmt.Fprintf(tw, "%d nodes\t\t\t\t", p)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "Application\t")
	for range r.Procs {
		fmt.Fprint(tw, "LRC\tOLRC\tHLRC\tOHLRC\t")
	}
	fmt.Fprintln(tw)
	for _, row := range r.Table2Data() {
		fmt.Fprintf(tw, "%s\t", row.App)
		for _, p := range r.Procs {
			for _, proto := range core.Protocols {
				fmt.Fprintf(tw, "%.1f\t", row.Speedups[p][proto])
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Table3 reports the basic operation cost model and the derived
// round-trip latencies quoted in §4.3.
func Table3(w io.Writer, pageBytes int) {
	Table3For(w, pageBytes, paragon.DefaultCosts())
}

// Table3For renders the Table-3 report for an arbitrary cost profile
// (e.g. paragon.ModernCosts).
func Table3For(w io.Writer, pageBytes int, c paragon.Costs) {
	fmt.Fprintln(w, "Table 3: timings for basic operations (model constants)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	us := func(t sim.Time) string { return fmt.Sprintf("%.0f", t.Micros()) }
	fmt.Fprintf(tw, "Message latency\t%s us\n", us(c.MsgLatency))
	fmt.Fprintf(tw, "Page transfer (%d B)\t%s us\n", pageBytes, us(c.Wire(pageBytes)-c.MsgLatency))
	fmt.Fprintf(tw, "Receive interrupt\t%s us\n", us(c.ReceiveInterrupt))
	fmt.Fprintf(tw, "Twin copy\t%s us\n", us(c.TwinCost(pageBytes)))
	fmt.Fprintf(tw, "Diff creation\t%s-%s us\n", us(c.DiffCreateBase), us(c.DiffCreateCost(pageBytes/8)))
	fmt.Fprintf(tw, "Diff application\t%s-%s us\n", us(c.DiffApplyBase), us(c.DiffApplyCost(pageBytes/8)))
	fmt.Fprintf(tw, "Page fault\t%s us\n", us(c.PageFault))
	fmt.Fprintf(tw, "Page invalidation\t%s us\n", us(c.PageInval))
	fmt.Fprintf(tw, "Page protection\t%s us\n", us(c.PageProtect))
	tw.Flush()
	fmt.Fprintln(w, "Derived minimum latencies (§4.3):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	hlrcMiss := c.PageFault + c.Wire(4) + c.ReceiveInterrupt + c.Wire(pageBytes)
	ohlrcMiss := c.PageFault + c.Wire(4) + c.Wire(pageBytes)
	lrcMiss := c.PageFault + c.Wire(4) + c.ReceiveInterrupt + c.Wire(8) + c.DiffApplyCost(1)
	olrcMiss := c.PageFault + c.Wire(4) + c.Wire(8) + c.DiffApplyCost(1)
	acq := 2*c.Wire(4) + 2*c.ReceiveInterrupt + c.Wire(64) + c.LockHandling
	acqCoproc := 2*c.Wire(4) + c.Wire(64) + c.LockHandling
	fmt.Fprintf(tw, "HLRC page miss\t%s us\n", us(hlrcMiss))
	fmt.Fprintf(tw, "OHLRC page miss\t%s us\n", us(ohlrcMiss))
	fmt.Fprintf(tw, "LRC page miss (1-word diff)\t%s us\n", us(lrcMiss))
	fmt.Fprintf(tw, "OLRC page miss (1-word diff)\t%s us\n", us(olrcMiss))
	fmt.Fprintf(tw, "Remote lock acquire\t%s us\n", us(acq))
	fmt.Fprintf(tw, "Remote lock acquire (co-processor)\t%s us\n", us(acqCoproc))
	tw.Flush()
}

// Table4Row is the per-node operation counts of one app/protocol/size.
type Table4Row struct {
	App    string
	Procs  int
	Proto  core.Protocol
	Counts stats.Counters
}

// Table4Data gathers LRC vs HLRC operation counts at the smallest and
// largest machine size.
func (r *Runner) Table4Data() []Table4Row {
	sizes := []int{r.Procs[0], r.Procs[len(r.Procs)-1]}
	var cells []cell
	for _, app := range AppNames() {
		for _, p := range sizes {
			for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
				cells = append(cells, cell{app, proto, p})
			}
		}
	}
	r.warm(cells)
	var rows []Table4Row
	for _, app := range AppNames() {
		for _, p := range sizes {
			for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
				rows = append(rows, Table4Row{
					App: app, Procs: p, Proto: proto,
					Counts: avgCounts(r.Run(app, proto, p)),
				})
			}
		}
	}
	return rows
}

// Table4 reports average per-node read misses, diffs, and synchronization
// operations for LRC vs HLRC.
func (r *Runner) Table4(w io.Writer) {
	fmt.Fprintln(w, "Table 4: average number of operations per node (LRC vs HLRC)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "App\tNodes\tReadMiss LRC\tReadMiss HLRC\tDiffsCreated LRC\tDiffsCreated HLRC\tDiffsApplied LRC\tDiffsApplied HLRC\tLockAcq\tBarriers")
	rows := r.Table4Data()
	for i := 0; i < len(rows); i += 2 {
		lrc, hlrc := rows[i], rows[i+1]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			lrc.App, lrc.Procs,
			lrc.Counts.ReadMisses, hlrc.Counts.ReadMisses,
			lrc.Counts.DiffsCreated, hlrc.Counts.DiffsCreated,
			lrc.Counts.DiffsApplied, hlrc.Counts.DiffsApplied,
			hlrc.Counts.LockAcquires, hlrc.Counts.Barriers)
	}
	tw.Flush()
}

// Table5Row is one app's communication traffic under one protocol.
type Table5Row struct {
	App       string
	Proto     core.Protocol
	Msgs      int64
	DataMB    float64
	ProtoMB   float64
	PageFetch int64
}

// Table5Data gathers traffic for LRC vs HLRC at the largest size.
func (r *Runner) Table5Data(procs int) []Table5Row {
	var cells []cell
	for _, app := range AppNames() {
		for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
			cells = append(cells, cell{app, proto, procs})
		}
	}
	r.warm(cells)
	var rows []Table5Row
	for _, app := range AppNames() {
		for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
			res := r.Run(app, proto, procs)
			rows = append(rows, Table5Row{
				App:     app,
				Proto:   proto,
				Msgs:    res.Stats.TotalMsgs(),
				DataMB:  float64(res.Stats.TotalBytes(stats.ClassData)) / (1 << 20),
				ProtoMB: float64(res.Stats.TotalBytes(stats.ClassProtocol)) / (1 << 20),
			})
		}
	}
	return rows
}

// Table5 reports message counts and update/protocol traffic.
func (r *Runner) Table5(w io.Writer) {
	procs := r.Procs[len(r.Procs)-1]
	fmt.Fprintf(w, "Table 5: communication traffic, %d nodes (LRC vs HLRC)\n", procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "App\tProtocol\tMessages\tUpdate traffic (MB)\tProtocol traffic (MB)")
	for _, row := range r.Table5Data(procs) {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.2f\n", row.App, row.Proto, row.Msgs, row.DataMB, row.ProtoMB)
	}
	tw.Flush()
}

// Table6Row is one app's memory requirement under one protocol.
type Table6Row struct {
	App          string
	Proto        core.Protocol
	Procs        int
	AppMB        float64 // application shared memory per node
	ProtoPeakMB  float64 // peak protocol memory per node (max over nodes)
	RatioPercent float64 // protocol / application, percent
}

// Table6Data gathers memory requirements for LRC vs HLRC.
func (r *Runner) Table6Data() []Table6Row {
	var cells []cell
	for _, app := range AppNames() {
		for _, p := range r.Procs {
			for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
				cells = append(cells, cell{app, proto, p})
			}
		}
	}
	r.warm(cells)
	var rows []Table6Row
	for _, app := range AppNames() {
		for _, p := range r.Procs {
			for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC} {
				res := r.Run(app, proto, p)
				appMB := float64(res.Stats.TotalAppMem()) / float64(p) / (1 << 20)
				protoMB := float64(res.Stats.PeakProtoMem()) / (1 << 20)
				rows = append(rows, Table6Row{
					App: app, Proto: proto, Procs: p,
					AppMB: appMB, ProtoPeakMB: protoMB,
					RatioPercent: protoMB / appMB * 100,
				})
			}
		}
	}
	return rows
}

// Table6 reports protocol memory vs application memory.
func (r *Runner) Table6(w io.Writer) {
	fmt.Fprintln(w, "Table 6: memory requirements per node (peak protocol memory vs application memory)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "App\tNodes\tApp MB/node\tLRC proto MB\tLRC %\tHLRC proto MB\tHLRC %")
	rows := r.Table6Data()
	for i := 0; i < len(rows); i += 2 {
		lrc, hlrc := rows[i], rows[i+1]
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.0f%%\t%.2f\t%.0f%%\n",
			lrc.App, lrc.Procs, lrc.AppMB,
			lrc.ProtoPeakMB, lrc.RatioPercent,
			hlrc.ProtoPeakMB, hlrc.RatioPercent)
	}
	tw.Flush()
}
