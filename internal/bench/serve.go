package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

// ServeSweepOpts configures the open-loop serving sweep: the workload
// shape, the offered-load axis, and an optional fault profile composed
// over every cell.
type ServeSweepOpts struct {
	// Base is the workload shape (key space, mix, skew, arrival process,
	// window, seed). OfferedLoad is overridden per cell by Loads.
	Base serve.Config
	// Loads is the offered-load axis in requests per simulated second
	// (total across the machine).
	Loads []float64
	// Protos are the protocol columns; nil means the paper's four (or
	// the home-based pair under a crash profile).
	Protos []core.Protocol
	// Profile is an optional fault profile name ("", "lossy", "hostile",
	// "crash") composed over every cell; Seed seeds its plan. Crash
	// cells run with one home-state replica, as the fault sweep does.
	Profile string
	Seed    int64
}

// ServeSweep sweeps offered load x machine size x protocol over the
// open-loop KV serving workload and renders a latency/throughput table:
// offered vs. achieved rate, p50/p99/p999 service latency on the
// simulated clock, queue utilization, and saturation detection.
//
// Cells fan out across host cores exactly like the closed-loop sweeps:
// every cell owns its kernel and its (deterministic, protocol- and
// parallelism-independent) client trace, and rendering reads completed
// cells in fixed grid order, so the table and any per-cell JSON are
// byte-identical at every -parallel level. Every cell validates the
// final store contents against the trace-derived expectation.
//
// When jsonDir is non-empty, each cell's statistics (including the
// serve block with the full latency histogram) are written there as
// serve-<profile>-<proto>-p<procs>-l<load>.json.
func (r *Runner) ServeSweep(out io.Writer, o ServeSweepOpts, jsonDir string) error {
	if len(o.Loads) == 0 {
		return fmt.Errorf("bench: serve sweep needs at least one offered load")
	}
	profile := o.Profile
	if profile == "" {
		profile = fault.ProfileNone
	}
	plan, err := fault.Profile(profile, o.Seed)
	if err != nil {
		return err
	}
	protos := o.Protos
	if protos == nil {
		protos = faultProtocols(profile)
	}
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
	}

	type scell struct {
		load  float64
		procs int
		proto core.Protocol
	}
	var cells []scell
	for _, load := range o.Loads {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				cells = append(cells, scell{load, procs, proto})
			}
		}
	}
	results := make([]*core.Result, len(cells))
	errs := make([]error, len(cells))
	r.forEach(len(cells), func(i int) {
		c := cells[i]
		results[i], errs[i] = r.runServe(o.Base, c.load, c.proto, c.procs, plan)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	crash := len(plan.Crashes) > 0
	fmt.Fprintf(out, "Open-loop KV serving sweep: offered load vs. tail latency (fault profile %q, seed %d)\n",
		profile, o.Seed)
	fmt.Fprintln(out, "rates in requests per simulated second; latencies on the simulated clock")
	tw := tabwriter.NewWriter(out, 4, 8, 2, ' ', 0)
	fmt.Fprint(tw, "Offered\tProcs\tProtocol\tGenerated\tAchieved\tRatio\tUtil\tp50(ms)\tp99(ms)\tp999(ms)\tSaturated")
	if plan.Active() {
		fmt.Fprint(tw, "\tRetries\tRecovery(ms)")
	}
	if crash {
		fmt.Fprint(tw, "\tRehomed")
	}
	fmt.Fprintln(tw)
	next := 0
	for _, load := range o.Loads {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				res := results[next]
				next++
				s := res.Stats.Serve
				sat := ""
				if s.Saturated() {
					sat = "SATURATED"
				}
				fmt.Fprintf(tw, "%.0f\t%d\t%s\t%d\t%.0f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%s",
					load, procs, proto, s.Generated, s.AchievedRate(), s.SaturationRatio(),
					s.MaxUtil, ms(s.Latency.P50()), ms(s.Latency.P99()), ms(s.Latency.P999()), sat)
				if plan.Active() {
					var retries, rehomed int64
					var recovery sim.Time
					for _, nd := range res.Stats.Nodes {
						retries += nd.Counts.Retries
						rehomed += nd.Counts.PagesRehomed
						recovery += nd.Recovery
					}
					fmt.Fprintf(tw, "\t%d\t%.2f", retries, ms(recovery))
					if crash {
						fmt.Fprintf(tw, "\t%d", rehomed)
					}
				}
				fmt.Fprintln(tw)
				if jsonDir != "" {
					name := fmt.Sprintf("serve-%s-%s-p%d-l%.0f.json", profile, proto, procs, load)
					if err := writeCellJSON(filepath.Join(jsonDir, name), res); err != nil {
						return err
					}
				}
			}
		}
	}
	return tw.Flush()
}

// runServe executes one serving cell: build the (cell-local) workload,
// run it under the protocol and fault plan, validate the store, and
// attach the serve statistics.
func (r *Runner) runServe(base serve.Config, load float64, proto core.Protocol, procs int, plan fault.Plan) (*core.Result, error) {
	cfg := base
	cfg.OfferedLoad = load
	kv, err := serve.New(cfg, procs)
	if err != nil {
		return nil, err
	}
	opts := r.cellOpts(proto, procs)
	opts.Fault = plan
	if len(plan.Crashes) > 0 {
		opts.Recovery = core.Recovery{Replicas: 1}
	}
	r.acquire()
	start := time.Now()
	res, err := serve.Run(opts, kv)
	r.release()
	if err != nil {
		return nil, fmt.Errorf("bench: kv-serve/%s/p%d/l%.0f: %w", proto, procs, load, err)
	}
	r.progressf("# ran kv-serve/%s/p%d/l%.0f: %d reqs, simulated %.1fms (%.2fs real)\n",
		proto, procs, load, res.Stats.Serve.Completed,
		res.Stats.Elapsed.Micros()/1e3, time.Since(start).Seconds())
	return res, nil
}

// ms renders simulated time in milliseconds.
func ms(t sim.Time) float64 { return t.Micros() / 1e3 }

// writeCellJSON writes one cell's run statistics to path.
func writeCellJSON(path string, res *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := res.Stats.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
