package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

// ServeSweepOpts configures the open-loop serving sweep: the workload
// shape, the offered-load axis, and an optional fault profile composed
// over every cell.
type ServeSweepOpts struct {
	// Base is the workload shape (key space, mix, skew, arrival process,
	// window, seed). OfferedLoad is overridden per cell by Loads.
	Base serve.Config
	// Loads is the offered-load axis in requests per simulated second
	// (total across the machine).
	Loads []float64
	// Protos are the protocol columns; nil means the paper's four (or
	// the home-based pair under a crash profile).
	Protos []core.Protocol
	// Profile is an optional fault profile name ("", "lossy", "hostile",
	// "crash") composed over every cell; Seed seeds its plan. Crash
	// cells run with one home-state replica, as the fault sweep does.
	Profile string
	Seed    int64
	// Modes is an optional fast-path ablation axis (serve.Modes values);
	// each entry overwrites Base's fast-path knobs via ApplyFastpath and
	// adds a Mode column. Empty runs Base's knobs as configured, with no
	// extra column.
	Modes []string
	// Closed is an optional closed-loop axis: for each client count a
	// second table contrasts the closed population's behavior with the
	// open-loop cells above it (same shape, same protocols, demand
	// paced by completions instead of a free-running arrival process).
	Closed []int
	// Think is the closed-loop mean think time (zero: serve's default).
	Think sim.Time
}

// ServeSweep sweeps offered load x machine size x protocol over the
// open-loop KV serving workload and renders a latency/throughput table:
// offered vs. achieved rate, p50/p99/p999 service latency on the
// simulated clock, queue utilization, and saturation detection.
//
// Cells fan out across host cores exactly like the closed-loop sweeps:
// every cell owns its kernel and its (deterministic, protocol- and
// parallelism-independent) client trace, and rendering reads completed
// cells in fixed grid order, so the table and any per-cell JSON are
// byte-identical at every -parallel level. Every cell validates the
// final store contents against the trace-derived expectation.
//
// When jsonDir is non-empty, each cell's statistics (including the
// serve block with the full latency histogram) are written there as
// serve-<profile>-<proto>-p<procs>-l<load>.json.
func (r *Runner) ServeSweep(out io.Writer, o ServeSweepOpts, jsonDir string) error {
	if len(o.Loads) == 0 {
		return fmt.Errorf("bench: serve sweep needs at least one offered load")
	}
	profile := o.Profile
	if profile == "" {
		profile = fault.ProfileNone
	}
	plan, err := fault.Profile(profile, o.Seed)
	if err != nil {
		return err
	}
	protos := o.Protos
	if protos == nil {
		protos = faultProtocols(profile)
	}
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
	}

	modes := o.Modes
	withModes := len(modes) > 0
	if !withModes {
		modes = []string{""}
	}

	type scell struct {
		load  float64
		procs int
		proto core.Protocol
		mode  string
	}
	var cells []scell
	for _, load := range o.Loads {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				for _, mode := range modes {
					cells = append(cells, scell{load, procs, proto, mode})
				}
			}
		}
	}
	results := make([]*core.Result, len(cells))
	errs := make([]error, len(cells))
	r.forEach(len(cells), func(i int) {
		c := cells[i]
		results[i], errs[i] = r.runServe(o.Base, c.load, c.proto, c.procs, c.mode, 0, o.Think, plan)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	crash := len(plan.Crashes) > 0
	fmt.Fprintf(out, "Open-loop KV serving sweep: offered load vs. tail latency (fault profile %q, seed %d)\n",
		profile, o.Seed)
	fmt.Fprintln(out, "rates in requests per simulated second; latencies on the simulated clock")
	fmt.Fprintln(out, "Skew is the home hot-spot metric: max over nodes of serviced messages, relative to the mean")
	tw := tabwriter.NewWriter(out, 4, 8, 2, ' ', 0)
	fmt.Fprint(tw, "Offered\tProcs\tProtocol")
	if withModes {
		fmt.Fprint(tw, "\tMode")
	}
	fmt.Fprint(tw, "\tGenerated\tAchieved\tRatio\tUtil\tp50(ms)\tp99(ms)\tp999(ms)\tSkew")
	if withModes {
		fmt.Fprint(tw, "\tSeqRd\tFallbk\tAvgB")
	}
	fmt.Fprint(tw, "\tSaturated")
	if plan.Active() {
		fmt.Fprint(tw, "\tRetries\tRecovery(ms)")
	}
	if crash {
		fmt.Fprint(tw, "\tRehomed")
	}
	fmt.Fprintln(tw)
	for i, c := range cells {
		res := results[i]
		s := res.Stats.Serve
		sat := ""
		if s.Saturated() {
			sat = "SATURATED"
		}
		fmt.Fprintf(tw, "%.0f\t%d\t%s", c.load, c.procs, c.proto)
		if withModes {
			fmt.Fprintf(tw, "\t%s", c.mode)
		}
		fmt.Fprintf(tw, "\t%d\t%.0f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f",
			s.Generated, s.AchievedRate(), s.SaturationRatio(),
			s.MaxUtil, ms(s.Latency.P50()), ms(s.Latency.P99()), ms(s.Latency.P999()),
			homeSkew(res))
		if withModes {
			avgB := 0.0
			if s.Batches > 0 {
				avgB = float64(s.BatchedOps) / float64(s.Batches)
			}
			fmt.Fprintf(tw, "\t%d\t%d\t%.1f", s.SeqlockReads, s.SeqlockFallbacks, avgB)
		}
		fmt.Fprintf(tw, "\t%s", sat)
		if plan.Active() {
			var retries, rehomed int64
			var recovery sim.Time
			for _, nd := range res.Stats.Nodes {
				retries += nd.Counts.Retries
				rehomed += nd.Counts.PagesRehomed
				recovery += nd.Recovery
			}
			fmt.Fprintf(tw, "\t%d\t%.2f", retries, ms(recovery))
			if crash {
				fmt.Fprintf(tw, "\t%d", rehomed)
			}
		}
		fmt.Fprintln(tw)
		if jsonDir != "" {
			tag := ""
			if c.mode != "" {
				tag = "-" + c.mode
			}
			name := fmt.Sprintf("serve-%s-%s-p%d-l%.0f%s.json", profile, c.proto, c.procs, c.load, tag)
			if err := writeCellJSON(filepath.Join(jsonDir, name), res); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(o.Closed) > 0 {
		return r.closedSweep(out, o, protos, modes, withModes, plan, jsonDir, profile)
	}
	return nil
}

// closedSweep renders the closed-loop comparison table: the same store,
// mix, and protocols as the open-loop sweep above it, but demand is
// paced by a fixed client population that thinks between completions —
// throughput self-limits at capacity instead of building an unbounded
// backlog, so tail latency stays bounded where the open loop saturates.
func (r *Runner) closedSweep(out io.Writer, o ServeSweepOpts, protos []core.Protocol,
	modes []string, withModes bool, plan fault.Plan, jsonDir, profile string) error {
	type ccell struct {
		clients int
		procs   int
		proto   core.Protocol
		mode    string
	}
	var cells []ccell
	for _, clients := range o.Closed {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				for _, mode := range modes {
					cells = append(cells, ccell{clients, procs, proto, mode})
				}
			}
		}
	}
	results := make([]*core.Result, len(cells))
	errs := make([]error, len(cells))
	r.forEach(len(cells), func(i int) {
		c := cells[i]
		results[i], errs[i] = r.runServe(o.Base, 0, c.proto, c.procs, c.mode, c.clients, o.Think, plan)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	fmt.Fprintln(out)
	fmt.Fprintln(out, "Closed-loop comparison: a fixed client population (think time between completions)")
	fmt.Fprintln(out, "self-limits at capacity — contrast achieved rate and tails with the open loop above")
	tw := tabwriter.NewWriter(out, 4, 8, 2, ' ', 0)
	fmt.Fprint(tw, "Clients\tProcs\tProtocol")
	if withModes {
		fmt.Fprint(tw, "\tMode")
	}
	fmt.Fprintln(tw, "\tCompleted\tAchieved\tUtil\tp50(ms)\tp99(ms)\tp999(ms)\tSkew")
	for i, c := range cells {
		res := results[i]
		s := res.Stats.Serve
		fmt.Fprintf(tw, "%d\t%d\t%s", c.clients, c.procs, c.proto)
		if withModes {
			fmt.Fprintf(tw, "\t%s", c.mode)
		}
		fmt.Fprintf(tw, "\t%d\t%.0f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			s.Completed, s.AchievedRate(), s.MaxUtil,
			ms(s.Latency.P50()), ms(s.Latency.P99()), ms(s.Latency.P999()), homeSkew(res))
		if jsonDir != "" {
			tag := ""
			if c.mode != "" {
				tag = "-" + c.mode
			}
			name := fmt.Sprintf("serve-closed-%s-%s-p%d-c%d%s.json", profile, c.proto, c.procs, c.clients, tag)
			if err := writeCellJSON(filepath.Join(jsonDir, name), res); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

// homeSkew is the home hot-spot metric: the hottest node's serviced
// (unsolicited) message count relative to the mean across nodes. 1.0 is
// perfectly even; procs-sized values mean one home serves everything.
func homeSkew(res *core.Result) float64 {
	var max, sum int64
	for _, nd := range res.Stats.Nodes {
		if nd.MsgsIn > max {
			max = nd.MsgsIn
		}
		sum += nd.MsgsIn
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(len(res.Stats.Nodes)))
}

// runServe executes one serving cell: build the (cell-local) workload,
// run it under the protocol and fault plan, validate the store, and
// attach the serve statistics. mode (non-empty) overwrites the config's
// fast-path knobs; clients > 0 switches the cell to closed loop.
func (r *Runner) runServe(base serve.Config, load float64, proto core.Protocol, procs int,
	mode string, clients int, think sim.Time, plan fault.Plan) (*core.Result, error) {
	cfg := base
	if load > 0 {
		cfg.OfferedLoad = load
	}
	if mode != "" {
		if err := serve.ApplyFastpath(&cfg, mode); err != nil {
			return nil, err
		}
	}
	if clients > 0 {
		cfg.ClosedClients = clients
		if think > 0 {
			cfg.ThinkTime = think
		}
	}
	kv, err := serve.New(cfg, procs)
	if err != nil {
		return nil, err
	}
	opts := r.cellOpts(proto, procs)
	opts.Fault = plan
	if len(plan.Crashes) > 0 {
		opts.Recovery = core.Recovery{Replicas: 1}
	}
	r.acquire()
	start := time.Now()
	res, err := serve.Run(opts, kv)
	r.release()
	if err != nil {
		return nil, fmt.Errorf("bench: kv-serve/%s/p%d/l%.0f: %w", proto, procs, load, err)
	}
	r.progressf("# ran kv-serve/%s/p%d/l%.0f: %d reqs, simulated %.1fms (%.2fs real)\n",
		proto, procs, load, res.Stats.Serve.Completed,
		res.Stats.Elapsed.Micros()/1e3, time.Since(start).Seconds())
	return res, nil
}

// ms renders simulated time in milliseconds.
func ms(t sim.Time) float64 { return t.Micros() / 1e3 }

// writeCellJSON writes one cell's run statistics to path.
func writeCellJSON(path string, res *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := res.Stats.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
