package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"gosvm/internal/apps"
)

// rtoTotals parses the per-mode totals row of one RTOSweep table:
// (retries, dups, recovery-ms) for the fixed arm then the adaptive arm.
func rtoTotals(t *testing.T, table string) (fixed, adaptive [3]float64) {
	t.Helper()
	for _, line := range strings.Split(table, "\n") {
		f := strings.Fields(line)
		if len(f) != 7 || f[0] != "total" {
			continue
		}
		for i := 0; i < 6; i++ {
			v, err := strconv.ParseFloat(f[1+i], 64)
			if err != nil {
				t.Fatalf("bad totals field %q in %q: %v", f[1+i], line, err)
			}
			if i < 3 {
				fixed[i] = v
			} else {
				adaptive[i-3] = v
			}
		}
		return fixed, adaptive
	}
	t.Fatalf("no totals row in table:\n%s", table)
	return
}

// TestRTOSweepDeterminism renders the ablation sequentially and with 8
// workers: byte-identical output, like every other sweep.
func TestRTOSweepDeterminism(t *testing.T) {
	run := func(parallel int) string {
		r := NewRunner(apps.SizeTest)
		r.Procs = []int{4}
		r.Parallel = parallel
		var buf bytes.Buffer
		if err := r.RTOSweep(&buf, []string{"lossy"}, 1, ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	s1, s8 := run(1), run(8)
	if s1 != s8 {
		t.Errorf("rto ablation differs between -parallel 1 and -parallel 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", s1, s8)
	}
	for _, want := range []string{"Adaptive-RTO ablation", "fixed:retries", "adaptive:retries", "total"} {
		if !strings.Contains(s1, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, s1)
		}
	}
}

// TestRTOSweepRejectsCrashProfiles: a crash plan has no fixed-vs-adaptive
// story (recovery is re-homing, not retransmission), so the ablation
// refuses it instead of producing a meaningless table.
func TestRTOSweepRejectsCrashProfiles(t *testing.T) {
	r := NewRunner(apps.SizeTest)
	r.Procs = []int{4}
	var buf bytes.Buffer
	if err := r.RTOSweep(&buf, []string{"crash"}, 1, ""); err == nil {
		t.Fatal("crash profile accepted")
	}
}

// TestRTOAblationCriterion is the acceptance gate for the adaptive
// estimator: under the hostile profile at link level, per-edge RTT
// estimation must suppress fewer duplicates (fewer spurious
// retransmissions into congested routes) while recovering no slower
// than the fixed 2ms timeout, in aggregate across apps, machine sizes,
// and protocols.
func TestRTOAblationCriterion(t *testing.T) {
	if testing.Short() {
		t.Skip("full hostile ablation is slow")
	}
	r := NewRunner(apps.SizeTest)
	r.Procs = []int{8, 32}
	var buf bytes.Buffer
	if err := r.RTOSweep(&buf, []string{"hostile"}, 1, ""); err != nil {
		t.Fatal(err)
	}
	fixed, adaptive := rtoTotals(t, buf.String())
	if fixed[0] == 0 || fixed[1] == 0 {
		t.Fatalf("fixed arm saw no faults (retries %v, dups %v): nothing to ablate", fixed[0], fixed[1])
	}
	if adaptive[1] >= fixed[1] {
		t.Errorf("adaptive dups %v not below fixed %v", adaptive[1], fixed[1])
	}
	if adaptive[2] > fixed[2] {
		t.Errorf("adaptive recovery %vms worse than fixed %vms", adaptive[2], fixed[2])
	}
}
