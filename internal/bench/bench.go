// Package bench regenerates every table and figure of the paper's
// evaluation section: speedups (Table 2), basic operation costs (Table 3),
// per-node protocol operation counts (Table 4), communication traffic
// (Table 5), protocol memory requirements (Table 6), execution time
// breakdowns (Figure 3), per-processor inter-barrier breakdowns
// (Figure 4), and the zero-initialized SOR experiment of §4.8.
//
// A Runner memoizes simulation runs so one sweep feeds all tables.
package bench

import (
	"fmt"
	"io"
	"time"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// Runner executes and memoizes benchmark runs.
type Runner struct {
	Size        apps.Size
	PageBytes   int
	GCThreshold int64
	Procs       []int     // machine sizes; the paper uses 8, 32, 64
	Progress    io.Writer // optional progress log

	cache map[runKey]*core.Result
}

type runKey struct {
	app   string
	proto core.Protocol
	procs int
}

// NewRunner returns a runner at the given problem size with the paper's
// machine parameters.
func NewRunner(size apps.Size) *Runner {
	return &Runner{
		Size:        size,
		PageBytes:   8192,
		GCThreshold: 8 << 20,
		Procs:       []int{8, 32, 64},
		cache:       map[runKey]*core.Result{},
	}
}

// Run returns the (memoized) result of app under proto on procs nodes.
// proto "seq" ignores procs.
func (r *Runner) Run(app string, proto core.Protocol, procs int) *core.Result {
	if proto == core.ProtoSeq {
		procs = 1
	}
	key := runKey{app, proto, procs}
	if res, ok := r.cache[key]; ok {
		return res
	}
	a, err := apps.New(app, r.Size)
	if err != nil {
		panic(err)
	}
	opts := core.Options{
		Protocol:    proto,
		NumProcs:    procs,
		PageBytes:   r.PageBytes,
		GCThreshold: r.GCThreshold,
	}
	start := time.Now()
	res, err := core.Run(opts, a, false)
	if err != nil {
		panic(fmt.Sprintf("bench: %s/%s/p%d: %v", app, proto, procs, err))
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "# ran %s/%s/p%d: simulated %.1fs (%.2fs real)\n",
			app, proto, procs, res.Stats.Elapsed.Micros()/1e6, time.Since(start).Seconds())
	}
	r.cache[key] = res
	return res
}

// Seq returns the sequential baseline for app.
func (r *Runner) Seq(app string) *core.Result { return r.Run(app, core.ProtoSeq, 1) }

// Speedup returns seq/parallel simulated time.
func (r *Runner) Speedup(app string, proto core.Protocol, procs int) float64 {
	seq := r.Seq(app).Stats.Elapsed
	par := r.Run(app, proto, procs).Stats.Elapsed
	return float64(seq) / float64(par)
}

// AppNames lists the benchmark applications in the paper's order.
func AppNames() []string { return apps.Names }

// seconds formats simulated time as seconds.
func seconds(t sim.Time) string { return fmt.Sprintf("%.1f", t.Micros()/1e6) }

// mb formats bytes as megabytes.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// avgCounts returns the average per-node counters of a run.
func avgCounts(res *core.Result) stats.Counters { return res.Stats.AvgNode().Counts }
