// Package bench regenerates every table and figure of the paper's
// evaluation section: speedups (Table 2), basic operation costs (Table 3),
// per-node protocol operation counts (Table 4), communication traffic
// (Table 5), protocol memory requirements (Table 6), execution time
// breakdowns (Figure 3), per-processor inter-barrier breakdowns
// (Figure 4), and the zero-initialized SOR experiment of §4.8.
//
// A Runner memoizes simulation runs so one sweep feeds all tables, and
// fans independent cells out across host cores: every cell owns its own
// simulation kernel, so per-cell determinism is free, and all rendering
// reads completed cells in fixed grid order — tables, figures, and
// per-cell JSON are byte-identical at any parallelism level.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// Runner executes and memoizes benchmark runs.
type Runner struct {
	Size        apps.Size
	PageBytes   int
	GCThreshold int64
	Procs       []int // machine sizes; the paper uses 8, 32, 64
	// Machine is the size-independent machine shape (topology, cost
	// profile, barrier algorithm) applied to every cell; the node count
	// is stamped per cell from the Procs axis. The zero value is the
	// default crossbar Paragon.
	Machine  core.Machine
	Progress io.Writer // optional progress log
	// Parallel caps how many simulation cells run concurrently on the
	// host. 0 means GOMAXPROCS; 1 restores fully sequential execution.
	// Results are independent of the setting (see the package comment).
	Parallel int
	// RunWorkers is the number of host threads inside each single
	// simulation (the partitioned parallel kernel; see core.Options).
	// Results are byte-identical at any value. It composes with
	// Parallel: total host threads ~ Parallel * RunWorkers, so sweeps
	// usually want one of the two at 1.
	RunWorkers int

	mu       sync.Mutex // guards cache and Progress writes
	cache    map[runKey]*cacheEntry
	gateOnce sync.Once
	gateCh   chan struct{}
}

// cacheEntry is a singleflight memo slot: the first Run for a key owns
// the simulation; later callers block on done.
type cacheEntry struct {
	done chan struct{}
	res  *core.Result
}

type runKey struct {
	app   string
	proto core.Protocol
	procs int
}

// NewRunner returns a runner at the given problem size with the paper's
// machine parameters.
func NewRunner(size apps.Size) *Runner {
	return &Runner{
		Size:        size,
		PageBytes:   8192,
		GCThreshold: 8 << 20,
		Procs:       []int{8, 32, 64},
		cache:       map[runKey]*cacheEntry{},
	}
}

// Run returns the (memoized) result of app under proto on procs nodes.
// proto "seq" ignores procs. Run is safe to call from many goroutines;
// concurrent calls for the same cell share one simulation.
func (r *Runner) Run(app string, proto core.Protocol, procs int) *core.Result {
	if proto == core.ProtoSeq {
		procs = 1
	}
	key := runKey{app, proto, procs}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done
		if e.res == nil {
			panic(fmt.Sprintf("bench: %s/%s/p%d: owning run failed", app, proto, procs))
		}
		return e.res
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	defer close(e.done)

	a, err := apps.New(app, r.Size)
	if err != nil {
		panic(err)
	}
	opts := r.cellOpts(proto, procs)
	r.acquire()
	start := time.Now()
	res, err := core.Run(opts, a, false)
	r.release()
	if err != nil {
		panic(fmt.Sprintf("bench: %s/%s/p%d: %v", app, proto, procs, err))
	}
	r.progressf("# ran %s/%s/p%d: simulated %.1fs (%.2fs real)\n",
		app, proto, procs, res.Stats.Elapsed.Micros()/1e6, time.Since(start).Seconds())
	e.res = res
	return res
}

// cellOpts returns the run Options for one cell: the Runner's machine
// shape stamped with the cell's node count.
func (r *Runner) cellOpts(proto core.Protocol, procs int) core.Options {
	m := r.Machine
	m.Nodes = procs
	return core.Options{
		Protocol:    proto,
		PageBytes:   r.PageBytes,
		GCThreshold: r.GCThreshold,
		Machine:     m,
		RunWorkers:  r.RunWorkers,
	}
}

// Seq returns the sequential baseline for app.
func (r *Runner) Seq(app string) *core.Result { return r.Run(app, core.ProtoSeq, 1) }

// Speedup returns seq/parallel simulated time.
func (r *Runner) Speedup(app string, proto core.Protocol, procs int) float64 {
	seq := r.Seq(app).Stats.Elapsed
	par := r.Run(app, proto, procs).Stats.Elapsed
	return float64(seq) / float64(par)
}

// AppNames lists the benchmark applications in the paper's order.
func AppNames() []string { return apps.Names }

// progressf writes one progress line, serialized across workers. Lines
// may interleave across cells in host-timing order; grid output is
// unaffected (it renders from the memo cache in fixed order).
func (r *Runner) progressf(format string, args ...any) {
	if r.Progress == nil {
		return
	}
	r.mu.Lock()
	fmt.Fprintf(r.Progress, format, args...)
	r.mu.Unlock()
}

// seconds formats simulated time as seconds.
func seconds(t sim.Time) string { return fmt.Sprintf("%.1f", t.Micros()/1e6) }

// mb formats bytes as megabytes.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// avgCounts returns the average per-node counters of a run.
func avgCounts(res *core.Result) stats.Counters { return res.Stats.AvgNode().Counts }
