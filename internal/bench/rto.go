package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/fault"
)

// rtoApps are the applications used for the RTO ablation: one
// coarse-grained iterative kernel and one irregular molecular-dynamics
// code, enough to exercise both bulk data traffic and lock-heavy
// protocol traffic without rerunning the whole suite per arm.
var rtoApps = []string{"sor", "water-nsq"}

// rtoModes are the two transport arms of the ablation.
var rtoModes = []string{"fixed", "adaptive"}

// RTOSweep runs the adaptive-RTO ablation: for each fault profile, every
// (app, procs, protocol) cell twice — once with the plan's fixed
// retransmission timeout and once with per-edge Jacobson/Karels RTT
// estimation — on the link-granularity mesh network, where congestion
// makes a fixed timeout either slack (slow recovery) or trigger-happy
// (spurious retransmissions and the duplicate suppressions they cause).
// Every run validates against the sequential result; the table reports
// total retries, duplicate suppressions, and recovery time per arm.
//
// When jsonDir is non-empty every cell's statistics are written there as
// rto-<profile>-<mode>-<app>-<proto>-p<procs>.json.
func (r *Runner) RTOSweep(out io.Writer, profiles []string, seed int64, jsonDir string) error {
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
	}
	for i, profile := range profiles {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := r.rtoTable(out, profile, seed, jsonDir); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) rtoTable(out io.Writer, profile string, seed int64, jsonDir string) error {
	basePlan, err := fault.Profile(profile, seed)
	if err != nil {
		return err
	}
	if len(basePlan.Crashes) > 0 {
		return fmt.Errorf("bench: rto ablation does not support crash profiles (got %q)", profile)
	}
	protos := faultProtocols(profile)

	// Same fan-out/render split as the fault sweep: run every cell in
	// parallel, then render in fixed grid order so output is identical at
	// any -parallel level. The two arms differ only in Plan.AdaptiveRTO.
	type rcell struct {
		app   string
		proto core.Protocol
		procs int
		mode  string
	}
	var cells []rcell
	for _, app := range rtoApps {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				for _, mode := range rtoModes {
					cells = append(cells, rcell{app, proto, procs, mode})
				}
			}
		}
	}
	results := make([]*core.Result, len(cells))
	errs := make([]error, len(cells))
	r.forEach(len(cells), func(i int) {
		c := cells[i]
		// The profile is rendered at link level for the cell's machine
		// size: loss and jitter roll per link crossing, so they correlate
		// with XY routes — the fault structure a per-edge RTT estimator
		// can exploit and a single fixed timeout cannot.
		plan := basePlan.AtLinkLevel(c.procs)
		plan.AdaptiveRTO = c.mode == "adaptive"
		results[i], errs[i] = r.runMeshFaulted(c.app, c.proto, c.procs, plan)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "Adaptive-RTO ablation under fault profile %q at link level (seed %d, mesh network)\n", profile, seed)
	fmt.Fprintln(out, "totals across nodes; recovery is time lost to retransmitted messages")
	tw := tabwriter.NewWriter(out, 4, 8, 2, ' ', 0)
	fmt.Fprint(tw, "Application\tProcs\tProtocol")
	for _, mode := range rtoModes {
		fmt.Fprintf(tw, "\t%s:retries\tdups\trecovery(ms)", mode)
	}
	fmt.Fprintln(tw)

	next := 0
	totRetries := make([]int64, len(rtoModes))
	totDups := make([]int64, len(rtoModes))
	totRecovery := make([]float64, len(rtoModes))
	for _, app := range rtoApps {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				fmt.Fprintf(tw, "%s\t%d\t%s", app, procs, proto)
				for mi, mode := range rtoModes {
					res := results[next]
					next++
					var retries, dups int64
					var recovery float64
					for _, nd := range res.Stats.Nodes {
						retries += nd.Counts.Retries
						dups += nd.Counts.DupsSuppressed
						recovery += nd.Recovery.Micros() / 1e3
					}
					totRetries[mi] += retries
					totDups[mi] += dups
					totRecovery[mi] += recovery
					fmt.Fprintf(tw, "\t%d\t%d\t%.2f", retries, dups, recovery)
					if jsonDir != "" {
						name := fmt.Sprintf("rto-%s-%s-%s-%s-p%d.json", profile, mode, app, proto, procs)
						f, err := os.Create(filepath.Join(jsonDir, name))
						if err != nil {
							return err
						}
						werr := res.Stats.WriteJSON(f)
						if cerr := f.Close(); werr == nil {
							werr = cerr
						}
						if werr != nil {
							return werr
						}
					}
				}
				fmt.Fprintln(tw)
			}
		}
	}
	fmt.Fprint(tw, "total\t\t")
	for mi := range rtoModes {
		fmt.Fprintf(tw, "\t%d\t%d\t%.2f", totRetries[mi], totDups[mi], totRecovery[mi])
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// runMeshFaulted is runFaulted on the link-granularity mesh network
// model, validated against the sequential result.
func (r *Runner) runMeshFaulted(app string, proto core.Protocol, procs int, plan fault.Plan) (*core.Result, error) {
	a, err := apps.New(app, r.Size)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Protocol:    proto,
		NumProcs:    procs,
		PageBytes:   r.PageBytes,
		GCThreshold: r.GCThreshold,
		Fault:       plan,
		Mesh:        true,
	}
	r.acquire()
	start := time.Now()
	res, err := core.Run(opts, a, false)
	r.release()
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s/p%d (mesh): %w", app, proto, procs, err)
	}
	// Faults and the network model perturb timing, never correctness: the
	// result must match the clean run at the same configuration. The
	// barrier-structured apps must match bitwise; the water codes reduce
	// forces under locks whose acquisition order is timing-dependent, so
	// they carry the same tiny tolerance the apps tests use. (The clean
	// runs themselves are checked against the sequential reference by the
	// apps tests.)
	tol := 0.0
	if app == "water-nsq" || app == "water-sp" {
		tol = 1e-9
	}
	if err := validateResult(r.Run(app, proto, procs).Data, res.Data, tol); err != nil {
		return nil, fmt.Errorf("bench: %s/%s/p%d (mesh): %w", app, proto, procs, err)
	}
	r.progressf("# ran %s/%s/p%d (mesh, faulted): simulated %.1fs (%.2fs real)\n",
		app, proto, procs, res.Stats.Elapsed.Micros()/1e6, time.Since(start).Seconds())
	return res, nil
}

// validateResult compares a gathered result image against a reference,
// word for word when tol is zero, else within relative tolerance.
func validateResult(want, got []float64, tol float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("result sizes differ: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if tol == 0 {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				return fmt.Errorf("result word %d: want %v, got %v", i, want[i], got[i])
			}
			continue
		}
		d := math.Abs(want[i] - got[i])
		if scale := math.Max(1, math.Abs(want[i])); d/scale > tol {
			return fmt.Errorf("result word %d: want %v, got %v (rel %g)", i, want[i], got[i], d/scale)
		}
	}
	return nil
}
