package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/fault"
	"gosvm/internal/sim"
)

// FaultSweep reruns the Table-2 speedup grid under fault injection: one
// sub-table per profile, every cell a full validated run. The lossy and
// hostile profiles exercise all four protocols; the crash profiles only
// the home-based ones (re-homing needs a home), with one replica per
// home so the mid-run crashes are survivable. The crash-mgr profile
// additionally kills the synchronization managers, exercising the
// lock/barrier-manager failover path. Faulted runs are not memoized —
// the plan is part of the cell.
//
// When jsonDir is non-empty every cell's statistics are written there as
// fault-<profile>-<app>-<proto>-p<procs>.json for machine consumption.
func (r *Runner) FaultSweep(out io.Writer, profiles []string, seed int64, jsonDir string) error {
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
	}
	for i, profile := range profiles {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := r.faultTable(out, profile, seed, jsonDir); err != nil {
			return err
		}
	}
	return nil
}

// faultProtocols returns the protocol columns for one profile.
func faultProtocols(profile string) []core.Protocol {
	if crashProfile(profile) {
		return []core.Protocol{core.ProtoHLRC, core.ProtoOHLRC}
	}
	return []core.Protocol{core.ProtoLRC, core.ProtoOLRC, core.ProtoHLRC, core.ProtoOHLRC}
}

// crashProfile reports whether profile kills nodes (and so requires the
// home-based protocols plus replication).
func crashProfile(profile string) bool {
	return profile == fault.ProfileCrash || profile == fault.ProfileCrashMgr
}

func (r *Runner) faultTable(out io.Writer, profile string, seed int64, jsonDir string) error {
	plan, err := fault.Profile(profile, seed)
	if err != nil {
		return err
	}
	protos := faultProtocols(profile)
	crash := crashProfile(profile)

	// Fan every cell of the grid out across workers, then render the
	// table and per-cell JSON sequentially in fixed grid order, so the
	// output is byte-identical at any parallelism level. The injector
	// only reads the plan, so one plan is safely shared across cells.
	type fcell struct {
		app   string
		proto core.Protocol
		procs int
	}
	var cells []fcell
	for _, app := range AppNames() {
		for _, procs := range r.Procs {
			for _, proto := range protos {
				cells = append(cells, fcell{app, proto, procs})
			}
		}
	}
	results := make([]*core.Result, len(cells))
	errs := make([]error, len(cells))
	r.forEach(len(cells)+len(AppNames()), func(i int) {
		if i < len(AppNames()) {
			r.Seq(AppNames()[i]) // warm the sequential baselines too
			return
		}
		c := cells[i-len(AppNames())]
		results[i-len(AppNames())], errs[i-len(AppNames())] = r.runFaulted(c.app, c.proto, c.procs, plan)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	next := 0 // cells[] index, advanced in the same nesting order as below

	fmt.Fprintf(out, "Speedups under fault profile %q (seed %d)\n", profile, seed)
	switch profile {
	case fault.ProfileCrash:
		fmt.Fprintln(out, "home-based protocols with Recovery.Replicas=1; node 1 crashes mid-run and its pages are re-homed")
	case fault.ProfileCrashMgr:
		fmt.Fprintln(out, "home-based protocols with Recovery.Replicas=1; the barrier manager (node 0) and a lock manager (node 1) crash in turn, their manager roles failing over to backups")
	}
	tw := tabwriter.NewWriter(out, 4, 8, 2, ' ', 0)
	fmt.Fprint(tw, "Application\tProcs")
	for _, proto := range protos {
		fmt.Fprintf(tw, "\t%s", proto)
	}
	if crash {
		fmt.Fprint(tw, "\trehomed\tdetect(ms)")
	}
	if profile == fault.ProfileCrashMgr {
		fmt.Fprint(tw, "\tmgrs\tlocks")
	}
	fmt.Fprintln(tw)

	for _, app := range AppNames() {
		seq := r.Seq(app).Stats.Elapsed
		for _, procs := range r.Procs {
			fmt.Fprintf(tw, "%s\t%d", app, procs)
			var rehomed, mgrs, locks int64
			var detect sim.Time
			for _, proto := range protos {
				res := results[next]
				next++
				res.Stats.SeqTime = seq
				fmt.Fprintf(tw, "\t%.2f", res.Stats.Speedup())
				for _, nd := range res.Stats.Nodes {
					rehomed += nd.Counts.PagesRehomed
					mgrs += nd.Counts.MgrsRehomed
					locks += nd.Counts.LocksReclaimed
					if nd.Detect > detect {
						detect = nd.Detect
					}
				}
				if jsonDir != "" {
					name := fmt.Sprintf("fault-%s-%s-%s-p%d.json", profile, app, proto, procs)
					f, err := os.Create(filepath.Join(jsonDir, name))
					if err != nil {
						return err
					}
					werr := res.Stats.WriteJSON(f)
					if cerr := f.Close(); werr == nil {
						werr = cerr
					}
					if werr != nil {
						return werr
					}
				}
			}
			if crash {
				fmt.Fprintf(tw, "\t%d\t%.2f", rehomed, detect.Micros()/1e3)
			}
			if profile == fault.ProfileCrashMgr {
				fmt.Fprintf(tw, "\t%d\t%d", mgrs, locks)
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// runFaulted is Run with a fault plan (uncached) and, for crash plans,
// single-replica home-state recovery.
func (r *Runner) runFaulted(app string, proto core.Protocol, procs int, plan fault.Plan) (*core.Result, error) {
	a, err := apps.New(app, r.Size)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Protocol:    proto,
		NumProcs:    procs,
		PageBytes:   r.PageBytes,
		GCThreshold: r.GCThreshold,
		Fault:       plan,
	}
	if len(plan.Crashes) > 0 {
		opts.Recovery = core.Recovery{Replicas: 1}
	}
	r.acquire()
	start := time.Now()
	res, err := core.Run(opts, a, false)
	r.release()
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s/p%d: %w", app, proto, procs, err)
	}
	r.progressf("# ran %s/%s/p%d (faulted): simulated %.1fs (%.2fs real)\n",
		app, proto, procs, res.Stats.Elapsed.Micros()/1e6, time.Since(start).Seconds())
	return res, nil
}
