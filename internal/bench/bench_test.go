package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gosvm/internal/apps"
	"gosvm/internal/core"
)

func testRunner() *Runner {
	r := NewRunner(apps.SizeTest)
	r.PageBytes = 1024
	r.Procs = []int{2, 4}
	return r
}

func TestRunnerMemoization(t *testing.T) {
	r := testRunner()
	a := r.Run("sor", core.ProtoHLRC, 4)
	b := r.Run("sor", core.ProtoHLRC, 4)
	if a != b {
		t.Fatal("identical runs not memoized")
	}
	c := r.Run("sor", core.ProtoLRC, 4)
	if a == c {
		t.Fatal("different protocols share a cache entry")
	}
}

func TestRunnerSeqIgnoresProcs(t *testing.T) {
	r := testRunner()
	a := r.Run("sor", core.ProtoSeq, 4)
	b := r.Seq("sor")
	if a != b {
		t.Fatal("seq runs with different proc counts not unified")
	}
}

func TestSpeedupPositive(t *testing.T) {
	r := testRunner()
	s := r.Speedup("sor", core.ProtoHLRC, 4)
	if s <= 0 {
		t.Fatalf("speedup = %v", s)
	}
}

func TestTable2DataShape(t *testing.T) {
	r := testRunner()
	rows := r.Table2Data()
	if len(rows) != len(AppNames()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, p := range r.Procs {
			for _, proto := range core.Protocols {
				if row.Speedups[p][proto] <= 0 {
					t.Fatalf("%s/%s/p%d speedup missing", row.App, proto, p)
				}
			}
		}
	}
}

func TestTable4DataHomeEffect(t *testing.T) {
	r := testRunner()
	// One 8x8 test-size LU block per 512-byte page, so block owners are
	// page homes — the alignment the paper-size configuration has.
	r.PageBytes = 512
	rows := r.Table4Data()
	for _, row := range rows {
		if row.App == "lu" && row.Proto == core.ProtoHLRC && row.Counts.DiffsCreated != 0 {
			t.Fatalf("LU under HLRC created %d diffs (home effect broken)", row.Counts.DiffsCreated)
		}
	}
}

func TestTable5DataNonEmpty(t *testing.T) {
	r := testRunner()
	for _, row := range r.Table5Data(4) {
		if row.Msgs == 0 {
			t.Fatalf("%s/%s sent no messages", row.App, row.Proto)
		}
	}
}

func TestTable6HLRCBelowLRC(t *testing.T) {
	r := testRunner()
	rows := r.Table6Data()
	for i := 0; i < len(rows); i += 2 {
		lrc, hlrc := rows[i], rows[i+1]
		if lrc.App == "raytrace" {
			continue // tiny scene: fixed per-page vectors dominate both
		}
		if hlrc.ProtoPeakMB > lrc.ProtoPeakMB {
			t.Errorf("%s p%d: HLRC proto mem %.3f above LRC %.3f",
				lrc.App, lrc.Procs, hlrc.ProtoPeakMB, lrc.ProtoPeakMB)
		}
	}
}

func TestFig3BreakdownsSumToTotal(t *testing.T) {
	r := testRunner()
	for _, row := range r.Fig3Data() {
		sum := row.Compute + row.Data + row.GC + row.Lock + row.Barrier + row.Protocol
		if sum != row.Total {
			t.Fatalf("%s/%s/p%d breakdown sum %v != total %v", row.App, row.Proto, row.Procs, sum, row.Total)
		}
	}
}

func TestFig4DataPresent(t *testing.T) {
	r := testRunner()
	rows := r.Fig4Data()
	if len(rows) != 2*(8+32) {
		t.Fatalf("fig4 rows = %d, want %d", len(rows), 2*(8+32))
	}
	var activity float64
	for _, row := range rows {
		activity += row.Compute + row.Data + row.Lock + row.Protocol
	}
	if activity == 0 {
		t.Fatal("fig4 captured an empty phase")
	}
}

func TestSORZeroDirection(t *testing.T) {
	r := testRunner()
	lrc, hlrc, _ := r.SORZeroData(4)
	if lrc <= 0 || hlrc <= 0 {
		t.Fatal("sor-zero runs missing")
	}
}

func TestTableFormattingSmoke(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	r.Table1(&buf)
	r.Table2(&buf)
	Table3(&buf, 1024)
	r.Table4(&buf)
	r.Table5(&buf)
	r.Table6(&buf)
	r.Fig3(&buf)
	r.SORZero(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Figure 3", "§4.8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	for _, app := range AppNames() {
		if !strings.Contains(out, app) {
			t.Fatalf("output missing app %q", app)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	r := testRunner()
	var buf bytes.Buffer
	r.Ablations(&buf)
	for _, want := range []string{"eager diffs", "home placement", "interrupt cost", "page size", "GC threshold", "lock service", "AURC", "network model"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestFaultSweepSmoke(t *testing.T) {
	r := testRunner()
	r.Procs = []int{4}
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := r.FaultSweep(&buf, []string{"lossy", "crash"}, 3, dir); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`fault profile "lossy"`, `fault profile "crash"`, "rehomed", "detect(ms)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	// One JSON file per cell: 4 protocols for lossy, 2 for crash.
	files, err := filepath.Glob(filepath.Join(dir, "fault-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(AppNames()) * (4 + 2); len(files) != want {
		t.Fatalf("wrote %d JSON cells, want %d", len(files), want)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("cell %s is not valid JSON: %v", files[0], err)
	}
	if doc["protocol"] == "" || doc["elapsed_ns"] == nil {
		t.Fatalf("cell JSON missing core fields: %v", doc)
	}
}
