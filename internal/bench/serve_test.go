package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gosvm/internal/apps"
	"gosvm/internal/serve"
	"gosvm/internal/sim"
)

// serveSweepOpts is a small two-load sweep that brackets the capacity
// knee of the test machine sizes.
func serveSweepOpts() ServeSweepOpts {
	return ServeSweepOpts{
		Base: serve.Config{
			Keys:   256,
			Window: 20 * sim.Millisecond,
			Seed:   7,
		},
		Loads: []float64{400, 40_000},
		Seed:  7,
	}
}

func serveRunner(parallel int) *Runner {
	r := NewRunner(apps.SizeTest)
	r.Procs = []int{2, 4}
	r.Parallel = parallel
	return r
}

// TestServeSweepParallelDeterminism renders the serving sweep
// sequentially and with 8 workers and requires byte-identical tables and
// byte-identical per-cell JSON: host parallelism must be invisible.
func TestServeSweepParallelDeterminism(t *testing.T) {
	d1, d8 := t.TempDir(), t.TempDir()

	var t1, t8 bytes.Buffer
	if err := serveRunner(1).ServeSweep(&t1, serveSweepOpts(), d1); err != nil {
		t.Fatal(err)
	}
	if err := serveRunner(8).ServeSweep(&t8, serveSweepOpts(), d8); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t8.String() {
		t.Errorf("serve sweep table differs between -parallel 1 and -parallel 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s",
			t1.String(), t8.String())
	}

	names, err := filepath.Glob(filepath.Join(d1, "serve-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("sweep wrote no per-cell JSON")
	}
	for _, p1 := range names {
		name := filepath.Base(p1)
		b1, err := os.ReadFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := os.ReadFile(filepath.Join(d8, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b8) {
			t.Errorf("%s: per-cell JSON differs between -parallel 1 and -parallel 8", name)
		}
		if !bytes.Contains(b1, []byte(`"serve"`)) || !bytes.Contains(b1, []byte(`"latency"`)) {
			t.Errorf("%s: JSON missing serve/latency blocks", name)
		}
	}
}

// TestServeSweepSaturationColumns: the rendered table must flag every
// overload cell and no light-load cell.
func TestServeSweepSaturationColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := serveRunner(0).ServeSweep(&buf, serveSweepOpts(), ""); err != nil {
		t.Fatal(err)
	}
	var lightSat, heavyUnsat int
	for _, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "400":
			if strings.Contains(line, "SATURATED") {
				lightSat++
			}
		case "40000":
			if !strings.Contains(line, "SATURATED") {
				heavyUnsat++
			}
		}
	}
	if lightSat > 0 {
		t.Errorf("%d light-load cells flagged SATURATED", lightSat)
	}
	if heavyUnsat > 0 {
		t.Errorf("%d overload cells not flagged SATURATED", heavyUnsat)
	}
}

// TestServeSweepCrashProfile: composing the crash profile narrows the
// protocol columns to the home-based pair and reports recovery columns.
func TestServeSweepCrashProfile(t *testing.T) {
	o := serveSweepOpts()
	o.Loads = []float64{400}
	o.Profile = "crash"
	o.Base.Window = 40 * sim.Millisecond // span the crash and revival
	r := serveRunner(0)
	r.Procs = []int{4}
	var buf bytes.Buffer
	if err := r.ServeSweep(&buf, o, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"Rehomed", "Recovery(ms)", "Retries"} {
		if !strings.Contains(out, col) {
			t.Errorf("crash sweep table missing %q column:\n%s", col, out)
		}
	}
	if strings.Contains(out, "\tlrc\t") || strings.Contains(out, " lrc ") {
		t.Errorf("crash sweep ran the homeless protocols:\n%s", out)
	}
}

// TestServeSweepRejectsEmptyLoads guards the sweep's input validation.
func TestServeSweepRejectsEmptyLoads(t *testing.T) {
	o := serveSweepOpts()
	o.Loads = nil
	if err := serveRunner(0).ServeSweep(&bytes.Buffer{}, o, ""); err == nil {
		t.Error("ServeSweep accepted an empty load axis")
	}
}
