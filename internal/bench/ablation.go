package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// runWith executes one uncached run with custom options.
func (r *Runner) runWith(app string, opts core.Options) *core.Result {
	a, err := apps.New(app, r.Size)
	if err != nil {
		panic(err)
	}
	r.acquire()
	defer r.release()
	res, err := core.Run(opts, a, false)
	if err != nil {
		panic(fmt.Sprintf("bench: ablation %s/%s: %v", app, opts.Protocol, err))
	}
	return res
}

func (r *Runner) baseOpts(proto core.Protocol, procs int) core.Options {
	return core.Options{
		Protocol:    proto,
		NumProcs:    procs,
		PageBytes:   r.PageBytes,
		GCThreshold: r.GCThreshold,
		RunWorkers:  r.RunWorkers,
	}
}

// AblationEagerDiff compares lazy vs eager diff creation under LRC.
func (r *Runner) AblationEagerDiff(w io.Writer, app string, procs int) (lazy, eager sim.Time) {
	opts := r.baseOpts(core.ProtoLRC, procs)
	opts.EagerDiff = true
	r.inParallel(
		func() { lazy = r.Run(app, core.ProtoLRC, procs).Stats.Elapsed },
		func() { eager = r.runWith(app, opts).Stats.Elapsed },
	)
	fmt.Fprintf(w, "Ablation (eager diffs, LRC, %s, %d nodes): lazy %ss, eager %ss\n",
		app, procs, seconds(lazy), seconds(eager))
	return lazy, eager
}

// AblationHomePlacement compares application-directed home placement with
// blind round-robin under HLRC.
func (r *Runner) AblationHomePlacement(w io.Writer, app string, procs int) (directed, roundRobin sim.Time) {
	opts := r.baseOpts(core.ProtoHLRC, procs)
	opts.HomeRoundRobin = true
	r.inParallel(
		func() { directed = r.Run(app, core.ProtoHLRC, procs).Stats.Elapsed },
		func() { roundRobin = r.runWith(app, opts).Stats.Elapsed },
	)
	fmt.Fprintf(w, "Ablation (home placement, HLRC, %s, %d nodes): app-directed %ss, round-robin %ss\n",
		app, procs, seconds(directed), seconds(roundRobin))
	return directed, roundRobin
}

// AblationInterruptCost measures the LRC-vs-HLRC gap as the receive
// interrupt cost shrinks towards modern-network values — the paper's §4.8
// discussion that faster interrupts narrow the gap.
func (r *Runner) AblationInterruptCost(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (interrupt cost, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Interrupt (us)\tLRC (s)\tHLRC (s)\tHLRC advantage")
	intrs := []sim.Time{690, 100, 10}
	ls := make([]sim.Time, len(intrs))
	hs := make([]sim.Time, len(intrs))
	r.forEach(2*len(intrs), func(i int) {
		intr := intrs[i/2]
		costs := paragon.DefaultCosts()
		costs.ReceiveInterrupt = intr * sim.Microsecond
		if i%2 == 0 {
			opts := r.baseOpts(core.ProtoLRC, procs)
			opts.Costs = costs
			ls[i/2] = r.runWith(app, opts).Stats.Elapsed
		} else {
			opts := r.baseOpts(core.ProtoHLRC, procs)
			opts.Costs = costs
			hs[i/2] = r.runWith(app, opts).Stats.Elapsed
		}
	})
	for i, intr := range intrs {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\n",
			intr, seconds(ls[i]), seconds(hs[i]), (float64(ls[i])/float64(hs[i])-1)*100)
	}
	tw.Flush()
}

// AblationPageSize compares 4KB and 8KB pages under HLRC and LRC.
func (r *Runner) AblationPageSize(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (page size, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Page (B)\tLRC (s)\tHLRC (s)")
	pbs := []int{4096, 8192}
	times := make([]sim.Time, 2*len(pbs))
	r.forEach(len(times), func(i int) {
		proto := core.ProtoLRC
		if i%2 == 1 {
			proto = core.ProtoHLRC
		}
		opts := r.baseOpts(proto, procs)
		opts.PageBytes = pbs[i/2]
		times[i] = r.runWith(app, opts).Stats.Elapsed
	})
	for i, pb := range pbs {
		fmt.Fprintf(tw, "%d\t%s\t%s\n", pb, seconds(times[2*i]), seconds(times[2*i+1]))
	}
	tw.Flush()
}

// AblationGCThreshold shows the LRC time/memory trade-off of the garbage
// collection trigger.
func (r *Runner) AblationGCThreshold(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (GC threshold, LRC, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Threshold (MB)\tTime (s)\tGC time (s)\tPeak proto mem (MB)\tGCs")
	thrs := []int64{1 << 20, 8 << 20, 256 << 20}
	ress := make([]*core.Result, len(thrs))
	r.forEach(len(thrs), func(i int) {
		opts := r.baseOpts(core.ProtoLRC, procs)
		opts.GCThreshold = thrs[i]
		ress[i] = r.runWith(app, opts)
	})
	for i, thr := range thrs {
		res := ress[i]
		avg := res.Stats.AvgNode()
		var gcs int64
		for _, nd := range res.Stats.Nodes {
			gcs += nd.Counts.GCs
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%s\t%d\n",
			thr>>20, seconds(res.Stats.Elapsed), avg.Time[stats.CatGC].Micros()/1e6,
			mb(res.Stats.PeakProtoMem()), gcs)
	}
	tw.Flush()
}

// AblationOverlapLocks measures the §4.3 extension: synchronization
// serviced by the co-processor under OHLRC.
func (r *Runner) AblationOverlapLocks(w io.Writer, app string, procs int) (base, overlapped sim.Time) {
	opts := r.baseOpts(core.ProtoOHLRC, procs)
	opts.OverlapLocks = true
	r.inParallel(
		func() { base = r.Run(app, core.ProtoOHLRC, procs).Stats.Elapsed },
		func() { overlapped = r.runWith(app, opts).Stats.Elapsed },
	)
	fmt.Fprintf(w, "Ablation (co-processor lock service, OHLRC, %s, %d nodes): compute-serviced %ss, coproc-serviced %ss\n",
		app, procs, seconds(base), seconds(overlapped))
	return base, overlapped
}

// AblationMesh compares the crossbar network model with the link-level
// 2-D wormhole mesh under HLRC.
func (r *Runner) AblationMesh(w io.Writer, app string, procs int) (crossbar, meshTime sim.Time) {
	opts := r.baseOpts(core.ProtoHLRC, procs)
	opts.Mesh = true
	r.inParallel(
		func() { crossbar = r.Run(app, core.ProtoHLRC, procs).Stats.Elapsed },
		func() { meshTime = r.runWith(app, opts).Stats.Elapsed },
	)
	fmt.Fprintf(w, "Ablation (network model, HLRC, %s, %d nodes): crossbar %ss, 2-D mesh %ss\n",
		app, procs, seconds(crossbar), seconds(meshTime))
	return crossbar, meshTime
}

// AblationAURC compares the AURC hardware emulation against HLRC and LRC:
// the comparison that motivated HLRC's design (AURC's update propagation
// is free but needs hardware; HLRC pays diffing costs in software).
func (r *Runner) AblationAURC(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (AURC hardware emulation, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Protocol\tTime (s)\tUpdate traffic (MB)")
	protos := []core.Protocol{core.ProtoLRC, core.ProtoHLRC, core.ProtoAURC}
	ress := make([]*core.Result, len(protos))
	r.forEach(len(protos), func(i int) {
		if protos[i] == core.ProtoAURC {
			ress[i] = r.runWith(app, r.baseOpts(protos[i], procs))
		} else {
			ress[i] = r.Run(app, protos[i], procs)
		}
	})
	for i, proto := range protos {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", proto, seconds(ress[i].Stats.Elapsed),
			mb(ress[i].Stats.TotalBytes(stats.ClassData)))
	}
	tw.Flush()
}

// Ablations runs the full ablation suite on a representative subset.
func (r *Runner) Ablations(w io.Writer) {
	procs := r.Procs[len(r.Procs)-1]
	r.AblationEagerDiff(w, "water-nsq", procs)
	r.AblationHomePlacement(w, "sor", procs)
	r.AblationInterruptCost(w, "water-nsq", procs)
	r.AblationPageSize(w, "water-nsq", procs)
	r.AblationGCThreshold(w, "water-nsq", procs)
	r.AblationOverlapLocks(w, "water-nsq", procs)
	r.AblationAURC(w, "water-nsq", procs)
	r.AblationMesh(w, "water-nsq", procs)
}
