package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gosvm/internal/apps"
	"gosvm/internal/core"
	"gosvm/internal/paragon"
	"gosvm/internal/sim"
	"gosvm/internal/stats"
)

// runWith executes one uncached run with custom options.
func (r *Runner) runWith(app string, opts core.Options) *core.Result {
	a, err := apps.New(app, r.Size)
	if err != nil {
		panic(err)
	}
	res, err := core.Run(opts, a, false)
	if err != nil {
		panic(fmt.Sprintf("bench: ablation %s/%s: %v", app, opts.Protocol, err))
	}
	return res
}

func (r *Runner) baseOpts(proto core.Protocol, procs int) core.Options {
	return core.Options{
		Protocol:    proto,
		NumProcs:    procs,
		PageBytes:   r.PageBytes,
		GCThreshold: r.GCThreshold,
	}
}

// AblationEagerDiff compares lazy vs eager diff creation under LRC.
func (r *Runner) AblationEagerDiff(w io.Writer, app string, procs int) (lazy, eager sim.Time) {
	lazy = r.Run(app, core.ProtoLRC, procs).Stats.Elapsed
	opts := r.baseOpts(core.ProtoLRC, procs)
	opts.EagerDiff = true
	eager = r.runWith(app, opts).Stats.Elapsed
	fmt.Fprintf(w, "Ablation (eager diffs, LRC, %s, %d nodes): lazy %ss, eager %ss\n",
		app, procs, seconds(lazy), seconds(eager))
	return lazy, eager
}

// AblationHomePlacement compares application-directed home placement with
// blind round-robin under HLRC.
func (r *Runner) AblationHomePlacement(w io.Writer, app string, procs int) (directed, roundRobin sim.Time) {
	directed = r.Run(app, core.ProtoHLRC, procs).Stats.Elapsed
	opts := r.baseOpts(core.ProtoHLRC, procs)
	opts.HomeRoundRobin = true
	roundRobin = r.runWith(app, opts).Stats.Elapsed
	fmt.Fprintf(w, "Ablation (home placement, HLRC, %s, %d nodes): app-directed %ss, round-robin %ss\n",
		app, procs, seconds(directed), seconds(roundRobin))
	return directed, roundRobin
}

// AblationInterruptCost measures the LRC-vs-HLRC gap as the receive
// interrupt cost shrinks towards modern-network values — the paper's §4.8
// discussion that faster interrupts narrow the gap.
func (r *Runner) AblationInterruptCost(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (interrupt cost, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Interrupt (us)\tLRC (s)\tHLRC (s)\tHLRC advantage")
	for _, intr := range []sim.Time{690, 100, 10} {
		costs := paragon.DefaultCosts()
		costs.ReceiveInterrupt = intr * sim.Microsecond
		optsL := r.baseOpts(core.ProtoLRC, procs)
		optsL.Costs = costs
		optsH := r.baseOpts(core.ProtoHLRC, procs)
		optsH.Costs = costs
		l := r.runWith(app, optsL).Stats.Elapsed
		h := r.runWith(app, optsH).Stats.Elapsed
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\n",
			intr, seconds(l), seconds(h), (float64(l)/float64(h)-1)*100)
	}
	tw.Flush()
}

// AblationPageSize compares 4KB and 8KB pages under HLRC and LRC.
func (r *Runner) AblationPageSize(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (page size, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Page (B)\tLRC (s)\tHLRC (s)")
	for _, pb := range []int{4096, 8192} {
		optsL := r.baseOpts(core.ProtoLRC, procs)
		optsL.PageBytes = pb
		optsH := r.baseOpts(core.ProtoHLRC, procs)
		optsH.PageBytes = pb
		fmt.Fprintf(tw, "%d\t%s\t%s\n", pb,
			seconds(r.runWith(app, optsL).Stats.Elapsed),
			seconds(r.runWith(app, optsH).Stats.Elapsed))
	}
	tw.Flush()
}

// AblationGCThreshold shows the LRC time/memory trade-off of the garbage
// collection trigger.
func (r *Runner) AblationGCThreshold(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (GC threshold, LRC, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Threshold (MB)\tTime (s)\tGC time (s)\tPeak proto mem (MB)\tGCs")
	for _, thr := range []int64{1 << 20, 8 << 20, 256 << 20} {
		opts := r.baseOpts(core.ProtoLRC, procs)
		opts.GCThreshold = thr
		res := r.runWith(app, opts)
		avg := res.Stats.AvgNode()
		var gcs int64
		for _, nd := range res.Stats.Nodes {
			gcs += nd.Counts.GCs
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%s\t%d\n",
			thr>>20, seconds(res.Stats.Elapsed), avg.Time[stats.CatGC].Micros()/1e6,
			mb(res.Stats.PeakProtoMem()), gcs)
	}
	tw.Flush()
}

// AblationOverlapLocks measures the §4.3 extension: synchronization
// serviced by the co-processor under OHLRC.
func (r *Runner) AblationOverlapLocks(w io.Writer, app string, procs int) (base, overlapped sim.Time) {
	base = r.Run(app, core.ProtoOHLRC, procs).Stats.Elapsed
	opts := r.baseOpts(core.ProtoOHLRC, procs)
	opts.OverlapLocks = true
	overlapped = r.runWith(app, opts).Stats.Elapsed
	fmt.Fprintf(w, "Ablation (co-processor lock service, OHLRC, %s, %d nodes): compute-serviced %ss, coproc-serviced %ss\n",
		app, procs, seconds(base), seconds(overlapped))
	return base, overlapped
}

// AblationMesh compares the crossbar network model with the link-level
// 2-D wormhole mesh under HLRC.
func (r *Runner) AblationMesh(w io.Writer, app string, procs int) (crossbar, meshTime sim.Time) {
	crossbar = r.Run(app, core.ProtoHLRC, procs).Stats.Elapsed
	opts := r.baseOpts(core.ProtoHLRC, procs)
	opts.Mesh = true
	meshTime = r.runWith(app, opts).Stats.Elapsed
	fmt.Fprintf(w, "Ablation (network model, HLRC, %s, %d nodes): crossbar %ss, 2-D mesh %ss\n",
		app, procs, seconds(crossbar), seconds(meshTime))
	return crossbar, meshTime
}

// AblationAURC compares the AURC hardware emulation against HLRC and LRC:
// the comparison that motivated HLRC's design (AURC's update propagation
// is free but needs hardware; HLRC pays diffing costs in software).
func (r *Runner) AblationAURC(w io.Writer, app string, procs int) {
	fmt.Fprintf(w, "Ablation (AURC hardware emulation, %s, %d nodes):\n", app, procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Protocol\tTime (s)\tUpdate traffic (MB)")
	for _, proto := range []core.Protocol{core.ProtoLRC, core.ProtoHLRC, core.ProtoAURC} {
		var res *core.Result
		if proto == core.ProtoAURC {
			res = r.runWith(app, r.baseOpts(proto, procs))
		} else {
			res = r.Run(app, proto, procs)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", proto, seconds(res.Stats.Elapsed),
			mb(res.Stats.TotalBytes(stats.ClassData)))
	}
	tw.Flush()
}

// Ablations runs the full ablation suite on a representative subset.
func (r *Runner) Ablations(w io.Writer) {
	procs := r.Procs[len(r.Procs)-1]
	r.AblationEagerDiff(w, "water-nsq", procs)
	r.AblationHomePlacement(w, "sor", procs)
	r.AblationInterruptCost(w, "water-nsq", procs)
	r.AblationPageSize(w, "water-nsq", procs)
	r.AblationGCThreshold(w, "water-nsq", procs)
	r.AblationOverlapLocks(w, "water-nsq", procs)
	r.AblationAURC(w, "water-nsq", procs)
	r.AblationMesh(w, "water-nsq", procs)
}
