package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// AppendJSON appends v to the JSON entry array at path, rewriting the
// file. Existing entries are kept as raw bytes, so tools with different
// entry shapes (svmperf trajectory entries, svmbench scale entries) can
// share one file without dropping each other's fields. "-" encodes the
// single entry to stdout instead.
func AppendJSON(path string, v any) error {
	enc := func(w io.Writer, x any) error {
		j := json.NewEncoder(w)
		j.SetIndent("", "  ")
		return j.Encode(x)
	}
	if path == "-" {
		return enc(os.Stdout, v)
	}
	var entries []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("bench: %s exists but is not a JSON entry array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.MarshalIndent(v, "  ", "  ")
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := enc(f, entries)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
