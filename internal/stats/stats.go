// Package stats collects per-node execution statistics for SVM runs: the
// execution-time breakdowns of the paper's Figure 3/4, the operation
// counts of Table 4, the communication traffic of Table 5, and the
// protocol memory requirements of Table 6.
package stats

import "gosvm/internal/sim"

// Category classifies where a node's compute processor spends its time,
// matching the stacked bars of the paper's Figure 3.
type Category int

const (
	// CatCompute is useful application computation.
	CatCompute Category = iota
	// CatData is time spent stalled on shared-data misses: the page
	// fault itself plus the wait for diffs or pages to arrive.
	CatData
	// CatGC is time spent in homeless-protocol garbage collection.
	CatGC
	// CatLock is time spent waiting for lock acquisition.
	CatLock
	// CatBarrier is time spent waiting at barriers.
	CatBarrier
	// CatProtocol is protocol overhead: twin creation, diff creation and
	// application, write-notice handling, and servicing remote requests
	// (interrupt time stolen from computation).
	CatProtocol

	NumCategories
)

var categoryNames = [NumCategories]string{
	"compute", "data", "gc", "lock", "barrier", "protocol",
}

func (c Category) String() string { return categoryNames[c] }

// Class classifies network traffic, matching the paper's Table 5 split.
type Class int

const (
	// ClassData is update traffic: diffs and full pages.
	ClassData Class = iota
	// ClassProtocol is everything else: requests, write notices, vector
	// timestamps, lock and barrier messages.
	ClassProtocol

	NumClasses
)

func (c Class) String() string {
	if c == ClassData {
		return "data"
	}
	return "protocol"
}

// Counters are the per-node protocol event counts reported in Table 4.
type Counters struct {
	ReadMisses   int64 // read faults on invalid pages
	WriteFaults  int64 // protection faults for write detection
	DiffsCreated int64
	DiffsApplied int64
	PagesFetched int64 // full-page transfers received
	LockAcquires int64 // remote lock acquires
	LockForwards int64 // acquire requests this node forwarded past itself to the token holder
	Prefetches   int64 // asynchronous page prefetches issued (serving fast path)
	Barriers     int64
	GCs          int64 // garbage collections participated in

	// Fault-injection / reliability-layer counters. All zero in a
	// fault-free run.
	Retries        int64 // transport retransmissions issued by this node
	DupsSuppressed int64 // duplicate deliveries deduped at this node
	MsgsDropped    int64 // copies the faulty network ate (sent by this node)
	LinkDrops      int64 // copies eaten mid-route by a mesh link (subset of MsgsDropped)

	// PagesRehomed counts pages this node adopted as their new home
	// after the previous home crashed. Zero without crash recovery.
	PagesRehomed int64
	// MgrsRehomed counts synchronization-manager roles (lock-manager
	// slots, the barrier manager) this node adopted after the previous
	// holder crashed. Zero without crash recovery.
	MgrsRehomed int64
	// LocksReclaimed counts free lock tokens a manager revoked from a
	// crashed owner so waiting acquirers could proceed at detection time
	// instead of waiting out the outage.
	LocksReclaimed int64
}

// Node accumulates statistics for one simulated node.
type Node struct {
	Time    [NumCategories]sim.Time
	Counts  Counters
	MsgsOut [NumClasses]int64
	Bytes   [NumClasses]int64

	// MsgsIn counts unsolicited messages serviced by this node's
	// dispatchers (requests that cost an interrupt or a co-processor
	// service slot; replies to this node's own requests bypass the
	// dispatchers and are not counted). The per-node spread of MsgsIn is
	// the home hot-spot metric: a skewed home assignment concentrates
	// fetch/flush service on a few nodes.
	MsgsIn int64

	// Protocol memory accounting (diffs, twins, write notices, interval
	// records, timestamps). Peak is the high-water mark.
	ProtoMem     int64
	ProtoMemPeak int64
	// AppMem is the shared application memory instantiated on this node.
	AppMem int64

	// Recovery is simulated time spent recovering lost messages: for each
	// message that needed retransmission, the span from first send to
	// final acknowledgement. Zero in a fault-free run.
	Recovery sim.Time

	// ReplicaBytes counts home-state replication traffic sent by this
	// node (mirrored diffs, checkpoint pages). Zero without recovery.
	ReplicaBytes int64
	// MirrorBytes counts synchronization-manager replication traffic
	// sent by this node (lock-owner updates, barrier arrivals mirrored
	// to manager backups). Zero without recovery.
	MirrorBytes int64
	// Detect is the failure-detection latency observed by this node:
	// crash time to the moment this node declared the victim dead. Zero
	// unless this node was the reporter.
	Detect sim.Time
}

// Add charges d to category c.
func (n *Node) Add(c Category, d sim.Time) { n.Time[c] += d }

// Sent records one outgoing message of wire size bytes.
func (n *Node) Sent(c Class, bytes int) {
	n.MsgsOut[c]++
	n.Bytes[c] += int64(bytes)
}

// MemAlloc records allocation of protocol metadata.
func (n *Node) MemAlloc(bytes int64) {
	n.ProtoMem += bytes
	if n.ProtoMem > n.ProtoMemPeak {
		n.ProtoMemPeak = n.ProtoMem
	}
}

// MemFree records release of protocol metadata.
func (n *Node) MemFree(bytes int64) {
	n.ProtoMem -= bytes
	if n.ProtoMem < 0 {
		panic("stats: protocol memory accounting went negative")
	}
}

// Total returns the sum of all time categories.
func (n *Node) Total() sim.Time {
	var t sim.Time
	for _, d := range n.Time {
		t += d
	}
	return t
}

// Snapshot returns a copy of the node stats, used for inter-barrier phase
// capture (Figure 4).
func (n *Node) Snapshot() Node { return *n }

// Sub returns the component-wise difference n - o.
func (n Node) Sub(o Node) Node {
	var d Node
	for i := range n.Time {
		d.Time[i] = n.Time[i] - o.Time[i]
	}
	d.Counts = Counters{
		ReadMisses:     n.Counts.ReadMisses - o.Counts.ReadMisses,
		WriteFaults:    n.Counts.WriteFaults - o.Counts.WriteFaults,
		DiffsCreated:   n.Counts.DiffsCreated - o.Counts.DiffsCreated,
		DiffsApplied:   n.Counts.DiffsApplied - o.Counts.DiffsApplied,
		PagesFetched:   n.Counts.PagesFetched - o.Counts.PagesFetched,
		LockAcquires:   n.Counts.LockAcquires - o.Counts.LockAcquires,
		LockForwards:   n.Counts.LockForwards - o.Counts.LockForwards,
		Prefetches:     n.Counts.Prefetches - o.Counts.Prefetches,
		Barriers:       n.Counts.Barriers - o.Counts.Barriers,
		GCs:            n.Counts.GCs - o.Counts.GCs,
		Retries:        n.Counts.Retries - o.Counts.Retries,
		DupsSuppressed: n.Counts.DupsSuppressed - o.Counts.DupsSuppressed,
		MsgsDropped:    n.Counts.MsgsDropped - o.Counts.MsgsDropped,
		LinkDrops:      n.Counts.LinkDrops - o.Counts.LinkDrops,
		PagesRehomed:   n.Counts.PagesRehomed - o.Counts.PagesRehomed,
		MgrsRehomed:    n.Counts.MgrsRehomed - o.Counts.MgrsRehomed,
		LocksReclaimed: n.Counts.LocksReclaimed - o.Counts.LocksReclaimed,
	}
	for i := range n.MsgsOut {
		d.MsgsOut[i] = n.MsgsOut[i] - o.MsgsOut[i]
		d.Bytes[i] = n.Bytes[i] - o.Bytes[i]
	}
	d.MsgsIn = n.MsgsIn - o.MsgsIn
	d.ProtoMem = n.ProtoMem - o.ProtoMem
	d.ProtoMemPeak = n.ProtoMemPeak
	d.AppMem = n.AppMem
	d.Recovery = n.Recovery - o.Recovery
	d.ReplicaBytes = n.ReplicaBytes - o.ReplicaBytes
	d.MirrorBytes = n.MirrorBytes - o.MirrorBytes
	d.Detect = n.Detect
	return d
}

// Run aggregates a whole execution: per-node stats plus end-to-end times.
type Run struct {
	Protocol  string
	App       string
	Nodes     []*Node
	Elapsed   sim.Time // parallel execution time (max over procs)
	SeqTime   sim.Time // sequential reference time, if measured
	PhaseCaps []Phase  // optional inter-barrier captures

	// Serve is the open-loop serving workload's latency/throughput block
	// (offered vs. achieved rate, tail-latency histogram, saturation).
	// Nil for the closed-loop batch kernels.
	Serve *ServeStats
}

// Phase is the per-node delta between two consecutive barriers.
type Phase struct {
	Barrier int // index of the barrier that *ended* the phase
	PerNode []Node
}

// Speedup returns SeqTime/Elapsed, or 0 if either is unknown.
func (r *Run) Speedup() float64 {
	if r.SeqTime == 0 || r.Elapsed == 0 {
		return 0
	}
	return float64(r.SeqTime) / float64(r.Elapsed)
}

// AvgNode returns the mean of the per-node statistics.
func (r *Run) AvgNode() Node {
	var avg Node
	n := int64(len(r.Nodes))
	if n == 0 {
		return avg
	}
	var sum Node
	for _, nd := range r.Nodes {
		for i := range sum.Time {
			sum.Time[i] += nd.Time[i]
		}
		sum.Counts.ReadMisses += nd.Counts.ReadMisses
		sum.Counts.WriteFaults += nd.Counts.WriteFaults
		sum.Counts.DiffsCreated += nd.Counts.DiffsCreated
		sum.Counts.DiffsApplied += nd.Counts.DiffsApplied
		sum.Counts.PagesFetched += nd.Counts.PagesFetched
		sum.Counts.LockAcquires += nd.Counts.LockAcquires
		sum.Counts.LockForwards += nd.Counts.LockForwards
		sum.Counts.Prefetches += nd.Counts.Prefetches
		sum.Counts.Barriers += nd.Counts.Barriers
		sum.Counts.GCs += nd.Counts.GCs
		sum.Counts.Retries += nd.Counts.Retries
		sum.Counts.DupsSuppressed += nd.Counts.DupsSuppressed
		sum.Counts.MsgsDropped += nd.Counts.MsgsDropped
		sum.Counts.LinkDrops += nd.Counts.LinkDrops
		sum.Counts.PagesRehomed += nd.Counts.PagesRehomed
		sum.Counts.MgrsRehomed += nd.Counts.MgrsRehomed
		sum.Counts.LocksReclaimed += nd.Counts.LocksReclaimed
		for i := range sum.MsgsOut {
			sum.MsgsOut[i] += nd.MsgsOut[i]
			sum.Bytes[i] += nd.Bytes[i]
		}
		sum.MsgsIn += nd.MsgsIn
		sum.ProtoMemPeak += nd.ProtoMemPeak
		sum.AppMem += nd.AppMem
		sum.Recovery += nd.Recovery
		sum.ReplicaBytes += nd.ReplicaBytes
		sum.MirrorBytes += nd.MirrorBytes
		if nd.Detect > sum.Detect {
			sum.Detect = nd.Detect
		}
	}
	for i := range avg.Time {
		avg.Time[i] = sum.Time[i] / sim.Time(n)
	}
	avg.Counts.ReadMisses = sum.Counts.ReadMisses / n
	avg.Counts.WriteFaults = sum.Counts.WriteFaults / n
	avg.Counts.DiffsCreated = sum.Counts.DiffsCreated / n
	avg.Counts.DiffsApplied = sum.Counts.DiffsApplied / n
	avg.Counts.PagesFetched = sum.Counts.PagesFetched / n
	avg.Counts.LockAcquires = sum.Counts.LockAcquires / n
	avg.Counts.LockForwards = sum.Counts.LockForwards / n
	avg.Counts.Prefetches = sum.Counts.Prefetches / n
	avg.Counts.Barriers = sum.Counts.Barriers / n
	avg.Counts.GCs = sum.Counts.GCs / n
	avg.Counts.Retries = sum.Counts.Retries / n
	avg.Counts.DupsSuppressed = sum.Counts.DupsSuppressed / n
	avg.Counts.MsgsDropped = sum.Counts.MsgsDropped / n
	avg.Counts.LinkDrops = sum.Counts.LinkDrops / n
	avg.Counts.PagesRehomed = sum.Counts.PagesRehomed / n
	avg.Counts.MgrsRehomed = sum.Counts.MgrsRehomed / n
	avg.Counts.LocksReclaimed = sum.Counts.LocksReclaimed / n
	for i := range avg.MsgsOut {
		avg.MsgsOut[i] = sum.MsgsOut[i] / n
		avg.Bytes[i] = sum.Bytes[i] / n
	}
	avg.MsgsIn = sum.MsgsIn / n
	avg.ProtoMemPeak = sum.ProtoMemPeak / n
	avg.AppMem = sum.AppMem / n
	avg.Recovery = sum.Recovery / sim.Time(n)
	avg.ReplicaBytes = sum.ReplicaBytes / n
	avg.MirrorBytes = sum.MirrorBytes / n
	avg.Detect = sum.Detect // max, not mean: the run's detection latency
	return avg
}

// TotalMsgs returns the total number of messages sent in the run.
func (r *Run) TotalMsgs() int64 {
	var t int64
	for _, nd := range r.Nodes {
		for _, m := range nd.MsgsOut {
			t += m
		}
	}
	return t
}

// TotalBytes returns total bytes sent in the given class.
func (r *Run) TotalBytes(c Class) int64 {
	var t int64
	for _, nd := range r.Nodes {
		t += nd.Bytes[c]
	}
	return t
}

// PeakProtoMem returns the per-node maximum protocol memory high-water
// mark across the run.
func (r *Run) PeakProtoMem() int64 {
	var m int64
	for _, nd := range r.Nodes {
		if nd.ProtoMemPeak > m {
			m = nd.ProtoMemPeak
		}
	}
	return m
}

// TotalAppMem returns the shared application memory across all nodes.
func (r *Run) TotalAppMem() int64 {
	var t int64
	for _, nd := range r.Nodes {
		t += nd.AppMem
	}
	return t
}
