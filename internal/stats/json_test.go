package stats

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunJSON(t *testing.T) {
	a := &Node{}
	a.Add(CatCompute, 100)
	a.Add(CatBarrier, 40)
	a.Counts.ReadMisses = 5
	a.Counts.Retries = 2
	a.Counts.DupsSuppressed = 1
	a.Counts.MsgsDropped = 3
	a.Recovery = 777
	a.Sent(ClassData, 1000)
	a.MemAlloc(500)
	b := &Node{}
	b.Add(CatCompute, 300)
	b.Sent(ClassProtocol, 200)
	r := &Run{Protocol: "hlrc", App: "sor", Nodes: []*Node{a, b}, Elapsed: 400, SeqTime: 800}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		App       string  `json:"app"`
		Protocol  string  `json:"protocol"`
		Procs     int     `json:"procs"`
		ElapsedNs int64   `json:"elapsed_ns"`
		SeqNs     int64   `json:"seq_ns"`
		Speedup   float64 `json:"speedup"`
		TotalMsgs int64   `json:"total_msgs"`
		DataBytes int64   `json:"data_bytes"`
		Nodes     []struct {
			TimeNs     map[string]int64 `json:"time_ns"`
			Counts     map[string]int64 `json:"counts"`
			RecoveryNs int64            `json:"recovery_ns"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.App != "sor" || got.Protocol != "hlrc" || got.Procs != 2 {
		t.Fatalf("header wrong: %+v", got)
	}
	if got.ElapsedNs != 400 || got.SeqNs != 800 || got.Speedup != 2 {
		t.Fatalf("times wrong: %+v", got)
	}
	if got.TotalMsgs != 2 || got.DataBytes != 1000 {
		t.Fatalf("totals wrong: %+v", got)
	}
	if len(got.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(got.Nodes))
	}
	n0 := got.Nodes[0]
	if n0.TimeNs["compute"] != 100 || n0.TimeNs["barrier"] != 40 {
		t.Fatalf("node time map wrong: %+v", n0.TimeNs)
	}
	if n0.Counts["read_misses"] != 5 || n0.Counts["retries"] != 2 ||
		n0.Counts["dups_suppressed"] != 1 || n0.Counts["msgs_dropped"] != 3 {
		t.Fatalf("node counts wrong: %+v", n0.Counts)
	}
	if n0.RecoveryNs != 777 {
		t.Fatalf("recovery = %d", n0.RecoveryNs)
	}

	// Byte-identical on re-marshal: the output must be deterministic.
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON output is not deterministic")
	}
}
