package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"

	"gosvm/internal/sim"
)

// Hist is an HDR-style log-bucketed latency histogram for per-operation
// service times on the simulated clock. Values below histSubCount
// nanoseconds land in exact unit-width buckets; each octave above that
// is split into histSubCount/2 linear sub-buckets, bounding the relative
// quantization error at 2/histSubCount (~3%) while keeping the bucket
// array small and fixed-size. Recording is O(1) and allocation-free;
// merging and quantile extraction are linear in the bucket count.
//
// The zero value is not ready to use; call NewHist.
type Hist struct {
	counts []int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

const (
	// histSubBits fixes the sub-bucket resolution: 2^histSubBits unit
	// buckets at the bottom, 2^(histSubBits-1) sub-buckets per octave
	// above.
	histSubBits  = 6
	histSubCount = 1 << histSubBits // 64

	// histOctaves covers values up to 2^62 ns (~146 simulated years),
	// far beyond any run length.
	histOctaves = 63 - histSubBits

	histBuckets = histSubCount + histOctaves*histSubCount/2
)

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]int64, histBuckets), min: -1}
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	m := bits.Len64(u) - 1 // 2^m <= u < 2^(m+1), m >= histSubBits
	oct := m - histSubBits
	sub := (u - 1<<uint(m)) >> uint(m-histSubBits+1)
	return histSubCount + oct*histSubCount/2 + int(sub)
}

// BucketBounds returns the half-open value range [lo, hi) of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i < histSubCount {
		return int64(i), int64(i) + 1
	}
	j := i - histSubCount
	m := histSubBits + j/(histSubCount/2)
	sub := int64(j % (histSubCount / 2))
	width := int64(1) << uint(m-histSubBits+1)
	lo = 1<<uint(m) + sub*width
	hi = lo + width
	if hi < lo {
		hi = math.MaxInt64 // the top bucket clips at the int64 ceiling
	}
	return lo, hi
}

// Record adds one sample. Negative samples are clamped to zero (they can
// only arise from programming errors upstream; clamping keeps the
// histogram total consistent with the op count).
func (h *Hist) Record(v sim.Time) {
	n := int64(v)
	if n < 0 {
		n = 0
	}
	h.counts[bucketOf(n)]++
	h.count++
	h.sum += n
	if h.min < 0 || n < h.min {
		h.min = n
	}
	if n > h.max {
		h.max = n
	}
}

// Merge folds o into h. Merging preserves exact counts, sums, and
// min/max; quantiles of the merged histogram carry the same bounded
// bucket error as recording directly.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if h.min < 0 || (o.min >= 0 && o.min < h.min) {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() sim.Time { return sim.Time(h.sum) }

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() sim.Time {
	if h.min < 0 {
		return 0
	}
	return sim.Time(h.min)
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() sim.Time { return sim.Time(h.max) }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (0 <= q <= 1) with linear
// interpolation inside the containing bucket, clamped to the exact
// observed [Min, Max] so degenerate histograms (empty, single sample,
// all samples in one bucket) stay exact. Empty histograms return 0.
func (h *Hist) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	// The extreme quantiles are tracked exactly.
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return sim.Time(h.max)
	}
	// rank is the 1-based index of the sample the quantile falls on.
	rank := int64(q*float64(h.count-1)) + 1
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := BucketBounds(i)
			// Interpolate by the rank's position within this bucket.
			frac := float64(rank-seen-1) / float64(c)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return sim.Time(v)
		}
		seen += c
	}
	return sim.Time(h.max)
}

// P50, P99 and P999 are the tail-latency quantiles reported by the
// serving workload tables.
func (h *Hist) P50() sim.Time  { return h.Quantile(0.50) }
func (h *Hist) P99() sim.Time  { return h.Quantile(0.99) }
func (h *Hist) P999() sim.Time { return h.Quantile(0.999) }

// histJSON is the stable wire shape: exact aggregates, derived
// percentiles for human consumption, and the sparse non-zero buckets
// (ascending [index, count] pairs) for lossless round-trips.
type histJSON struct {
	Count   int64      `json:"count"`
	MinNs   int64      `json:"min_ns"`
	MaxNs   int64      `json:"max_ns"`
	SumNs   int64      `json:"sum_ns"`
	P50Ns   int64      `json:"p50_ns"`
	P99Ns   int64      `json:"p99_ns"`
	P999Ns  int64      `json:"p999_ns"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON emits the histogram in a stable machine-readable shape.
// Percentile fields are derived; UnmarshalJSON recomputes them from the
// buckets, so marshal → unmarshal → marshal is byte-identical.
func (h *Hist) MarshalJSON() ([]byte, error) {
	j := histJSON{
		Count:   h.count,
		MinNs:   int64(h.Min()),
		MaxNs:   h.max,
		SumNs:   h.sum,
		P50Ns:   int64(h.P50()),
		P99Ns:   int64(h.P99()),
		P999Ns:  int64(h.P999()),
		Buckets: [][2]int64{},
	}
	for i, c := range h.counts {
		if c != 0 {
			j.Buckets = append(j.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON rebuilds the histogram from its wire shape.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	h.counts = make([]int64, histBuckets)
	var n int64
	for _, b := range j.Buckets {
		if b[0] < 0 || b[0] >= histBuckets {
			return fmt.Errorf("stats: histogram bucket index %d out of range", b[0])
		}
		h.counts[b[0]] = b[1]
		n += b[1]
	}
	if n != j.Count {
		return fmt.Errorf("stats: histogram bucket counts sum to %d, header says %d", n, j.Count)
	}
	h.count = j.Count
	h.sum = j.SumNs
	h.max = j.MaxNs
	if j.Count == 0 {
		h.min = -1
	} else {
		h.min = j.MinNs
	}
	return nil
}

// ServeStats is the open-loop serving workload's result block: offered
// vs. achieved throughput, the tail-latency histogram, and saturation
// detection. Attached to Run.Serve by the serve package and emitted in
// the run JSON as the "serve" object.
type ServeStats struct {
	// Window is the arrival window: requests are generated over
	// simulated [0, Window).
	Window sim.Time
	// Generated is the number of requests the arrival processes
	// produced; Completed counts the ones served (equal unless the run
	// failed). Gets/Puts/Scans split Completed by operation.
	Generated int64
	Completed int64
	Gets      int64
	Puts      int64
	Scans     int64
	// LastDone is when the final request completed. For an unsaturated
	// server it tracks the arrival window closely; when the server
	// saturates the backlog pushes it far past Window.
	LastDone sim.Time
	// Busy totals the time nodes spent serving requests (as opposed to
	// idling between arrivals); MaxUtil is the highest per-node busy
	// fraction of its serving span — ~1.0 means that node's queue never
	// drained, the queue-side view of saturation.
	Busy    sim.Time
	MaxUtil float64
	// Latency is the per-operation latency histogram: completion minus
	// arrival, on the simulated clock.
	Latency *Hist

	// Fast-path counters. All zero when the serving fast path is off.
	// SeqlockReads counts gets/scans served lock-free against the home
	// copy; SeqlockRetries counts torn-read retries (an odd version word
	// observed); SeqlockFallbacks counts lock-free-eligible operations
	// that ended up taking the lock anyway (K torn reads in a row, or a
	// protocol with no home copy to validate against).
	SeqlockReads     int64
	SeqlockRetries   int64
	SeqlockFallbacks int64
	// Batches counts coalesced critical sections (one acquire→apply-N→
	// release); BatchedOps the operations served inside them; MaxBatch
	// the largest single batch.
	Batches    int64
	BatchedOps int64
	MaxBatch   int64
	// LockAcquires and LockForwards sum the per-node protocol counters:
	// remote lock acquisitions and acquire requests forwarded past their
	// manager to the current token holder. The serving fast path exists
	// to drive both toward zero on the get-dominated mix.
	LockAcquires int64
	LockForwards int64

	// Closed-loop mode: Clients > 0 marks a closed-loop run, where a
	// fixed population of clients issues the next request one think time
	// (mean Think) after the previous response. Closed-loop runs are
	// self-limiting and never report saturation.
	Clients int64
	Think   sim.Time
}

// saturationFraction is the achieved/offered ratio below which the
// server is declared saturated: completing the offered work stretched
// the completion horizon more than ~11% past the arrival window, which
// an open-loop server in steady state never does.
const saturationFraction = 0.9

// OfferedRate returns the offered load in requests per simulated second.
func (s *ServeStats) OfferedRate() float64 {
	if s.Window == 0 {
		return 0
	}
	return float64(s.Generated) / (float64(s.Window) / float64(sim.Second))
}

// AchievedRate returns the completed throughput in requests per
// simulated second, measured over the full span to the last completion.
func (s *ServeStats) AchievedRate() float64 {
	if s.LastDone == 0 {
		return 0
	}
	return float64(s.Completed) / (float64(s.LastDone) / float64(sim.Second))
}

// horizon is the effective serving span used for saturation detection:
// the completion horizon less one median latency of residual drain,
// floored at the arrival window. An unsaturated server always finishes
// its final request within about one op latency of the window closing,
// so granting that grace keeps short windows (a handful of op latencies)
// from reading as divergence; under real overload the backlog pushes
// LastDone many median latencies past the window and the grace is noise.
func (s *ServeStats) horizon() sim.Time {
	h := s.LastDone
	if s.Latency != nil {
		h -= s.Latency.P50()
	}
	if h < s.Window {
		h = s.Window
	}
	return h
}

// SaturationRatio compares the completed rate over the effective horizon
// against the offered rate: ~1 below capacity, dropping toward
// capacity/offered as the open-loop backlog grows.
func (s *ServeStats) SaturationRatio() float64 {
	off := s.OfferedRate()
	if off == 0 || s.LastDone == 0 {
		return 0
	}
	achieved := float64(s.Completed) / (float64(s.horizon()) / float64(sim.Second))
	return achieved / off
}

// Saturated reports whether the offered load exceeded the serving
// capacity (offered vs. completed rate divergence). A closed-loop run
// is self-limiting — clients wait for responses — so it never reports
// saturation; its throughput is read directly from AchievedRate.
func (s *ServeStats) Saturated() bool {
	if s.Clients > 0 {
		return false
	}
	return s.SaturationRatio() < saturationFraction
}

// serveJSON is the stable wire shape of the serve block.
type serveJSON struct {
	WindowNs   int64   `json:"window_ns"`
	Generated  int64   `json:"generated"`
	Completed  int64   `json:"completed"`
	Gets       int64   `json:"gets"`
	Puts       int64   `json:"puts"`
	Scans      int64   `json:"scans"`
	LastDoneNs int64   `json:"last_done_ns"`
	BusyNs     int64   `json:"busy_ns"`
	MaxUtil    float64 `json:"max_utilization"`
	Offered    float64 `json:"offered_req_s"`
	Achieved   float64 `json:"achieved_req_s"`
	SatRatio   float64 `json:"saturation_ratio"`
	Saturated  bool    `json:"saturated"`
	Latency    *Hist   `json:"latency"`

	SeqlockReads     int64 `json:"seqlock_reads,omitempty"`
	SeqlockRetries   int64 `json:"seqlock_retries,omitempty"`
	SeqlockFallbacks int64 `json:"seqlock_fallbacks,omitempty"`
	Batches          int64 `json:"batches,omitempty"`
	BatchedOps       int64 `json:"batched_ops,omitempty"`
	MaxBatch         int64 `json:"max_batch,omitempty"`
	LockAcquires     int64 `json:"lock_acquires,omitempty"`
	LockForwards     int64 `json:"lock_forwards,omitempty"`
	Clients          int64 `json:"clients,omitempty"`
	ThinkNs          int64 `json:"think_ns,omitempty"`
}

// MarshalJSON emits the serve block with derived rates included.
func (s *ServeStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(serveJSON{
		WindowNs:   int64(s.Window),
		Generated:  s.Generated,
		Completed:  s.Completed,
		Gets:       s.Gets,
		Puts:       s.Puts,
		Scans:      s.Scans,
		LastDoneNs: int64(s.LastDone),
		BusyNs:     int64(s.Busy),
		MaxUtil:    s.MaxUtil,
		Offered:    s.OfferedRate(),
		Achieved:   s.AchievedRate(),
		SatRatio:   s.SaturationRatio(),
		Saturated:  s.Saturated(),
		Latency:    s.Latency,

		SeqlockReads:     s.SeqlockReads,
		SeqlockRetries:   s.SeqlockRetries,
		SeqlockFallbacks: s.SeqlockFallbacks,
		Batches:          s.Batches,
		BatchedOps:       s.BatchedOps,
		MaxBatch:         s.MaxBatch,
		LockAcquires:     s.LockAcquires,
		LockForwards:     s.LockForwards,
		Clients:          s.Clients,
		ThinkNs:          int64(s.Think),
	})
}

// UnmarshalJSON rebuilds the serve block; derived rate fields are
// recomputed from the exact counters on the next marshal.
func (s *ServeStats) UnmarshalJSON(data []byte) error {
	var j serveJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.Window = sim.Time(j.WindowNs)
	s.Generated = j.Generated
	s.Completed = j.Completed
	s.Gets = j.Gets
	s.Puts = j.Puts
	s.Scans = j.Scans
	s.LastDone = sim.Time(j.LastDoneNs)
	s.Busy = sim.Time(j.BusyNs)
	s.MaxUtil = j.MaxUtil
	s.Latency = j.Latency
	s.SeqlockReads = j.SeqlockReads
	s.SeqlockRetries = j.SeqlockRetries
	s.SeqlockFallbacks = j.SeqlockFallbacks
	s.Batches = j.Batches
	s.BatchedOps = j.BatchedOps
	s.MaxBatch = j.MaxBatch
	s.LockAcquires = j.LockAcquires
	s.LockForwards = j.LockForwards
	s.Clients = j.Clients
	s.Think = sim.Time(j.ThinkNs)
	return nil
}
