package stats

import (
	"testing"
	"testing/quick"

	"gosvm/internal/sim"
)

func TestAddAndTotal(t *testing.T) {
	var n Node
	n.Add(CatCompute, 100)
	n.Add(CatData, 50)
	n.Add(CatCompute, 25)
	if n.Time[CatCompute] != 125 || n.Time[CatData] != 50 {
		t.Fatalf("times = %v", n.Time)
	}
	if n.Total() != 175 {
		t.Fatalf("total = %v", n.Total())
	}
}

func TestSentAccounting(t *testing.T) {
	var n Node
	n.Sent(ClassData, 100)
	n.Sent(ClassData, 200)
	n.Sent(ClassProtocol, 10)
	if n.MsgsOut[ClassData] != 2 || n.Bytes[ClassData] != 300 {
		t.Fatalf("data traffic = %d msgs %d bytes", n.MsgsOut[ClassData], n.Bytes[ClassData])
	}
	if n.MsgsOut[ClassProtocol] != 1 || n.Bytes[ClassProtocol] != 10 {
		t.Fatalf("protocol traffic wrong")
	}
}

func TestMemPeakTracking(t *testing.T) {
	var n Node
	n.MemAlloc(100)
	n.MemAlloc(200)
	n.MemFree(250)
	n.MemAlloc(10)
	if n.ProtoMem != 60 {
		t.Fatalf("current = %d", n.ProtoMem)
	}
	if n.ProtoMemPeak != 300 {
		t.Fatalf("peak = %d", n.ProtoMemPeak)
	}
}

func TestMemNegativePanics(t *testing.T) {
	var n Node
	n.MemAlloc(10)
	defer func() {
		if recover() == nil {
			t.Fatal("negative protocol memory did not panic")
		}
	}()
	n.MemFree(11)
}

func TestSnapshotSub(t *testing.T) {
	var n Node
	n.Add(CatLock, 100)
	n.Counts.ReadMisses = 5
	n.Sent(ClassData, 64)
	snap := n.Snapshot()
	n.Add(CatLock, 40)
	n.Counts.ReadMisses = 9
	n.Sent(ClassData, 36)
	d := n.Snapshot().Sub(snap)
	if d.Time[CatLock] != 40 {
		t.Fatalf("delta lock = %v", d.Time[CatLock])
	}
	if d.Counts.ReadMisses != 4 {
		t.Fatalf("delta misses = %d", d.Counts.ReadMisses)
	}
	if d.Bytes[ClassData] != 36 || d.MsgsOut[ClassData] != 1 {
		t.Fatalf("delta traffic wrong: %+v", d)
	}
}

func TestRunAggregates(t *testing.T) {
	a := &Node{}
	a.Add(CatCompute, 100)
	a.Counts.DiffsCreated = 4
	a.Sent(ClassData, 1000)
	a.MemAlloc(500)
	b := &Node{}
	b.Add(CatCompute, 300)
	b.Counts.DiffsCreated = 8
	b.Sent(ClassProtocol, 200)
	b.MemAlloc(700)
	b.MemFree(100)
	r := &Run{Nodes: []*Node{a, b}, Elapsed: 400, SeqTime: 800}

	if got := r.Speedup(); got != 2 {
		t.Fatalf("speedup = %v", got)
	}
	avg := r.AvgNode()
	if avg.Time[CatCompute] != 200 {
		t.Fatalf("avg compute = %v", avg.Time[CatCompute])
	}
	if avg.Counts.DiffsCreated != 6 {
		t.Fatalf("avg diffs = %d", avg.Counts.DiffsCreated)
	}
	if r.TotalMsgs() != 2 {
		t.Fatalf("msgs = %d", r.TotalMsgs())
	}
	if r.TotalBytes(ClassData) != 1000 || r.TotalBytes(ClassProtocol) != 200 {
		t.Fatal("byte totals wrong")
	}
	if r.PeakProtoMem() != 700 {
		t.Fatalf("peak = %d", r.PeakProtoMem())
	}
}

func TestSpeedupZeroSafe(t *testing.T) {
	r := &Run{}
	if r.Speedup() != 0 {
		t.Fatal("speedup on empty run should be 0")
	}
}

func TestCategoryStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("category %d has bad name %q", c, s)
		}
		seen[s] = true
	}
	if ClassData.String() == ClassProtocol.String() {
		t.Fatal("class names collide")
	}
}

// Property: Sub is the inverse of accumulating more time.
func TestSubInverseProperty(t *testing.T) {
	f := func(base, extra [int(NumCategories)]uint16) bool {
		var n Node
		for c := 0; c < int(NumCategories); c++ {
			n.Add(Category(c), sim.Time(base[c]))
		}
		snap := n.Snapshot()
		for c := 0; c < int(NumCategories); c++ {
			n.Add(Category(c), sim.Time(extra[c]))
		}
		d := n.Snapshot().Sub(snap)
		for c := 0; c < int(NumCategories); c++ {
			if d.Time[c] != sim.Time(extra[c]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
