package stats

import (
	"bytes"
	"encoding/json"
	"testing"

	"gosvm/internal/sim"
)

// TestBucketBoundsRoundTrip checks the bucket map is a partition: every
// bucket's bounds are contiguous with its neighbors', and every value
// inside [lo, hi) maps back to the bucket.
func TestBucketBoundsRoundTrip(t *testing.T) {
	var prevHi int64
	for i := 0; i < histBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo = %d, previous hi = %d (gap or overlap)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d, %d)", i, lo, hi)
		}
		// Check the edges and an interior point map back to i.
		for _, v := range []int64{lo, hi - 1, lo + (hi-lo)/2} {
			if got := bucketOf(v); got != i {
				t.Fatalf("bucketOf(%d) = %d, want %d (bounds [%d, %d))", v, got, i, lo, hi)
			}
		}
		prevHi = hi
	}
}

// TestBucketUnitRange checks values below histSubCount land in exact
// unit-width buckets (no quantization error at the bottom).
func TestBucketUnitRange(t *testing.T) {
	for v := int64(0); v < histSubCount; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact unit bucket", v, got)
		}
		lo, hi := BucketBounds(int(v))
		if lo != v || hi != v+1 {
			t.Fatalf("BucketBounds(%d) = [%d, %d), want [%d, %d)", v, lo, hi, v, v+1)
		}
	}
}

// TestBucketRelativeError checks the log-linear scheme's promise: bucket
// width never exceeds 2/histSubCount of the bucket's lower bound.
func TestBucketRelativeError(t *testing.T) {
	for _, v := range []int64{100, 1_000, 50_000, 1_000_000, 123_456_789, 1 << 40} {
		lo, hi := BucketBounds(bucketOf(v))
		if width := hi - lo; float64(width) > 2.0/histSubCount*float64(lo) {
			t.Errorf("value %d: bucket [%d, %d) width %d exceeds relative error bound", v, lo, hi, width)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHist()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram aggregates non-zero: min=%v max=%v mean=%v count=%d",
			h.Min(), h.Max(), h.Mean(), h.Count())
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHist()
	h.Record(123_456)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 123_456 {
			t.Errorf("single-sample Quantile(%g) = %v, want exact 123456", q, got)
		}
	}
}

// TestQuantileOneBucket: when every sample shares one bucket, the min/max
// clamp keeps all quantiles inside the observed [min, max].
func TestQuantileOneBucket(t *testing.T) {
	h := NewHist()
	lo, hi := BucketBounds(bucketOf(1_000_000))
	a, b := sim.Time(lo+2), sim.Time(hi-2)
	for i := 0; i < 50; i++ {
		h.Record(a)
		h.Record(b)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		got := h.Quantile(q)
		if got < a || got > b {
			t.Errorf("one-bucket Quantile(%g) = %v outside observed [%v, %v]", q, got, a, b)
		}
	}
	if h.Quantile(0) != a || h.Quantile(1) != b {
		t.Errorf("extreme quantiles not clamped to min/max: q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
}

// TestQuantileUniform checks interpolation accuracy on an exactly
// known distribution: 1..1000, each once. Bucketed quantiles must land
// within one bucket width of the true order statistic.
func TestQuantileUniform(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 1000; v++ {
		h.Record(sim.Time(v))
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 1}, {0.5, 500}, {0.99, 990}, {1, 1000}} {
		got := int64(h.Quantile(tc.q))
		_, hi := BucketBounds(bucketOf(tc.want))
		lo, _ := BucketBounds(bucketOf(tc.want))
		tol := hi - lo + 1
		if got < tc.want-tol || got > tc.want+tol {
			t.Errorf("Quantile(%g) = %d, want %d ± bucket width %d", tc.q, got, tc.want, tol)
		}
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("aggregates wrong: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if mean := h.Mean(); mean != 500.5 {
		t.Errorf("Mean() = %g, want 500.5 (sum is exact)", mean)
	}
}

func TestHistMerge(t *testing.T) {
	a, b, both := NewHist(), NewHist(), NewHist()
	for v := int64(1); v <= 500; v++ {
		a.Record(sim.Time(v))
		both.Record(sim.Time(v))
	}
	for v := int64(10_000); v <= 10_200; v++ {
		b.Record(sim.Time(v))
		both.Record(sim.Time(v))
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Errorf("merged aggregates differ from direct recording")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("Quantile(%g): merged %v != direct %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.Count()
	a.Merge(NewHist())
	a.Merge(nil)
	if a.Count() != before {
		t.Errorf("merging empty/nil changed count")
	}
}

// TestHistJSONRoundTrip: marshal → unmarshal → marshal must be
// byte-identical, with derived percentiles recomputed from the buckets.
func TestHistJSONRoundTrip(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 10_000; v += 7 {
		h.Record(sim.Time(v * v % 1_000_003))
	}
	first, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("JSON round-trip not byte-identical:\n%s\n%s", first, second)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Errorf("round-trip lost aggregates")
	}
}

func TestHistJSONRoundTripEmpty(t *testing.T) {
	h := NewHist()
	first, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("empty-histogram round-trip not byte-identical:\n%s\n%s", first, second)
	}
	if back.Quantile(0.5) != 0 {
		t.Errorf("restored empty histogram Quantile(0.5) = %v, want 0", back.Quantile(0.5))
	}
}

// TestHistJSONRejectsCorrupt checks the unmarshal-side validation.
func TestHistJSONRejectsCorrupt(t *testing.T) {
	for _, bad := range []string{
		`{"count":1,"buckets":[[99999,1]]}`, // index out of range
		`{"count":2,"buckets":[[10,1]]}`,    // count mismatch
		`{"count":1,"buckets":[[-1,1]]}`,    // negative index
	} {
		var h Hist
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("unmarshal accepted corrupt input %s", bad)
		}
	}
}

// TestServeStatsSaturation checks the offered/achieved divergence signal
// directly on the stats block.
func TestServeStatsSaturation(t *testing.T) {
	mk := func(generated, completed int64, window, lastDone sim.Time) *ServeStats {
		return &ServeStats{Window: window, Generated: generated, Completed: completed,
			LastDone: lastDone, Latency: NewHist()}
	}
	// Steady state: all work finished within ~the window.
	healthy := mk(1000, 1000, sim.Second, sim.Second+50*sim.Millisecond)
	if healthy.Saturated() {
		t.Errorf("healthy cell flagged saturated: ratio %.3f", healthy.SaturationRatio())
	}
	// Overload: completion horizon stretched to 2x the arrival window.
	overloaded := mk(1000, 1000, sim.Second, 2*sim.Second)
	if !overloaded.Saturated() {
		t.Errorf("overloaded cell not flagged: ratio %.3f", overloaded.SaturationRatio())
	}
	if r := overloaded.SaturationRatio(); r < 0.49 || r > 0.51 {
		t.Errorf("SaturationRatio = %.3f, want ~0.5", r)
	}
}

// TestServeStatsJSONRoundTrip checks the serve block wire shape.
func TestServeStatsJSONRoundTrip(t *testing.T) {
	s := &ServeStats{
		Window: 50 * sim.Millisecond, Generated: 100, Completed: 100,
		Gets: 80, Puts: 15, Scans: 5, LastDone: 60 * sim.Millisecond,
		Busy: 40 * sim.Millisecond, MaxUtil: 0.8, Latency: NewHist(),
	}
	for i := 0; i < 100; i++ {
		s.Latency.Record(sim.Time(1+i) * sim.Microsecond)
	}
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ServeStats
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("serve block round-trip not byte-identical:\n%s\n%s", first, second)
	}
}
