package stats

import (
	"encoding/json"
	"io"
)

// countsMap renders Counters with stable snake_case keys. Maps marshal
// with sorted keys, so the JSON output is deterministic.
func countsMap(c Counters) map[string]int64 {
	return map[string]int64{
		"read_misses":     c.ReadMisses,
		"write_faults":    c.WriteFaults,
		"diffs_created":   c.DiffsCreated,
		"diffs_applied":   c.DiffsApplied,
		"pages_fetched":   c.PagesFetched,
		"lock_acquires":   c.LockAcquires,
		"lock_forwards":   c.LockForwards,
		"prefetches":      c.Prefetches,
		"barriers":        c.Barriers,
		"gcs":             c.GCs,
		"retries":         c.Retries,
		"dups_suppressed": c.DupsSuppressed,
		"msgs_dropped":    c.MsgsDropped,
		"link_drops":      c.LinkDrops,
		"pages_rehomed":   c.PagesRehomed,
		"mgrs_rehomed":    c.MgrsRehomed,
		"locks_reclaimed": c.LocksReclaimed,
	}
}

type jsonNode struct {
	TimeNs       map[string]int64 `json:"time_ns"`
	Counts       map[string]int64 `json:"counts"`
	MsgsOut      map[string]int64 `json:"msgs_out"`
	BytesOut     map[string]int64 `json:"bytes_out"`
	ProtoMemPeak int64            `json:"proto_mem_peak"`
	AppMem       int64            `json:"app_mem"`
	RecoveryNs   int64            `json:"recovery_ns"`
	ReplicaBytes int64            `json:"replica_bytes"`
	MirrorBytes  int64            `json:"mirror_bytes"`
	DetectNs     int64            `json:"detect_ns"`
}

func nodeJSON(n *Node) jsonNode {
	jn := jsonNode{
		TimeNs:       make(map[string]int64, NumCategories),
		Counts:       countsMap(n.Counts),
		MsgsOut:      make(map[string]int64, NumClasses),
		BytesOut:     make(map[string]int64, NumClasses),
		ProtoMemPeak: n.ProtoMemPeak,
		AppMem:       n.AppMem,
		RecoveryNs:   int64(n.Recovery),
		ReplicaBytes: n.ReplicaBytes,
		MirrorBytes:  n.MirrorBytes,
		DetectNs:     int64(n.Detect),
	}
	for c := Category(0); c < NumCategories; c++ {
		jn.TimeNs[c.String()] = int64(n.Time[c])
	}
	for c := Class(0); c < NumClasses; c++ {
		jn.MsgsOut[c.String()] = n.MsgsOut[c]
		jn.BytesOut[c.String()] = n.Bytes[c]
	}
	return jn
}

// MarshalJSON emits the run in a stable machine-readable shape for the
// benchmark trajectory (BENCH_*.json and friends).
func (r *Run) MarshalJSON() ([]byte, error) {
	out := struct {
		App           string      `json:"app"`
		Protocol      string      `json:"protocol"`
		Procs         int         `json:"procs"`
		ElapsedNs     int64       `json:"elapsed_ns"`
		SeqNs         int64       `json:"seq_ns,omitempty"`
		Speedup       float64     `json:"speedup,omitempty"`
		TotalMsgs     int64       `json:"total_msgs"`
		DataBytes     int64       `json:"data_bytes"`
		ProtocolBytes int64       `json:"protocol_bytes"`
		PeakProtoMem  int64       `json:"peak_proto_mem"`
		TotalAppMem   int64       `json:"total_app_mem"`
		PagesRehomed  int64       `json:"pages_rehomed,omitempty"`
		MgrsRehomed   int64       `json:"mgrs_rehomed,omitempty"`
		ReplicaBytes  int64       `json:"replica_bytes,omitempty"`
		MirrorBytes   int64       `json:"mirror_bytes,omitempty"`
		DetectNs      int64       `json:"detect_ns,omitempty"`
		Serve         *ServeStats `json:"serve,omitempty"`
		Nodes         []jsonNode  `json:"nodes"`
	}{
		App:           r.App,
		Protocol:      r.Protocol,
		Procs:         len(r.Nodes),
		ElapsedNs:     int64(r.Elapsed),
		SeqNs:         int64(r.SeqTime),
		Speedup:       r.Speedup(),
		TotalMsgs:     r.TotalMsgs(),
		DataBytes:     r.TotalBytes(ClassData),
		ProtocolBytes: r.TotalBytes(ClassProtocol),
		PeakProtoMem:  r.PeakProtoMem(),
		TotalAppMem:   r.TotalAppMem(),
		Serve:         r.Serve,
	}
	for _, nd := range r.Nodes {
		out.PagesRehomed += nd.Counts.PagesRehomed
		out.MgrsRehomed += nd.Counts.MgrsRehomed
		out.ReplicaBytes += nd.ReplicaBytes
		out.MirrorBytes += nd.MirrorBytes
		if int64(nd.Detect) > out.DetectNs {
			out.DetectNs = int64(nd.Detect)
		}
	}
	for _, nd := range r.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON(nd))
	}
	return json.Marshal(out)
}

// WriteJSON writes the run as indented JSON followed by a newline.
func (r *Run) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}
