package gosvm_test

import (
	"errors"
	"testing"

	"gosvm"
)

// counter is a minimal App for exercising the public API surface.
type counter struct {
	addr gosvm.Addr
}

func (c *counter) Name() string         { return "counter" }
func (c *counter) Setup(s *gosvm.Setup) { c.addr = s.Alloc(1) }
func (c *counter) Init(w *gosvm.Init)   { w.Store(c.addr, 0) }
func (c *counter) Gather(ctx *gosvm.Ctx) []float64 {
	return []float64{ctx.Load(c.addr)}
}
func (c *counter) Worker(ctx *gosvm.Ctx, id int) {
	for i := 0; i < 3; i++ {
		ctx.Compute(50 * gosvm.Microsecond)
		ctx.Lock(0)
		ctx.Store(c.addr, ctx.Load(c.addr)+1)
		ctx.Unlock(0)
	}
	ctx.Barrier(0)
}

func TestParseProtocol(t *testing.T) {
	for _, p := range gosvm.Protocols {
		got, err := gosvm.ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := gosvm.ParseProtocol("seq"); err != nil || got != gosvm.Seq {
		t.Fatalf("ParseProtocol(seq) = %v, %v", got, err)
	}
	if _, err := gosvm.ParseProtocol("mesi"); err == nil {
		t.Fatal("unknown protocol name accepted")
	}
	if _, err := gosvm.ParseProtocol(""); err == nil {
		t.Fatal("empty protocol name accepted")
	}
}

func TestNewOptionsFunctional(t *testing.T) {
	plan, err := gosvm.FaultProfile(gosvm.FaultLossy, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := gosvm.NewOptions(gosvm.HLRC,
		gosvm.WithProcs(8),
		gosvm.WithPageBytes(2048),
		gosvm.WithGCThreshold(1<<20),
		gosvm.WithFaults(plan),
		gosvm.WithReplication(2),
		gosvm.WithCheckpointEvery(gosvm.Millisecond),
	)
	if opts.Protocol != gosvm.HLRC || opts.NumProcs != 8 || opts.PageBytes != 2048 {
		t.Fatalf("basic options not applied: %+v", opts)
	}
	if opts.GCThreshold != 1<<20 {
		t.Fatalf("GC threshold not applied: %d", opts.GCThreshold)
	}
	if opts.Fault.Drop == 0 || opts.Fault.Seed != 3 {
		t.Fatalf("fault plan not applied: %+v", opts.Fault)
	}
	if opts.Recovery.Replicas != 2 || opts.Recovery.CheckpointEvery != gosvm.Millisecond {
		t.Fatalf("recovery options not applied: %+v", opts.Recovery)
	}
}

// A run built entirely through the functional-options API must work end
// to end, crash recovery included.
func TestRunWithOptionsAndCrash(t *testing.T) {
	plan := gosvm.FaultPlan{
		Seed: 1,
		RTO:  100 * gosvm.Microsecond,
		Crashes: []gosvm.Crash{
			{Node: 1, At: 200 * gosvm.Microsecond, RestartAt: 3 * gosvm.Millisecond},
		},
	}
	res, err := gosvm.Run(gosvm.NewOptions(gosvm.OHLRC,
		gosvm.WithProcs(4),
		gosvm.WithPageBytes(512),
		gosvm.WithFaults(plan),
		gosvm.WithReplication(1),
	), &counter{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Data[0] != 12 {
		t.Fatalf("counter = %v, want 12", res.Data[0])
	}
}

// The exported error types must surface through errors.As on a failed
// run: a crash with no replicas yields a NodeDeadError.
func TestStructuredErrorsExported(t *testing.T) {
	plan := gosvm.FaultPlan{
		Seed:    1,
		RTO:     100 * gosvm.Microsecond,
		Crashes: []gosvm.Crash{{Node: 1, At: 200 * gosvm.Microsecond}},
	}
	_, err := gosvm.Run(gosvm.NewOptions(gosvm.HLRC,
		gosvm.WithProcs(4),
		gosvm.WithPageBytes(512),
		gosvm.WithFaults(plan),
	), &counter{})
	if err == nil {
		t.Fatal("permanent unreplicated crash succeeded")
	}
	var nde *gosvm.NodeDeadError
	if !errors.As(err, &nde) {
		t.Fatalf("error is not a NodeDeadError: %v", err)
	}
}

// Speedup measures its sequential baseline under the same cost model as
// the parallel run (regression: it used to drop opts.Costs). The
// baseline is pure computation, so a slower network must lower the
// speedup through the parallel side only — and the reported ratio must
// be exactly the two elapsed times' quotient.
func TestSpeedupCostModelContract(t *testing.T) {
	mk := func() gosvm.App { return &counter{} }
	base := gosvm.NewOptions(gosvm.HLRC, gosvm.WithProcs(2), gosvm.WithPageBytes(512))
	s0, seq0, par0, err := gosvm.Speedup(base, mk)
	if err != nil {
		t.Fatal(err)
	}
	slow := gosvm.DefaultCosts()
	slow.MsgLatency *= 10
	slow.ReceiveInterrupt *= 10
	s1, seq1, par1, err := gosvm.Speedup(gosvm.NewOptions(gosvm.HLRC,
		gosvm.WithProcs(2), gosvm.WithPageBytes(512), gosvm.WithCosts(slow)), mk)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		s        float64
		seq, par *gosvm.Result
	}{{s0, seq0, par0}, {s1, seq1, par1}} {
		if want := float64(c.seq.Stats.Elapsed) / float64(c.par.Stats.Elapsed); c.s != want {
			t.Fatalf("speedup %v is not seq/par = %v", c.s, want)
		}
	}
	if par1.Stats.Elapsed <= par0.Stats.Elapsed {
		t.Fatalf("parallel run ignored the cost model: %v vs %v", par1.Stats.Elapsed, par0.Stats.Elapsed)
	}
	if seq1.Stats.Elapsed != seq0.Stats.Elapsed {
		t.Fatalf("compute-only sequential baseline changed with the network model: %v vs %v",
			seq1.Stats.Elapsed, seq0.Stats.Elapsed)
	}
	if s1 >= s0 {
		t.Fatalf("slower network did not lower the speedup: %v vs %v", s1, s0)
	}
}
