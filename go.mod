module gosvm

go 1.22
