// Benchmarks regenerating the paper's evaluation, one per table and
// figure. They run at reduced problem size so `go test -bench=.` finishes
// quickly; the full paper-size reproduction is `go run ./cmd/svmbench
// -all -size paper` (see EXPERIMENTS.md for recorded results).
//
// Each benchmark reports the reproduced quantities as custom metrics, so
// the protocol comparison is visible directly in the benchmark output.
package gosvm_test

import (
	"fmt"
	"io"
	"testing"

	"gosvm"
	"gosvm/internal/apps"
	"gosvm/internal/bench"
	"gosvm/internal/core"
	"gosvm/internal/stats"
)

// benchRunner returns a fresh runner at test scale with small machines.
func benchRunner() *bench.Runner {
	r := bench.NewRunner(apps.SizeTest)
	r.PageBytes = 1024
	r.Procs = []int{4, 8}
	return r
}

// BenchmarkTable1_Sequential measures the sequential baselines.
func BenchmarkTable1_Sequential(b *testing.B) {
	for _, app := range bench.AppNames() {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				seq := r.Seq(app)
				b.ReportMetric(seq.Stats.Elapsed.Micros()/1e6, "sim-sec")
			}
		})
	}
}

// BenchmarkTable2_Speedups reproduces the speedup comparison: four
// protocols per application and machine size.
func BenchmarkTable2_Speedups(b *testing.B) {
	for _, app := range bench.AppNames() {
		for _, procs := range []int{4, 8} {
			for _, proto := range gosvm.Protocols {
				b.Run(fmt.Sprintf("%s/%s/p%d", app, proto, procs), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						r := benchRunner()
						b.ReportMetric(r.Speedup(app, proto, procs), "speedup")
					}
				})
			}
		}
	}
}

// BenchmarkTable3_BasicOps exercises the basic-operation cost model and
// the derived §4.3 latencies on the machine model.
func BenchmarkTable3_BasicOps(b *testing.B) {
	c := gosvm.DefaultCosts()
	for i := 0; i < b.N; i++ {
		bench.Table3(io.Discard, 8192)
	}
	b.ReportMetric((c.PageFault + c.Wire(4) + c.ReceiveInterrupt + c.Wire(8192)).Micros(), "hlrc-miss-us")
	b.ReportMetric((c.PageFault + c.Wire(4) + c.Wire(8192)).Micros(), "ohlrc-miss-us")
}

// BenchmarkTable4_Operations reproduces the per-node operation counts
// (read misses, diffs) for LRC vs HLRC.
func BenchmarkTable4_Operations(b *testing.B) {
	for _, app := range bench.AppNames() {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				lrc := r.Run(app, gosvm.LRC, 8).Stats.AvgNode().Counts
				hlrc := r.Run(app, gosvm.HLRC, 8).Stats.AvgNode().Counts
				b.ReportMetric(float64(lrc.ReadMisses), "lrc-misses")
				b.ReportMetric(float64(hlrc.ReadMisses), "hlrc-misses")
				b.ReportMetric(float64(lrc.DiffsCreated), "lrc-diffs")
				b.ReportMetric(float64(hlrc.DiffsCreated), "hlrc-diffs")
			}
		})
	}
}

// BenchmarkTable5_Traffic reproduces the communication traffic comparison.
func BenchmarkTable5_Traffic(b *testing.B) {
	for _, app := range bench.AppNames() {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				for _, proto := range []gosvm.Protocol{gosvm.LRC, gosvm.HLRC} {
					res := r.Run(app, proto, 8)
					b.ReportMetric(float64(res.Stats.TotalMsgs()), proto.String()+"-msgs")
					b.ReportMetric(float64(res.Stats.TotalBytes(stats.ClassData))/(1<<20), proto.String()+"-dataMB")
					b.ReportMetric(float64(res.Stats.TotalBytes(stats.ClassProtocol))/(1<<20), proto.String()+"-protoMB")
				}
			}
		})
	}
}

// BenchmarkTable6_Memory reproduces the protocol memory comparison.
func BenchmarkTable6_Memory(b *testing.B) {
	for _, app := range bench.AppNames() {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				for _, proto := range []gosvm.Protocol{gosvm.LRC, gosvm.HLRC} {
					res := r.Run(app, proto, 8)
					b.ReportMetric(float64(res.Stats.PeakProtoMem())/1024, proto.String()+"-protoKB")
				}
			}
		})
	}
}

// BenchmarkFig3_Breakdowns reproduces the execution-time breakdowns.
func BenchmarkFig3_Breakdowns(b *testing.B) {
	for _, app := range bench.AppNames() {
		for _, proto := range gosvm.Protocols {
			b.Run(fmt.Sprintf("%s/%s", app, proto), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := benchRunner()
					avg := r.Run(app, proto, 8).Stats.AvgNode()
					b.ReportMetric(avg.Time[stats.CatCompute].Micros()/1e3, "compute-ms")
					b.ReportMetric(avg.Time[stats.CatData].Micros()/1e3, "data-ms")
					b.ReportMetric(avg.Time[stats.CatLock].Micros()/1e3, "lock-ms")
					b.ReportMetric(avg.Time[stats.CatBarrier].Micros()/1e3, "barrier-ms")
					b.ReportMetric(avg.Time[stats.CatProtocol].Micros()/1e3, "protocol-ms")
					b.ReportMetric(avg.Time[stats.CatGC].Micros()/1e3, "gc-ms")
				}
			})
		}
	}
}

// BenchmarkFig4_PerProcPhases reproduces the per-processor inter-barrier
// breakdown instrumentation on Water-Nsquared.
func BenchmarkFig4_PerProcPhases(b *testing.B) {
	for _, proto := range []gosvm.Protocol{gosvm.LRC, gosvm.HLRC} {
		b.Run(proto.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				app, err := apps.New("water-nsq", apps.SizeTest)
				if err != nil {
					b.Fatal(err)
				}
				res, err := gosvm.RunWithPhases(gosvm.Options{
					Protocol: proto, NumProcs: 8, PageBytes: 1024,
				}, app)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Phases) == 0 {
					b.Fatal("no phases captured")
				}
				// Imbalance in the captured phase: max/min lock time.
				ph := res.Phases[len(res.Phases)/2]
				var maxL, sumL float64
				for _, nd := range ph.PerNode {
					l := nd.Time[stats.CatLock].Micros()
					sumL += l
					if l > maxL {
						maxL = l
					}
				}
				if sumL > 0 {
					b.ReportMetric(maxL/(sumL/float64(len(ph.PerNode))), "lock-imbalance")
				}
			}
		})
	}
}

// BenchmarkSec48_SORZero reproduces the §4.8 experiment: SOR with
// zero-initialized interior, the case most favorable to homeless LRC.
func BenchmarkSec48_SORZero(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		lrc, hlrc, adv := r.SORZeroData(8)
		b.ReportMetric(lrc.Micros()/1e3, "lrc-ms")
		b.ReportMetric(hlrc.Micros()/1e3, "hlrc-ms")
		b.ReportMetric(adv*100, "hlrc-advantage-pct")
	}
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md.

func BenchmarkAblation_EagerDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		lazy, eager := r.AblationEagerDiff(io.Discard, "water-nsq", 8)
		b.ReportMetric(lazy.Micros()/1e3, "lazy-ms")
		b.ReportMetric(eager.Micros()/1e3, "eager-ms")
	}
}

func BenchmarkAblation_HomePlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		directed, rr := r.AblationHomePlacement(io.Discard, "sor", 8)
		b.ReportMetric(directed.Micros()/1e3, "directed-ms")
		b.ReportMetric(rr.Micros()/1e3, "roundrobin-ms")
	}
}

func BenchmarkAblation_InterruptCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.AblationInterruptCost(io.Discard, "water-nsq", 8)
	}
}

func BenchmarkAblation_PageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.AblationPageSize(io.Discard, "water-nsq", 8)
	}
}

func BenchmarkAblation_GCThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.AblationGCThreshold(io.Discard, "water-nsq", 8)
	}
}

// BenchmarkAblation_Mesh compares the crossbar and 2-D mesh network
// models.
func BenchmarkAblation_Mesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		xb, mesh := r.AblationMesh(io.Discard, "water-nsq", 8)
		b.ReportMetric(xb.Micros()/1e3, "crossbar-ms")
		b.ReportMetric(mesh.Micros()/1e3, "mesh-ms")
	}
}

// BenchmarkAblation_AURC compares the automatic-update hardware emulation
// with HLRC and LRC.
func BenchmarkAblation_AURC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.AblationAURC(io.Discard, "water-nsq", 8)
	}
}

// BenchmarkAblation_OverlapLocks measures the §4.3 extension: lock and
// barrier service moved to the co-processor.
func BenchmarkAblation_OverlapLocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		base, ol := r.AblationOverlapLocks(io.Discard, "water-nsq", 8)
		b.ReportMetric(base.Micros()/1e3, "compute-locks-ms")
		b.ReportMetric(ol.Micros()/1e3, "coproc-locks-ms")
	}
}

// TestBenchmarkHarness smoke-tests the full table/figure generation at
// test scale, so `go test` exercises the same code paths the paper-size
// reproduction uses.
func TestBenchmarkHarness(t *testing.T) {
	r := benchRunner()
	r.Table1(io.Discard)
	r.Table2(io.Discard)
	bench.Table3(io.Discard, 8192)
	r.Table4(io.Discard)
	r.Table5(io.Discard)
	r.Table6(io.Discard)
	r.Fig3(io.Discard)
	r.Fig4(io.Discard)
	r.SORZero(io.Discard)
	r.Ablations(io.Discard)
}

// TestPaperClaims verifies the central qualitative claims at test scale
// on a workload where they are expected to show: the home-based protocol
// must not lose to the homeless one, and its protocol memory must be far
// smaller.
func TestPaperClaims(t *testing.T) {
	r := benchRunner()
	app := "water-sp"
	lrc := r.Run(app, core.ProtoLRC, 8)
	hlrc := r.Run(app, core.ProtoHLRC, 8)
	if float64(hlrc.Stats.Elapsed) > 1.1*float64(lrc.Stats.Elapsed) {
		t.Errorf("HLRC (%v) much slower than LRC (%v) on %s", hlrc.Stats.Elapsed, lrc.Stats.Elapsed, app)
	}
	if hlrc.Stats.PeakProtoMem() >= lrc.Stats.PeakProtoMem() {
		t.Errorf("HLRC protocol memory (%d) not below LRC (%d)",
			hlrc.Stats.PeakProtoMem(), lrc.Stats.PeakProtoMem())
	}
}
